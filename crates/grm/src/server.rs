//! The centralized global resource manager.

use agreements_flow::{AgreementMatrix, FlowError, TransitiveFlow};
use agreements_sched::{Allocation, AllocationSolver, SchedError, SystemState};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::fmt;
use std::thread::JoinHandle;

/// Errors surfaced to GRM clients.
#[derive(Debug, Clone, PartialEq)]
pub enum GrmError {
    /// The scheduler rejected the request.
    Sched(SchedError),
    /// An agreement mutation was invalid.
    Flow(FlowError),
    /// Referenced an unregistered LRM.
    UnknownLrm(usize),
    /// The server thread is gone (shut down or panicked).
    Disconnected,
}

impl fmt::Display for GrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrmError::Sched(e) => write!(f, "scheduler: {e}"),
            GrmError::Flow(e) => write!(f, "agreement: {e}"),
            GrmError::UnknownLrm(i) => write!(f, "unknown LRM {i}"),
            GrmError::Disconnected => write!(f, "GRM server disconnected"),
        }
    }
}

impl std::error::Error for GrmError {}

enum Msg {
    Report { lrm: usize, available: f64 },
    Tick { now: u64, lease: u64 },
    Join { reply: Sender<usize> },
    Leave { lrm: usize, reply: Sender<Result<(), GrmError>> },
    Request { lrm: usize, amount: f64, reply: Sender<Result<Allocation, GrmError>> },
    Release { alloc: Allocation, reply: Sender<Result<(), GrmError>> },
    SetAgreement { from: usize, to: usize, share: f64, reply: Sender<Result<(), GrmError>> },
    Availability { reply: Sender<Vec<f64>> },
    Stats { reply: Sender<GrmStats> },
    Shutdown,
}

/// Operational counters maintained by the GRM server.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GrmStats {
    /// Allocation requests received.
    pub requests: usize,
    /// Requests granted.
    pub granted: usize,
    /// Requests rejected for insufficient capacity.
    pub rejected_capacity: usize,
    /// Total units granted.
    pub granted_units: f64,
    /// Agreement mutations applied.
    pub agreement_updates: usize,
    /// Availability reports processed.
    pub reports: usize,
}

/// Cloneable client handle to a running GRM.
#[derive(Clone)]
pub struct GrmHandle {
    tx: Sender<Msg>,
}

impl GrmHandle {
    /// Dynamic availability report (LRM -> GRM).
    pub fn report(&self, lrm: usize, available: f64) -> Result<(), GrmError> {
        self.tx.send(Msg::Report { lrm, available }).map_err(|_| GrmError::Disconnected)
    }

    /// Advance the GRM's logical clock for lease-based liveness: any LRM
    /// whose last report is older than `lease` ticks has its availability
    /// zeroed until it reports again (a crashed or partitioned LRM must
    /// not be scheduled against). The clock is supplied by the caller so
    /// tests and simulations stay deterministic.
    pub fn tick(&self, now: u64, lease: u64) -> Result<(), GrmError> {
        self.tx.send(Msg::Tick { now, lease }).map_err(|_| GrmError::Disconnected)
    }

    /// A new LRM joins the federation; returns its index. It starts with
    /// no agreements and zero reported availability — wire it in with
    /// [`GrmHandle::set_agreement`] and [`GrmHandle::report`].
    pub fn join(&self) -> Result<usize, GrmError> {
        let (reply, rx) = bounded(1);
        self.tx.send(Msg::Join { reply }).map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)
    }

    /// An LRM leaves: all its agreements are dropped (both directions)
    /// and its availability zeroed. Its index stays reserved so other
    /// indices remain stable.
    pub fn leave(&self, lrm: usize) -> Result<(), GrmError> {
        let (reply, rx) = bounded(1);
        self.tx.send(Msg::Leave { lrm, reply }).map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    /// Allocation RPC: LRM `lrm` requests `amount` units under the
    /// agreements. Blocks for the decision.
    pub fn request(&self, lrm: usize, amount: f64) -> Result<Allocation, GrmError> {
        let (reply, rx) = bounded(1);
        self.tx.send(Msg::Request { lrm, amount, reply }).map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    /// Return a previous allocation's draws to the pool.
    pub fn release(&self, alloc: Allocation) -> Result<(), GrmError> {
        let (reply, rx) = bounded(1);
        self.tx.send(Msg::Release { alloc, reply }).map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    /// Agreement-management service: set `S[from][to] = share` and
    /// recompute the transitive flow.
    pub fn set_agreement(&self, from: usize, to: usize, share: f64) -> Result<(), GrmError> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(Msg::SetAgreement { from, to, share, reply })
            .map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    /// Operational counters since the server started.
    pub fn stats(&self) -> Result<GrmStats, GrmError> {
        let (reply, rx) = bounded(1);
        self.tx.send(Msg::Stats { reply }).map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)
    }

    /// Snapshot of the GRM's current availability view.
    pub fn availability(&self) -> Result<Vec<f64>, GrmError> {
        let (reply, rx) = bounded(1);
        self.tx.send(Msg::Availability { reply }).map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)
    }

    /// Ask the server to exit its loop.
    pub fn shutdown(&self) {
        let _ = self.tx.send(Msg::Shutdown);
    }
}

/// A running GRM server thread.
pub struct GrmServer {
    handle: GrmHandle,
    join: Option<JoinHandle<()>>,
}

impl GrmServer {
    /// Spawn a GRM managing `n` LRMs under the given agreements and
    /// transitivity level, scheduling with the LP policy.
    pub fn spawn(agreements: AgreementMatrix, level: usize) -> GrmServer {
        let (tx, rx) = unbounded();
        let join = std::thread::Builder::new()
            .name("grm-server".into())
            .spawn(move || serve(agreements, level, rx))
            .expect("spawn GRM thread");
        GrmServer { handle: GrmHandle { tx }, join: Some(join) }
    }

    /// Client handle.
    pub fn handle(&self) -> GrmHandle {
        self.handle.clone()
    }

    /// Shut down and join the server thread.
    pub fn shutdown(mut self) {
        self.handle.shutdown();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for GrmServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn serve(agreements: AgreementMatrix, level: usize, rx: Receiver<Msg>) {
    let mut s = agreements;
    let mut flow = TransitiveFlow::compute(&s, level);
    let mut availability = vec![0.0f64; s.n()];
    // Logical-clock liveness: last report time per LRM, and the current
    // clock (updated by Tick messages).
    let mut last_report = vec![0u64; s.n()];
    let mut clock = 0u64;
    let mut stats = GrmStats::default();
    // The server outlives many requests over one agreement structure, so
    // it keeps a persistent solver (cached skeleton + workspace). Warm
    // starting stays off: every grant must be bit-identical to the
    // stateless LP policy, which is what the adapter tests assert.
    let mut policy = AllocationSolver::reduced();
    while let Ok(msg) = rx.recv() {
        let n = s.n();
        match msg {
            Msg::Report { lrm, available } => {
                if lrm < n && available.is_finite() && available >= 0.0 {
                    availability[lrm] = available;
                    last_report[lrm] = clock;
                    stats.reports += 1;
                }
            }
            Msg::Tick { now, lease } => {
                clock = clock.max(now);
                for i in 0..n {
                    if clock.saturating_sub(last_report[i]) > lease {
                        availability[i] = 0.0;
                    }
                }
            }
            Msg::Join { reply } => {
                s = s.grown();
                flow = TransitiveFlow::compute(&s, level);
                availability.push(0.0);
                last_report.push(clock);
                let _ = reply.send(s.n() - 1);
            }
            Msg::Leave { lrm, reply } => {
                let res = if lrm < n {
                    s.isolate(lrm).map_err(GrmError::Flow).map(|()| {
                        flow = TransitiveFlow::compute(&s, level);
                        availability[lrm] = 0.0;
                    })
                } else {
                    Err(GrmError::UnknownLrm(lrm))
                };
                let _ = reply.send(res);
            }
            Msg::Request { lrm, amount, reply } => {
                stats.requests += 1;
                let res = if lrm >= n {
                    Err(GrmError::UnknownLrm(lrm))
                } else {
                    match SystemState::new(flow.clone(), None, availability.clone()) {
                        Ok(state) => match policy.allocate(&state, lrm, amount) {
                            Ok(alloc) => {
                                // Commit: deduct the draws from the view.
                                for (v, d) in availability.iter_mut().zip(&alloc.draws) {
                                    *v = (*v - d).max(0.0);
                                }
                                stats.granted += 1;
                                stats.granted_units += alloc.amount;
                                Ok(alloc)
                            }
                            Err(e) => {
                                if matches!(e, SchedError::InsufficientCapacity { .. }) {
                                    stats.rejected_capacity += 1;
                                }
                                Err(GrmError::Sched(e))
                            }
                        },
                        Err(e) => Err(GrmError::Sched(e)),
                    }
                };
                let _ = reply.send(res);
            }
            Msg::Release { alloc, reply } => {
                let res = if alloc.draws.len() != n {
                    Err(GrmError::Sched(SchedError::DimensionMismatch {
                        expected: n,
                        got: alloc.draws.len(),
                    }))
                } else {
                    for (v, d) in availability.iter_mut().zip(&alloc.draws) {
                        *v += d;
                    }
                    Ok(())
                };
                let _ = reply.send(res);
            }
            Msg::SetAgreement { from, to, share, reply } => {
                let res = s.set(from, to, share).map_err(GrmError::Flow).map(|()| {
                    flow = TransitiveFlow::compute(&s, level);
                    stats.agreement_updates += 1;
                });
                let _ = reply.send(res);
            }
            Msg::Availability { reply } => {
                let _ = reply.send(availability.clone());
            }
            Msg::Stats { reply } => {
                let _ = reply.send(stats);
            }
            Msg::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize, share: f64) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.set(i, j, share).unwrap();
                }
            }
        }
        s
    }

    #[test]
    fn report_then_request_round_trip() {
        let grm = GrmServer::spawn(complete(3, 0.5), 2);
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 10.0).unwrap();
        h.report(2, 10.0).unwrap();
        let alloc = h.request(0, 6.0).unwrap();
        assert!((alloc.amount - 6.0).abs() < 1e-9);
        assert!((alloc.draws[1] + alloc.draws[2] - 6.0).abs() < 1e-9);
        // The GRM's view reflects the commit.
        let avail = h.availability().unwrap();
        assert!((avail.iter().sum::<f64>() - 14.0).abs() < 1e-9);
        grm.shutdown();
    }

    #[test]
    fn release_restores_view() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        h.report(0, 5.0).unwrap();
        h.report(1, 5.0).unwrap();
        let alloc = h.request(0, 4.0).unwrap();
        h.release(alloc).unwrap();
        let avail = h.availability().unwrap();
        assert!((avail.iter().sum::<f64>() - 10.0).abs() < 1e-9);
        grm.shutdown();
    }

    #[test]
    fn insufficient_capacity_propagates() {
        let grm = GrmServer::spawn(complete(2, 0.1), 1);
        let h = grm.handle();
        h.report(0, 1.0).unwrap();
        h.report(1, 1.0).unwrap();
        match h.request(0, 5.0) {
            Err(GrmError::Sched(SchedError::InsufficientCapacity { .. })) => {}
            other => panic!("expected capacity error, got {other:?}"),
        }
        grm.shutdown();
    }

    #[test]
    fn agreement_updates_take_effect() {
        let grm = GrmServer::spawn(AgreementMatrix::zeros(2), 1);
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 10.0).unwrap();
        assert!(h.request(0, 2.0).is_err(), "no agreements yet");
        h.set_agreement(1, 0, 0.5).unwrap();
        let alloc = h.request(0, 2.0).unwrap();
        assert!((alloc.draws[1] - 2.0).abs() < 1e-9);
        // Invalid mutation is rejected.
        assert!(matches!(h.set_agreement(0, 0, 0.1), Err(GrmError::Flow(_))));
        grm.shutdown();
    }

    #[test]
    fn unknown_lrm_rejected() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        assert!(matches!(h.request(7, 1.0), Err(GrmError::UnknownLrm(7))));
        grm.shutdown();
    }

    #[test]
    fn concurrent_clients_conserve_resources() {
        let grm = GrmServer::spawn(complete(4, 0.3), 3);
        let h = grm.handle();
        for i in 0..4 {
            h.report(i, 25.0).unwrap();
        }
        // 8 client threads each grab 5 units for a random-ish requester.
        let total_granted: f64 = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|c| {
                    let h = grm.handle();
                    scope.spawn(move |_| {
                        let mut granted = 0.0;
                        for _ in 0..3 {
                            if let Ok(a) = h.request(c % 4, 5.0) {
                                granted += a.amount;
                            }
                        }
                        granted
                    })
                })
                .collect();
            handles.into_iter().map(|j| j.join().unwrap()).sum()
        })
        .unwrap();
        let remaining: f64 = h.availability().unwrap().iter().sum();
        assert!(
            (total_granted + remaining - 100.0).abs() < 1e-6,
            "granted {total_granted} + remaining {remaining} != 100"
        );
        grm.shutdown();
    }

    #[test]
    fn stats_track_operations() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        h.report(0, 10.0).unwrap();
        h.report(1, 10.0).unwrap();
        let ok = h.request(0, 5.0).unwrap();
        assert!(h.request(0, 100.0).is_err());
        h.set_agreement(0, 1, 0.4).unwrap();
        h.release(ok).unwrap();
        let s = h.stats().unwrap();
        assert_eq!(s.reports, 2);
        assert_eq!(s.requests, 2);
        assert_eq!(s.granted, 1);
        assert_eq!(s.rejected_capacity, 1);
        assert!((s.granted_units - 5.0).abs() < 1e-9);
        assert_eq!(s.agreement_updates, 1);
        grm.shutdown();
    }

    #[test]
    fn stale_lrms_are_excluded_by_lease() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 10.0).unwrap();
        h.tick(0, 3).unwrap();
        // Within the lease: LRM 1's capacity is usable.
        let a = h.request(0, 4.0).unwrap();
        h.release(a).unwrap();
        // LRM 0 keeps reporting; LRM 1 goes silent past the lease.
        h.tick(2, 3).unwrap();
        h.report(0, 0.0).unwrap();
        h.tick(6, 3).unwrap();
        match h.request(0, 4.0) {
            Err(GrmError::Sched(SchedError::InsufficientCapacity { capacity, .. })) => {
                assert!(capacity.abs() < 1e-9, "stale owner zeroed: {capacity}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // A fresh report revives it.
        h.report(1, 10.0).unwrap();
        h.tick(7, 3).unwrap();
        assert!(h.request(0, 4.0).is_ok());
        grm.shutdown();
    }

    #[test]
    fn join_grows_the_federation() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        h.report(0, 5.0).unwrap();
        h.report(1, 5.0).unwrap();
        let newbie = h.join().unwrap();
        assert_eq!(newbie, 2);
        // No agreements yet: the newcomer reaches nothing.
        h.report(newbie, 0.0).unwrap();
        assert!(h.request(newbie, 1.0).is_err());
        // Wire it in and it participates.
        h.set_agreement(0, newbie, 0.4).unwrap();
        let alloc = h.request(newbie, 2.0).unwrap();
        assert!((alloc.draws[0] - 2.0).abs() < 1e-9);
        assert_eq!(alloc.draws.len(), 3);
        grm.shutdown();
    }

    #[test]
    fn leave_cuts_all_agreements() {
        let grm = GrmServer::spawn(complete(3, 0.5), 2);
        let h = grm.handle();
        for i in 0..3 {
            h.report(i, 10.0).unwrap();
        }
        h.leave(2).unwrap();
        // Requester 0 can now only reach its own 10 + 50% of LRM 1.
        match h.request(0, 15.1) {
            Err(GrmError::Sched(SchedError::InsufficientCapacity { capacity, .. })) => {
                assert!((capacity - 15.0).abs() < 1e-9, "capacity {capacity}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(matches!(h.leave(9), Err(GrmError::UnknownLrm(9))));
        grm.shutdown();
    }

    #[test]
    fn handle_survives_clone_and_reports_after_shutdown_fail() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h1 = grm.handle();
        let h2 = h1.clone();
        h1.report(0, 1.0).unwrap();
        h2.report(1, 1.0).unwrap();
        grm.shutdown();
        assert!(matches!(h1.availability(), Err(GrmError::Disconnected)));
    }
}
