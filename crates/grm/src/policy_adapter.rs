//! Scheduling through a live GRM: an [`AllocationPolicy`] adapter.
//!
//! The paper's architecture puts the global scheduler *behind* the GRM
//! service boundary: local managers report availability, jobs arrive as
//! RPCs, decisions come back as draw vectors. [`GrmBackedPolicy`] wires
//! any consumer of the in-process [`AllocationPolicy`] trait (notably the
//! web-proxy simulator) to a real [`crate::GrmServer`] thread:
//! each `allocate` call first syncs the caller's availability view to the
//! GRM (the LRM report step), then issues the allocation RPC.
//!
//! Because the GRM runs the same reduced-formulation LP over the same
//! reported state, a simulation scheduled through a live GRM produces
//! **exactly** the same decisions as the in-process policy — verified by
//! `tests/grm_simulation.rs`.

use crate::server::{GrmError, GrmHandle};
use agreements_sched::{Allocation, AllocationPolicy, SchedError, SystemState};

/// An [`AllocationPolicy`] that defers every decision to a GRM server.
#[derive(Clone)]
pub struct GrmBackedPolicy {
    handle: GrmHandle,
}

impl GrmBackedPolicy {
    /// Wrap a GRM handle. The GRM must manage the same principals (same
    /// indices) as the states this policy will be called with.
    pub fn new(handle: GrmHandle) -> Self {
        GrmBackedPolicy { handle }
    }
}

fn to_sched_error(e: GrmError) -> SchedError {
    match e {
        GrmError::Sched(s) => s,
        GrmError::UnknownLrm(i) => SchedError::UnknownPrincipal { index: i, n: 0 },
        // Transport failures surface as an LP iteration failure: the
        // caller treats it as "no decision this round".
        GrmError::Flow(_)
        | GrmError::Disconnected
        | GrmError::DeadlineExceeded { .. }
        | GrmError::RetriesExhausted { .. }
        | GrmError::ConnectionRefused
        | GrmError::ConnectionReset
        | GrmError::FrameDecode { .. }
        | GrmError::BadEndpoint { .. }
        | GrmError::Unsupported(_) => {
            SchedError::Lp(agreements_lp::LpError::InvalidModel("GRM unavailable".into()))
        }
    }
}

impl AllocationPolicy for GrmBackedPolicy {
    fn allocate(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        // LRM report step: push the caller's availability snapshot.
        for (i, &v) in state.availability.iter().enumerate() {
            self.handle.report(i, v).map_err(to_sched_error)?;
        }
        let alloc = self.handle.request(requester, x).map_err(to_sched_error)?;
        // The GRM committed the draws against its own view; the caller
        // owns the authoritative state and will re-report next time, so
        // return the grant as-is.
        Ok(alloc)
    }

    fn name(&self) -> &'static str {
        "grm-backed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::GrmServer;
    use agreements_flow::{AgreementMatrix, TransitiveFlow};
    use agreements_sched::LpPolicy;

    fn complete(n: usize, share: f64) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.set(i, j, share).unwrap();
                }
            }
        }
        s
    }

    #[test]
    fn adapter_matches_in_process_policy() {
        let s = complete(3, 0.4);
        let flow = TransitiveFlow::compute(&s, 2);
        let grm = GrmServer::spawn(s, 2);
        let adapter = GrmBackedPolicy::new(grm.handle());
        let local = LpPolicy::reduced();
        for (avail, requester, x) in [
            (vec![0.0, 10.0, 10.0], 0usize, 6.0),
            (vec![5.0, 1.0, 9.0], 1, 4.0),
            (vec![2.0, 2.0, 2.0], 2, 3.0),
        ] {
            let state = SystemState::new(flow.clone(), None, avail).unwrap();
            let a = adapter.allocate(&state, requester, x).unwrap();
            let b = local.allocate(&state, requester, x).unwrap();
            assert_eq!(a.draws, b.draws, "requester {requester}");
            assert!((a.theta - b.theta).abs() < 1e-9);
        }
        grm.shutdown();
    }

    #[test]
    fn adapter_propagates_capacity_errors() {
        let s = complete(2, 0.1);
        let flow = TransitiveFlow::compute(&s, 1);
        let grm = GrmServer::spawn(s, 1);
        let adapter = GrmBackedPolicy::new(grm.handle());
        let state = SystemState::new(flow, None, vec![1.0, 1.0]).unwrap();
        assert!(matches!(
            adapter.allocate(&state, 0, 5.0),
            Err(SchedError::InsufficientCapacity { .. })
        ));
        grm.shutdown();
    }

    #[test]
    fn adapter_reports_disconnect_as_lp_error() {
        let s = complete(2, 0.1);
        let flow = TransitiveFlow::compute(&s, 1);
        let grm = GrmServer::spawn(s, 1);
        let adapter = GrmBackedPolicy::new(grm.handle());
        grm.shutdown();
        let state = SystemState::new(flow, None, vec![1.0, 1.0]).unwrap();
        assert!(matches!(adapter.allocate(&state, 0, 0.5), Err(SchedError::Lp(_))));
    }
}
