//! Two-level GRM: group GRMs under a coarse root scheduler (§3.2's
//! multigrid refinement, distributed across managers).

use crate::server::{GrmError, GrmHandle, GrmServer};
use agreements_flow::partition::{auto_partition, PartitionOptions};
use agreements_flow::AgreementMatrix;
use agreements_sched::hierarchy::HierarchicalScheduler;
use agreements_sched::{Allocation, SchedError};

/// A root coordinator over per-group GRMs.
///
/// Requests go to the requester's group GRM first; if the group cannot
/// satisfy them, the root runs the coarse inter-group LP (via
/// [`HierarchicalScheduler`]) over aggregated group availabilities and
/// splits the request into per-group reservations, each fulfilled by the
/// group's own GRM.
pub struct TwoLevelGrm {
    groups: Vec<Vec<usize>>,
    group_grms: Vec<GrmServer>,
    /// Index of each principal inside its group GRM (local index).
    local_index: Vec<usize>,
    /// Which group each principal is in.
    member_of: Vec<usize>,
    sched: HierarchicalScheduler,
}

impl TwoLevelGrm {
    /// Build from a partition, per-group *intra* agreement matrices, and
    /// the group-level *inter* agreement matrix.
    pub fn new(
        groups: Vec<Vec<usize>>,
        intra: Vec<AgreementMatrix>,
        inter: &AgreementMatrix,
        level: usize,
    ) -> Result<Self, SchedError> {
        Self::with_spawner(groups, intra, inter, level, |m, lvl, _g| GrmServer::spawn(m, lvl))
    }

    /// Build directly from a flat agreement economy: the partition, the
    /// per-group intra matrices, and the aggregate inter matrix are all
    /// derived by [`agreements_flow::auto_partition`]. Parallel fine
    /// solves are enabled in *auto* mode: only on hosts where
    /// `available_parallelism()` reports ≥ 2 cores, and each fan-out is
    /// further gated on the break-even measured at construction — group
    /// count alone says nothing about whether the fan-out pays.
    pub fn new_auto(
        s: &AgreementMatrix,
        opts: &PartitionOptions,
        level: usize,
    ) -> Result<Self, SchedError> {
        let p = auto_partition(s, opts).map_err(SchedError::Flow)?;
        let intra = p.intra_matrices(s).map_err(SchedError::Flow)?;
        let mut grm = Self::new(p.groups, intra, &p.inter, level)?;
        grm.sched.set_parallel_auto();
        Ok(grm)
    }

    /// [`TwoLevelGrm::new_auto`] with every group GRM's client link run
    /// through `plane` (as in [`TwoLevelGrm::new_chaotic`]).
    pub fn new_auto_chaotic(
        s: &AgreementMatrix,
        opts: &PartitionOptions,
        level: usize,
        plane: &agreements_faults::FaultPlane,
    ) -> Result<Self, SchedError> {
        let p = auto_partition(s, opts).map_err(SchedError::Flow)?;
        let intra = p.intra_matrices(s).map_err(SchedError::Flow)?;
        let mut grm = Self::new_chaotic(p.groups, intra, &p.inter, level, plane)?;
        grm.sched.set_parallel_auto();
        Ok(grm)
    }

    /// Like [`TwoLevelGrm::new`], but every group GRM's client link runs
    /// through `plane` (one independently-seeded sub-stream per group, so
    /// the fate schedule of one group never perturbs another's).
    pub fn new_chaotic(
        groups: Vec<Vec<usize>>,
        intra: Vec<AgreementMatrix>,
        inter: &AgreementMatrix,
        level: usize,
        plane: &agreements_faults::FaultPlane,
    ) -> Result<Self, SchedError> {
        Self::with_spawner(groups, intra, inter, level, |m, lvl, g| {
            GrmServer::spawn_chaotic(m, lvl, plane, &format!("group-{g}"))
        })
    }

    fn with_spawner(
        groups: Vec<Vec<usize>>,
        intra: Vec<AgreementMatrix>,
        inter: &AgreementMatrix,
        level: usize,
        mut spawn: impl FnMut(AgreementMatrix, usize, usize) -> GrmServer,
    ) -> Result<Self, SchedError> {
        let sched = HierarchicalScheduler::new(groups.clone(), inter, level)?;
        let n: usize = groups.iter().map(Vec::len).sum();
        let mut local_index = vec![0usize; n];
        let mut member_of = vec![0usize; n];
        let mut group_grms = Vec::with_capacity(groups.len());
        for (g, members) in groups.iter().enumerate() {
            let m = intra.get(g).ok_or(SchedError::DimensionMismatch {
                expected: groups.len(),
                got: intra.len(),
            })?;
            if m.n() != members.len() {
                return Err(SchedError::DimensionMismatch { expected: members.len(), got: m.n() });
            }
            for (li, &p) in members.iter().enumerate() {
                local_index[p] = li;
                member_of[p] = g;
            }
            let lvl = members.len().saturating_sub(1).max(1);
            group_grms.push(spawn(m.clone(), lvl, g));
        }
        Ok(TwoLevelGrm { groups, group_grms, local_index, member_of, sched })
    }

    /// Handle to a group's GRM (for LRM registration and reports).
    pub fn group_handle(&self, group: usize) -> GrmHandle {
        self.group_grms[group].handle()
    }

    /// The partition this federation runs over.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Number of group GRMs.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The group of a principal.
    pub fn group_of(&self, principal: usize) -> usize {
        self.member_of[principal]
    }

    /// A principal's local index within its group GRM.
    pub fn local_index(&self, principal: usize) -> usize {
        self.local_index[principal]
    }

    /// Route a request: group GRM first, root refinement on overflow.
    /// Returns a *global* draw vector indexed by principal.
    pub fn request(&self, principal: usize, amount: f64) -> Result<Allocation, GrmError> {
        let n = self.member_of.len();
        if principal >= n {
            return Err(GrmError::UnknownLrm(principal));
        }
        let home = self.member_of[principal];
        // Fast path: the home group alone.
        match self.group_grms[home].handle().request(self.local_index[principal], amount) {
            Ok(local) => {
                let mut draws = vec![0.0; n];
                for (li, &p) in self.groups[home].iter().enumerate() {
                    draws[p] = local.draws[li];
                }
                return Ok(Allocation {
                    requester: principal,
                    amount: local.amount,
                    draws,
                    theta: local.theta,
                });
            }
            Err(GrmError::Sched(SchedError::InsufficientCapacity { .. })) => {}
            Err(e) => return Err(e),
        }
        // Coarse path: gather availability from every group GRM, run the
        // hierarchical scheduler, and commit per-group reservations.
        let mut availability = vec![0.0; n];
        for (g, members) in self.groups.iter().enumerate() {
            let view = self.group_grms[g].handle().availability()?;
            for (li, &p) in members.iter().enumerate() {
                availability[p] = view[li];
            }
        }
        let alloc =
            self.sched.allocate(&availability, principal, amount).map_err(GrmError::Sched)?;
        // Commit the draws into each group GRM's view (acting as the
        // reservation directive).
        for (g, members) in self.groups.iter().enumerate() {
            let h = self.group_grms[g].handle();
            for (li, &p) in members.iter().enumerate() {
                if alloc.draws[p] > 0.0 {
                    h.report(li, (availability[p] - alloc.draws[p]).max(0.0))?;
                }
            }
        }
        Ok(alloc)
    }

    /// Shut down every group GRM.
    pub fn shutdown(self) {
        for g in self.group_grms {
            g.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize, share: f64) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.set(i, j, share).unwrap();
                }
            }
        }
        s
    }

    fn two_groups() -> TwoLevelGrm {
        let groups = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let intra = vec![complete(3, 1.0), complete(3, 1.0)];
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.5).unwrap();
        inter.set(1, 0, 0.5).unwrap();
        TwoLevelGrm::new(groups, intra, &inter, 1).unwrap()
    }

    fn seed_availability(grm: &TwoLevelGrm, per_member: &[f64; 6]) {
        for p in 0..6 {
            let g = grm.group_of(p);
            grm.group_handle(g).report(grm.local_index(p), per_member[p]).unwrap();
        }
    }

    #[test]
    fn home_group_serves_small_requests() {
        let grm = two_groups();
        seed_availability(&grm, &[5.0, 5.0, 5.0, 50.0, 50.0, 50.0]);
        let alloc = grm.request(0, 12.0).unwrap();
        assert!((alloc.amount - 12.0).abs() < 1e-9);
        assert!(alloc.draws[3..].iter().all(|&d| d == 0.0), "{:?}", alloc.draws);
        grm.shutdown();
    }

    #[test]
    fn overflow_escalates_to_root() {
        let grm = two_groups();
        seed_availability(&grm, &[2.0, 2.0, 2.0, 10.0, 10.0, 10.0]);
        let alloc = grm.request(0, 15.0).unwrap();
        let home: f64 = alloc.draws[..3].iter().sum();
        let away: f64 = alloc.draws[3..].iter().sum();
        assert!((home + away - 15.0).abs() < 1e-9);
        assert!(away > 0.0);
        // Inter-group cap: at most 50% of the remote group's 30.
        assert!(away <= 15.0 + 1e-9);
        // Group GRM views were updated.
        let remote_view = grm.group_handle(1).availability().unwrap();
        assert!((remote_view.iter().sum::<f64>() - (30.0 - away)).abs() < 1e-6);
        grm.shutdown();
    }

    #[test]
    fn totally_unreachable_request_fails() {
        let grm = two_groups();
        seed_availability(&grm, &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        // Reach: 3 own + 50% of 3 = 4.5 < 10.
        assert!(grm.request(0, 10.0).is_err());
        grm.shutdown();
    }

    #[test]
    fn construction_validates_shapes() {
        let groups = vec![vec![0, 1], vec![2]];
        let intra = vec![complete(2, 1.0)]; // missing one group
        let inter = AgreementMatrix::zeros(2);
        assert!(TwoLevelGrm::new(groups.clone(), intra, &inter, 1).is_err());
        let intra_bad = vec![complete(3, 1.0), complete(1, 0.0)];
        assert!(TwoLevelGrm::new(groups, intra_bad, &inter, 1).is_err());
    }

    #[test]
    fn chaotic_hierarchy_with_inert_plane_matches_plain() {
        let plane = agreements_faults::FaultPlane::inert(7);
        let groups = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let intra = vec![complete(3, 1.0), complete(3, 1.0)];
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.5).unwrap();
        inter.set(1, 0, 0.5).unwrap();
        let chaotic = TwoLevelGrm::new_chaotic(groups, intra, &inter, 1, &plane).unwrap();
        let plain = two_groups();
        let pools = [2.0, 2.0, 2.0, 10.0, 10.0, 10.0];
        seed_availability(&chaotic, &pools);
        seed_availability(&plain, &pools);
        let a = chaotic.request(0, 15.0).unwrap();
        let b = plain.request(0, 15.0).unwrap();
        assert_eq!(a.draws, b.draws, "inert plane must be transparent");
        chaotic.shutdown();
        plain.shutdown();
    }

    #[test]
    fn auto_federation_matches_hand_built() {
        // Flat economy: two complete blocks (intra 1.0) with a uniform
        // 25% cross share. new_auto must derive the same federation a
        // hand partition describes, and route identically.
        let mut s = AgreementMatrix::zeros(6);
        for g in [0usize, 3] {
            for i in g..g + 3 {
                for j in g..g + 3 {
                    if i != j {
                        s.set(i, j, 1.0).unwrap();
                    }
                }
            }
        }
        for i in 0..3 {
            for j in 3..6 {
                s.set(i, j, 0.25).unwrap();
                s.set(j, i, 0.25).unwrap();
            }
        }
        let auto = TwoLevelGrm::new_auto(&s, &PartitionOptions::default(), 1).unwrap();
        assert_eq!(auto.groups(), &[vec![0, 1, 2], vec![3, 4, 5]]);

        let groups = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let intra = vec![complete(3, 1.0), complete(3, 1.0)];
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.25).unwrap();
        inter.set(1, 0, 0.25).unwrap();
        let hand = TwoLevelGrm::new(groups, intra, &inter, 1).unwrap();

        let pools = [2.0, 2.0, 2.0, 10.0, 10.0, 10.0];
        seed_availability(&auto, &pools);
        seed_availability(&hand, &pools);
        let a = auto.request(0, 9.0).unwrap();
        let b = hand.request(0, 9.0).unwrap();
        assert_eq!(a.draws, b.draws);
        auto.shutdown();
        hand.shutdown();
    }

    #[test]
    fn unknown_principal_rejected() {
        let grm = two_groups();
        assert!(matches!(grm.request(17, 1.0), Err(GrmError::UnknownLrm(17))));
        grm.shutdown();
    }
}
