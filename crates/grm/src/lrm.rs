//! Local resource managers: own a real pool and fulfil GRM decisions.

use crate::server::{GrmError, GrmHandle};
use agreements_sched::Allocation;
use parking_lot::Mutex;
use std::sync::Arc;

/// A local resource manager. It owns the authoritative local pool; the
/// GRM's availability view is only as fresh as the LRM's last report.
///
/// Allocation flow: a job arrives at this LRM → the LRM asks the GRM for a
/// placement → the GRM returns the draw vector → each contributing LRM
/// fulfils its share via [`Lrm::fulfil`] (decrementing its own pool) →
/// every touched LRM re-reports.
pub struct Lrm {
    /// This LRM's index at the GRM.
    pub id: usize,
    pool: Arc<Mutex<f64>>,
    grm: GrmHandle,
}

impl Lrm {
    /// Create an LRM with an initial pool and announce it to the GRM.
    pub fn new(id: usize, initial: f64, grm: GrmHandle) -> Result<Self, GrmError> {
        let lrm = Lrm { id, pool: Arc::new(Mutex::new(initial)), grm };
        lrm.report()?;
        Ok(lrm)
    }

    /// Current local pool level.
    pub fn available(&self) -> f64 {
        *self.pool.lock()
    }

    /// Push the current availability to the GRM.
    pub fn report(&self) -> Result<(), GrmError> {
        self.grm.report(self.id, self.available())
    }

    /// Locally produce or reclaim resources (e.g. a job finished), then
    /// re-report.
    pub fn credit(&self, amount: f64) -> Result<(), GrmError> {
        {
            let mut pool = self.pool.lock();
            *pool += amount;
        }
        self.report()
    }

    /// Fulfil this LRM's share of a GRM allocation: deduct the draw
    /// against the local pool. Returns the amount actually deducted
    /// (clamped at the pool, which can run briefly stale-low if reports
    /// lag).
    pub fn fulfil(&self, alloc: &Allocation) -> Result<f64, GrmError> {
        let want = alloc.draws.get(self.id).copied().unwrap_or(0.0);
        let taken = {
            let mut pool = self.pool.lock();
            let taken = want.min(*pool);
            *pool -= taken;
            taken
        };
        self.report()?;
        Ok(taken)
    }

    /// Submit a job needing `amount` units: asks the GRM for a placement.
    /// The caller is responsible for routing the returned allocation to
    /// every contributing LRM's [`Lrm::fulfil`].
    pub fn submit(&self, amount: f64) -> Result<Allocation, GrmError> {
        self.grm.request(self.id, amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::GrmServer;
    use agreements_flow::AgreementMatrix;

    fn complete(n: usize, share: f64) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.set(i, j, share).unwrap();
                }
            }
        }
        s
    }

    #[test]
    fn end_to_end_allocation_fulfilment() {
        let grm = GrmServer::spawn(complete(3, 0.5), 2);
        let lrms: Vec<Lrm> = (0..3)
            .map(|i| Lrm::new(i, if i == 0 { 0.0 } else { 12.0 }, grm.handle()).unwrap())
            .collect();
        // LRM 0 has nothing; submits a job for 8 units.
        let alloc = lrms[0].submit(8.0).unwrap();
        let mut total = 0.0;
        for lrm in &lrms {
            total += lrm.fulfil(&alloc).unwrap();
        }
        assert!((total - 8.0).abs() < 1e-9);
        // Pools actually decreased.
        let pools: f64 = lrms.iter().map(Lrm::available).sum();
        assert!((pools - 16.0).abs() < 1e-9);
        grm.shutdown();
    }

    #[test]
    fn credit_updates_grm_view() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let a = Lrm::new(0, 1.0, grm.handle()).unwrap();
        let _b = Lrm::new(1, 1.0, grm.handle()).unwrap();
        a.credit(9.0).unwrap();
        let avail = grm.handle().availability().unwrap();
        assert!((avail[0] - 10.0).abs() < 1e-9);
        grm.shutdown();
    }

    #[test]
    fn fulfil_clamps_at_pool() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let a = Lrm::new(0, 0.0, grm.handle()).unwrap();
        let b = Lrm::new(1, 5.0, grm.handle()).unwrap();
        // Stale view: report 5, then locally drain b's pool out-of-band.
        {
            let alloc = a.submit(5.0).unwrap();
            // Drain b to 2 before it fulfils.
            b.credit(-0.0).unwrap();
            {
                let mut pool = b.pool.lock();
                *pool = 2.0;
            }
            let taken = b.fulfil(&alloc).unwrap();
            assert!((taken - 2.0).abs() < 1e-9, "clamped at stale pool");
            assert_eq!(b.available(), 0.0);
        }
        grm.shutdown();
    }

    #[test]
    fn submit_without_capacity_errors() {
        let grm = GrmServer::spawn(AgreementMatrix::zeros(2), 1);
        let a = Lrm::new(0, 1.0, grm.handle()).unwrap();
        let _b = Lrm::new(1, 100.0, grm.handle()).unwrap();
        assert!(a.submit(2.0).is_err(), "no agreements, only own 1 unit");
        assert!(a.submit(1.0).is_ok());
        grm.shutdown();
    }
}
