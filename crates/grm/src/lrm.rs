//! Local resource managers: own a real pool and fulfil GRM decisions.
//!
//! Besides the happy path (submit → GRM decides → fulfil), an LRM can
//! run **degraded**: when the GRM is unreachable past the retry budget,
//! [`Lrm::submit_or_degrade`] falls back to a local-pool-only grant and
//! journals it under the request id the failed RPC used. Once the GRM
//! heals (or a cold standby comes up), [`Lrm::reconcile`] re-reports the
//! pool and replays the journal so the global books settle exactly once
//! per intent — a retried id that *did* land server-side dedups instead
//! of double-counting.

use crate::resilient::ResilientGrmClient;
use crate::server::{GrmClient, GrmError, GrmHandle, RequestId};
use agreements_sched::{Allocation, SchedError};
use agreements_telemetry::{Telemetry, TelemetryEvent};
use parking_lot::Mutex;
use std::sync::Arc;

/// A local resource manager. It owns the authoritative local pool; the
/// GRM's availability view is only as fresh as the LRM's last report.
///
/// Allocation flow: a job arrives at this LRM → the LRM asks the GRM for a
/// placement → the GRM returns the draw vector → each contributing LRM
/// fulfils its share via [`Lrm::fulfil`] (decrementing its own pool) →
/// every touched LRM re-reports.
pub struct Lrm {
    /// This LRM's index at the GRM.
    pub id: usize,
    pool: Arc<Mutex<f64>>,
    grm: GrmHandle,
    /// Grants issued while the GRM was unreachable, keyed by the request
    /// id the failed RPC carried, awaiting [`Lrm::reconcile`].
    degraded: Mutex<Vec<(RequestId, f64)>>,
    /// Telemetry for degraded-mode transitions; disabled by default.
    telemetry: Telemetry,
}

impl Lrm {
    /// Create an LRM with an initial pool and announce it to the GRM.
    pub fn new(id: usize, initial: f64, grm: GrmHandle) -> Result<Self, GrmError> {
        let lrm = Lrm {
            id,
            pool: Arc::new(Mutex::new(initial)),
            grm,
            degraded: Mutex::new(Vec::new()),
            telemetry: Telemetry::default(),
        };
        lrm.report()?;
        Ok(lrm)
    }

    /// Attach a telemetry plane recording this LRM's degraded-mode
    /// grants; `Telemetry::default()` restores the no-op behavior.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Current local pool level.
    pub fn available(&self) -> f64 {
        *self.pool.lock()
    }

    /// Push the current availability to the GRM.
    pub fn report(&self) -> Result<(), GrmError> {
        self.grm.report(self.id, self.available())
    }

    /// Locally produce or reclaim resources (e.g. a job finished), then
    /// re-report.
    pub fn credit(&self, amount: f64) -> Result<(), GrmError> {
        {
            let mut pool = self.pool.lock();
            *pool += amount;
        }
        self.report()
    }

    /// Fulfil this LRM's share of a GRM allocation: deduct the draw
    /// against the local pool. Returns the amount actually deducted
    /// (clamped at the pool, which can run briefly stale-low if reports
    /// lag). A clamp is surfaced to the GRM as a fulfil shortfall so the
    /// gap between decided and delivered units is observable in
    /// [`crate::GrmStats`].
    pub fn fulfil(&self, alloc: &Allocation) -> Result<f64, GrmError> {
        let want = alloc.draws.get(self.id).copied().unwrap_or(0.0);
        let taken = self.fulfil_local(alloc);
        if taken < want - 1e-12 {
            // Best-effort: the shortfall counter is telemetry, and if the
            // GRM is down the report below fails loudly anyway.
            let _ = self.grm.report_fulfil_shortfall(self.id, want, taken);
        }
        self.report()?;
        Ok(taken)
    }

    /// Deduct this LRM's share of an allocation from the local pool
    /// without contacting the GRM. This is the degraded-mode fulfilment
    /// path: the pool stays authoritative locally and the GRM catches up
    /// at the next report/[`Lrm::reconcile`]. Returns the amount taken
    /// (clamped at the pool).
    pub fn fulfil_local(&self, alloc: &Allocation) -> f64 {
        let want = alloc.draws.get(self.id).copied().unwrap_or(0.0);
        let mut pool = self.pool.lock();
        let taken = want.min(*pool);
        *pool -= taken;
        taken
    }

    /// Submit a job needing `amount` units: asks the GRM for a placement.
    /// The caller is responsible for routing the returned allocation to
    /// every contributing LRM's [`Lrm::fulfil`].
    pub fn submit(&self, amount: f64) -> Result<Allocation, GrmError> {
        self.grm.request(self.id, amount)
    }

    /// Submit through a resilient client, degrading to a local-pool-only
    /// grant when the GRM stays unreachable past the client's retry
    /// budget.
    ///
    /// Returns the allocation plus `true` when it was decided locally.
    /// A degraded grant draws exclusively from this LRM's own pool (no
    /// agreements can be consulted without the GRM), is journalled under
    /// the *same request id the failed RPC carried*, and must be routed
    /// through [`Lrm::fulfil`] like any other allocation. When the GRM
    /// heals, [`Lrm::reconcile`] replays the journal: ids that actually
    /// landed server-side (a "zombie grant" whose reply was lost) dedup
    /// to a no-op, the rest settle the global books late.
    pub fn submit_or_degrade<C: GrmClient + Clone>(
        &self,
        client: &ResilientGrmClient<C>,
        amount: f64,
    ) -> Result<(Allocation, bool), GrmError> {
        let id = client.next_id();
        match client.request_as(id, self.id, amount) {
            Ok(alloc) => Ok((alloc, false)),
            Err(e) if e.is_retryable() || matches!(e, GrmError::RetriesExhausted { .. }) => {
                let pool = self.available();
                if amount > pool + 1e-12 {
                    // Degraded mode cannot reach shared capacity; reject
                    // the way the GRM would for an isolated principal.
                    return Err(GrmError::Sched(SchedError::InsufficientCapacity {
                        requester: self.id,
                        capacity: pool,
                        requested: amount,
                        resource: None,
                    }));
                }
                self.degraded.lock().push((id, amount));
                self.telemetry.add("lrm.degraded_grants", 1);
                self.telemetry.record_with(|| TelemetryEvent::DegradedGrant { amount });
                let mut draws = vec![0.0; self.id + 1];
                draws[self.id] = amount;
                Ok((Allocation { requester: self.id, amount, draws, theta: 0.0 }, true))
            }
            Err(e) => Err(e),
        }
    }

    /// Number of degraded-mode grants awaiting reconciliation.
    pub fn degraded_backlog(&self) -> usize {
        self.degraded.lock().len()
    }

    /// Reconcile with a (healed or standby) GRM: re-report the pool,
    /// then replay every journalled degraded-mode grant so the global
    /// books account for units granted during the partition. Entries are
    /// dropped as they settle; on a transport failure the remainder stays
    /// journalled for the next attempt. Returns the number of grants
    /// settled this call.
    pub fn reconcile<C: GrmClient + Clone>(
        &self,
        client: &ResilientGrmClient<C>,
    ) -> Result<usize, GrmError> {
        client.report(self.id, self.available())?;
        let backlog: Vec<(RequestId, f64)> = self.degraded.lock().clone();
        let mut settled = 0;
        for &(id, amount) in &backlog {
            match client.replay_grant(id, self.id, amount) {
                Ok(()) => {
                    self.degraded.lock().retain(|&(j, _)| j != id);
                    settled += 1;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(settled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::GrmServer;
    use agreements_flow::AgreementMatrix;

    fn complete(n: usize, share: f64) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.set(i, j, share).unwrap();
                }
            }
        }
        s
    }

    #[test]
    fn end_to_end_allocation_fulfilment() {
        let grm = GrmServer::spawn(complete(3, 0.5), 2);
        let lrms: Vec<Lrm> = (0..3)
            .map(|i| Lrm::new(i, if i == 0 { 0.0 } else { 12.0 }, grm.handle()).unwrap())
            .collect();
        // LRM 0 has nothing; submits a job for 8 units.
        let alloc = lrms[0].submit(8.0).unwrap();
        let mut total = 0.0;
        for lrm in &lrms {
            total += lrm.fulfil(&alloc).unwrap();
        }
        assert!((total - 8.0).abs() < 1e-9);
        // Pools actually decreased.
        let pools: f64 = lrms.iter().map(Lrm::available).sum();
        assert!((pools - 16.0).abs() < 1e-9);
        grm.shutdown();
    }

    #[test]
    fn credit_updates_grm_view() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let a = Lrm::new(0, 1.0, grm.handle()).unwrap();
        let _b = Lrm::new(1, 1.0, grm.handle()).unwrap();
        a.credit(9.0).unwrap();
        let avail = grm.handle().availability().unwrap();
        assert!((avail[0] - 10.0).abs() < 1e-9);
        grm.shutdown();
    }

    #[test]
    fn fulfil_clamps_at_pool() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let a = Lrm::new(0, 0.0, grm.handle()).unwrap();
        let b = Lrm::new(1, 5.0, grm.handle()).unwrap();
        // Stale view: report 5, then locally drain b's pool out-of-band.
        {
            let alloc = a.submit(5.0).unwrap();
            // Drain b to 2 before it fulfils.
            b.credit(-0.0).unwrap();
            {
                let mut pool = b.pool.lock();
                *pool = 2.0;
            }
            let taken = b.fulfil(&alloc).unwrap();
            assert!((taken - 2.0).abs() < 1e-9, "clamped at stale pool");
            assert_eq!(b.available(), 0.0);
        }
        grm.shutdown();
    }

    #[test]
    fn fulfil_shortfall_reaches_grm_stats() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let a = Lrm::new(0, 0.0, grm.handle()).unwrap();
        let b = Lrm::new(1, 5.0, grm.handle()).unwrap();
        let alloc = a.submit(5.0).unwrap();
        {
            let mut pool = b.pool.lock();
            *pool = 2.0;
        }
        b.fulfil(&alloc).unwrap();
        let stats = grm.handle().stats().unwrap();
        assert_eq!(stats.partial_fulfils, 1);
        assert!((stats.fulfil_shortfall_units - 3.0).abs() < 1e-9);
        grm.shutdown();
    }

    #[test]
    fn degraded_submit_then_reconcile_settles_books_once() {
        use crate::recovery::AgreementJournal;
        use crate::resilient::{ResilientGrmClient, RetryPolicy};

        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let journal = AgreementJournal::new(complete(2, 0.5), 1);
        let a = Lrm::new(0, 10.0, grm.handle()).unwrap();
        let _b = Lrm::new(1, 10.0, grm.handle()).unwrap();
        let client = ResilientGrmClient::new(grm.handle(), 0, RetryPolicy::aggressive());
        grm.crash();

        // GRM gone: the submit degrades to a local-only grant...
        let (alloc, degraded) = a.submit_or_degrade(&client, 4.0).unwrap();
        assert!(degraded);
        assert!((alloc.draws[0] - 4.0).abs() < 1e-9);
        assert!((a.fulfil_local(&alloc) - 4.0).abs() < 1e-9);
        assert_eq!(a.degraded_backlog(), 1);
        // ...but cannot exceed the local pool (no agreements reachable).
        assert!(matches!(
            a.submit_or_degrade(&client, 50.0),
            Err(GrmError::Sched(agreements_sched::SchedError::InsufficientCapacity { .. }))
        ));

        // Standby comes up from the journal; client rebinds; reconcile.
        let standby = journal.respawn().unwrap();
        client.rebind(standby.handle());
        assert_eq!(a.reconcile(&client).unwrap(), 1);
        assert_eq!(a.degraded_backlog(), 0);
        let stats = standby.handle().stats().unwrap();
        assert_eq!(stats.journaled_grants, 1);
        assert!((stats.journaled_units - 4.0).abs() < 1e-9);
        // The re-report carried the post-grant pool.
        let avail = standby.handle().availability().unwrap();
        assert!((avail[0] - 6.0).abs() < 1e-9);
        // Reconcile is idempotent: nothing left to settle.
        assert_eq!(a.reconcile(&client).unwrap(), 0);
        let stats = standby.handle().stats().unwrap();
        assert_eq!(stats.journaled_grants, 1);
        standby.shutdown();
    }

    #[test]
    fn healthy_submit_through_resilient_client_is_not_degraded() {
        use crate::resilient::{ResilientGrmClient, RetryPolicy};
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let a = Lrm::new(0, 10.0, grm.handle()).unwrap();
        let _b = Lrm::new(1, 10.0, grm.handle()).unwrap();
        let client = ResilientGrmClient::new(grm.handle(), 0, RetryPolicy::default());
        let (alloc, degraded) = a.submit_or_degrade(&client, 3.0).unwrap();
        assert!(!degraded);
        assert!((alloc.amount - 3.0).abs() < 1e-9);
        assert_eq!(a.degraded_backlog(), 0);
        grm.shutdown();
    }

    #[test]
    fn submit_without_capacity_errors() {
        let grm = GrmServer::spawn(AgreementMatrix::zeros(2), 1);
        let a = Lrm::new(0, 1.0, grm.handle()).unwrap();
        let _b = Lrm::new(1, 100.0, grm.handle()).unwrap();
        assert!(a.submit(2.0).is_err(), "no agreements, only own 1 unit");
        assert!(a.submit(1.0).is_ok());
        grm.shutdown();
    }
}
