//! Cold-standby GRM recovery: a replayable agreement journal.
//!
//! The GRM's state splits into two halves with very different recovery
//! stories:
//!
//! - **Availability** is soft state. Every LRM periodically re-reports
//!   its pool, so a fresh GRM converges to the true availability view
//!   within one report round — nothing to persist.
//! - **Agreements** are hard state. They are negotiated out of band
//!   (§2 of the paper) and the GRM is their only holder at runtime, so
//!   a crash would lose the sharing contracts themselves.
//!
//! [`AgreementJournal`] closes the gap: every agreement-management
//! operation (set/join/leave) is recorded as it is applied, and the
//! journal can deterministically rebuild the [`AgreementMatrix`] a
//! standby GRM should boot with. Recovery is then: respawn from the
//! journal, have clients [`rebind`](crate::ResilientGrmClient::rebind),
//! have LRMs re-report, and replay any degraded-mode grants
//! ([`crate::GrmHandle::replay_grant`]) so the books settle.

use agreements_flow::{AgreementMatrix, FlowError};

use crate::server::{GrmError, GrmHandle, GrmServer};

/// One recorded agreement-management operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AgreementOp {
    /// `set_agreement(from, to, share)`.
    Set {
        /// Granting principal.
        from: usize,
        /// Receiving principal.
        to: usize,
        /// Fractional share granted.
        share: f64,
    },
    /// A new principal joined (index = matrix size before growth).
    Join,
    /// Principal `lrm` left the federation (row/column isolated).
    Leave {
        /// The departed principal.
        lrm: usize,
    },
}

/// Replayable log of the agreement-management state of one GRM.
///
/// Use the mutating wrappers ([`set_agreement`](Self::set_agreement),
/// [`join`](Self::join), [`leave`](Self::leave)) instead of raw
/// [`GrmHandle`] calls so the journal and the live server stay in
/// lock-step: an op is recorded only after the server accepted it.
#[derive(Debug, Clone)]
pub struct AgreementJournal {
    initial: AgreementMatrix,
    level: usize,
    ops: Vec<AgreementOp>,
}

impl AgreementJournal {
    /// Start a journal for a GRM booted with `initial` agreements at
    /// transitive-closure `level`.
    pub fn new(initial: AgreementMatrix, level: usize) -> Self {
        AgreementJournal { initial, level, ops: Vec::new() }
    }

    /// Transitive-closure level the GRM was booted with.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Recorded operations, oldest first.
    pub fn ops(&self) -> &[AgreementOp] {
        &self.ops
    }

    /// Apply `set_agreement` on the live GRM and record it on success.
    pub fn set_agreement(
        &mut self,
        h: &GrmHandle,
        from: usize,
        to: usize,
        share: f64,
    ) -> Result<(), GrmError> {
        h.set_agreement(from, to, share)?;
        self.ops.push(AgreementOp::Set { from, to, share });
        Ok(())
    }

    /// Apply `join` on the live GRM and record it on success. Returns
    /// the new principal's index.
    pub fn join(&mut self, h: &GrmHandle) -> Result<usize, GrmError> {
        let idx = h.join()?;
        self.ops.push(AgreementOp::Join);
        Ok(idx)
    }

    /// Apply `leave` on the live GRM and record it on success.
    pub fn leave(&mut self, h: &GrmHandle, lrm: usize) -> Result<(), GrmError> {
        h.leave(lrm)?;
        self.ops.push(AgreementOp::Leave { lrm });
        Ok(())
    }

    /// Record an operation that was already applied elsewhere (e.g. the
    /// op raced a crash and the caller confirmed it took effect).
    pub fn record(&mut self, op: AgreementOp) {
        self.ops.push(op);
    }

    /// Deterministically rebuild the agreement matrix the journal
    /// describes by replaying every op over the initial matrix.
    pub fn matrix(&self) -> Result<AgreementMatrix, FlowError> {
        let mut m = self.initial.clone();
        for op in &self.ops {
            match *op {
                AgreementOp::Set { from, to, share } => m.set(from, to, share)?,
                AgreementOp::Join => m = m.grown(),
                AgreementOp::Leave { lrm } => m.isolate(lrm)?,
            }
        }
        Ok(m)
    }

    /// Boot a cold-standby GRM from the journal. Availability starts
    /// empty: LRMs must re-report (and replay journalled degraded-mode
    /// grants) before the standby's view is authoritative.
    pub fn respawn(&self) -> Result<GrmServer, FlowError> {
        Ok(GrmServer::spawn(self.matrix()?, self.level))
    }

    /// Like [`respawn`](Self::respawn), but the standby's client link
    /// also runs through `plane` (the chaos run continues across the
    /// failover).
    pub fn respawn_chaotic(
        &self,
        plane: &agreements_faults::FaultPlane,
        link: &str,
    ) -> Result<GrmServer, FlowError> {
        Ok(GrmServer::spawn_chaotic(self.matrix()?, self.level, plane, link))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize, share: f64) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.set(i, j, share).unwrap();
                }
            }
        }
        s
    }

    #[test]
    fn replayed_matrix_tracks_live_mutations() {
        let grm = GrmServer::spawn(complete(2, 0.25), 2);
        let h = grm.handle();
        let mut journal = AgreementJournal::new(complete(2, 0.25), 2);

        let newbie = journal.join(&h).unwrap();
        assert_eq!(newbie, 2);
        journal.set_agreement(&h, newbie, 0, 0.5).unwrap();
        journal.set_agreement(&h, 0, newbie, 0.1).unwrap();
        journal.leave(&h, 1).unwrap();

        let m = journal.matrix().unwrap();
        assert_eq!(m.n(), 3);
        assert!((m.get(newbie, 0) - 0.5).abs() < 1e-12);
        assert!((m.get(0, newbie) - 0.1).abs() < 1e-12);
        assert_eq!(m.get(0, 1), 0.0, "departed principal is isolated");
        assert_eq!(m.get(1, 0), 0.0);
        grm.shutdown();
    }

    #[test]
    fn rejected_ops_are_not_journalled() {
        let grm = GrmServer::spawn(complete(2, 0.25), 1);
        let h = grm.handle();
        let mut journal = AgreementJournal::new(complete(2, 0.25), 1);
        assert!(journal.set_agreement(&h, 0, 7, 0.5).is_err());
        assert!(journal.leave(&h, 9).is_err());
        assert!(journal.is_empty());
        grm.shutdown();
    }

    #[test]
    fn standby_respawn_serves_same_decisions_after_re_reports() {
        let seedm = complete(3, 0.4);
        let grm = GrmServer::spawn(seedm.clone(), 2);
        let h = grm.handle();
        let mut journal = AgreementJournal::new(seedm, 2);
        journal.set_agreement(&h, 1, 0, 0.6).unwrap();
        for (i, v) in [4.0, 10.0, 3.0].into_iter().enumerate() {
            h.report(i, v).unwrap();
        }
        let before = h.request(0, 9.0).unwrap();
        // Put the units back so the standby sees the same pools.
        h.release(before.clone()).unwrap();
        grm.crash();

        let standby = journal.respawn().unwrap();
        let h2 = standby.handle();
        for (i, v) in [4.0, 10.0, 3.0].into_iter().enumerate() {
            h2.report(i, v).unwrap();
        }
        let after = h2.request(0, 9.0).unwrap();
        assert_eq!(before.draws, after.draws, "standby reproduces the grant");
        standby.shutdown();
    }
}
