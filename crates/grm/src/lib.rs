//! GRM/LRM runtime: the paper's cluster resource-manager architecture
//! (§3.2, final paragraph), realized on threads and channels.
//!
//! > "The resource management system has two components: a centralized
//! > global resource manager (GRM) and multiple local resource managers
//! > (LRM). The GRM provides services to manage sharing agreements and to
//! > schedule resources among local resource managers. LRMs are
//! > responsible for providing resource availability information to the
//! > GRM dynamically, and fulfilling resource allocation according to the
//! > GRM's decisions. The architecture also permits splitting of the GRMs
//! > into multiple levels, each responsible for a subset of the LRMs."
//!
//! - [`server::GrmServer`] runs the global scheduler on its own thread,
//!   owning the agreement flow table and the last-reported availability
//!   of every LRM; clients talk to it through a cloneable
//!   [`server::GrmHandle`] over crossbeam channels (agreement management,
//!   availability reports, allocation RPCs).
//! - [`lrm::Lrm`] owns an actual local resource pool and fulfils the
//!   GRM's reservation directives, reporting availability after every
//!   local change. When the GRM is unreachable it degrades to
//!   local-pool-only grants, journalling them for reconciliation.
//! - [`multilevel::TwoLevelGrm`] splits scheduling across group-level
//!   GRMs coordinated by a coarse root scheduler (multigrid refinement,
//!   §3.2).
//! - [`resilient::ResilientGrmClient`] adds per-call deadlines,
//!   idempotent retries (client-generated [`server::RequestId`]s against
//!   the server's dedup window), and capped, jittered backoff.
//! - [`recovery::AgreementJournal`] makes the agreement-management state
//!   replayable so a cold-standby GRM can be rebuilt after a crash, with
//!   availability restored from LRM re-reports.
//!
//! The whole federation can be run under the deterministic fault plane
//! of the `agreements-faults` crate ([`server::GrmServer::spawn_chaotic`];
//! chaos invariants live in `tests/chaos_federation.rs`). See DESIGN.md
//! §8 for the fault model.

// Index-based loops are idiomatic for the dense matrix math in this
// crate; clippy's iterator rewrites would obscure the row/column algebra.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod lrm;
pub mod multilevel;
pub mod policy_adapter;
pub mod recovery;
pub mod resilient;
pub mod server;

pub use lrm::Lrm;
pub use multilevel::TwoLevelGrm;
pub use policy_adapter::GrmBackedPolicy;
pub use recovery::AgreementJournal;
pub use resilient::{ResilientGrmClient, RetryPolicy};
pub use server::{
    GrmClient, GrmError, GrmHandle, GrmServer, GrmStats, RecordedDecision, RequestId,
};
