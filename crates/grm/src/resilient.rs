//! A retrying, deadline-bounded GRM client.
//!
//! A bare [`GrmHandle`] trusts its transport: a dropped reply blocks the
//! caller forever, and a blind resend would double-grant. The
//! [`ResilientGrmClient`] assumes the opposite — replies can vanish,
//! servers can die and be replaced — and recovers with three mechanisms:
//!
//! 1. **Per-call deadlines**: every RPC waits at most
//!    [`RetryPolicy::deadline`] for its reply, then classifies the
//!    failure through [`GrmError::is_retryable`].
//! 2. **Idempotent retries**: every logical call carries one
//!    [`RequestId`] across all its attempts, so the server's dedup
//!    window turns at-least-once sends into at-most-once effects.
//! 3. **Capped exponential backoff with deterministic jitter**: retry
//!    pacing is drawn from a seeded stream, so a chaos schedule
//!    reproduces byte-for-byte from its seed.
//!
//! After a GRM crash, [`ResilientGrmClient::rebind`] points the client
//! at the cold standby; in-flight ids stay valid (the standby simply has
//! never seen them, so retried calls execute fresh — and the agreement
//! journal replay plus LRM re-reports have already rebuilt its state;
//! see `recovery`).

use crate::server::{GrmClient, GrmError, GrmHandle, RequestId};
use agreements_sched::Allocation;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use parking_lot::Mutex;
use rand::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Deadline and retry pacing for a [`ResilientGrmClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long each attempt waits for its reply.
    pub deadline: Duration,
    /// Total attempts per logical call (first try + retries), ≥ 1.
    pub max_attempts: usize,
    /// Backoff before retry `k` (counted from 1) starts from
    /// `base_backoff × 2^(k-1)` …
    pub base_backoff: Duration,
    /// … and never exceeds this cap.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            deadline: Duration::from_millis(200),
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(80),
        }
    }
}

impl RetryPolicy {
    /// A policy tuned for chaos tests: tight deadlines, fast retries.
    pub fn aggressive() -> Self {
        RetryPolicy {
            deadline: Duration::from_millis(25),
            max_attempts: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
        }
    }
}

/// A [`GrmClient`] wrapper with deadlines, idempotent retries, and
/// failover rebinding. Shareable across threads (`&self` methods).
/// Generic over the transport — the default `GrmHandle` is the
/// in-process channel client; a networked client slots in unchanged.
pub struct ResilientGrmClient<C: GrmClient + Clone = GrmHandle> {
    handle: Mutex<C>,
    client_id: u64,
    seq: AtomicU64,
    policy: RetryPolicy,
    /// Seeded jitter stream: deterministic backoff schedules per client.
    jitter: Mutex<StdRng>,
}

impl<C: GrmClient + Clone> ResilientGrmClient<C> {
    /// Wrap a handle. `client_id` must be unique among clients issuing
    /// idempotent calls to the same GRM (it namespaces [`RequestId`]s);
    /// the jitter stream is seeded from it so every client backs off on
    /// its own deterministic schedule.
    pub fn new(handle: C, client_id: u64, policy: RetryPolicy) -> Self {
        ResilientGrmClient {
            handle: Mutex::new(handle),
            client_id,
            seq: AtomicU64::new(0),
            policy,
            jitter: Mutex::new(StdRng::seed_from_u64(client_id ^ 0x5EED_BACC)),
        }
    }

    /// The client id namespacing this client's [`RequestId`]s.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// The configured retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Point the client at a new GRM (cold standby after a crash).
    /// In-flight and future calls use the new handle on their next
    /// attempt.
    pub fn rebind(&self, handle: C) {
        *self.handle.lock() = handle;
    }

    /// Reserve the next request id (used by degraded-mode journaling so
    /// a local fallback grant settles under a real id on reconcile).
    pub fn next_id(&self) -> RequestId {
        RequestId { client: self.client_id, seq: self.seq.fetch_add(1, Ordering::Relaxed) }
    }

    fn current_handle(&self) -> C {
        self.handle.lock().clone()
    }

    /// Allocation RPC with deadline + idempotent retries.
    pub fn request(&self, lrm: usize, amount: f64) -> Result<Allocation, GrmError> {
        let id = self.next_id();
        self.request_as(id, lrm, amount)
    }

    /// Allocation RPC under a caller-chosen id (for resuming a call
    /// whose earlier attempts already consumed the id).
    pub fn request_as(
        &self,
        id: RequestId,
        lrm: usize,
        amount: f64,
    ) -> Result<Allocation, GrmError> {
        self.retry_loop(|h| h.issue_request(lrm, amount, Some(id)))
    }

    /// Release with deadline + idempotent retries.
    pub fn release(&self, alloc: Allocation) -> Result<(), GrmError> {
        let id = self.next_id();
        self.retry_loop(move |h| h.issue_release(alloc.clone(), Some(id)))
    }

    /// Replay a degraded-mode grant (see `Lrm::reconcile`), idempotently.
    pub fn replay_grant(&self, id: RequestId, lrm: usize, amount: f64) -> Result<(), GrmError> {
        self.retry_loop(|h| h.issue_replay(id, lrm, amount))
    }

    /// Availability report with deadline-less best effort: reports are
    /// fire-and-forget refreshes, so a send failure is returned but not
    /// retried (the next report supersedes this one anyway).
    pub fn report(&self, lrm: usize, available: f64) -> Result<(), GrmError> {
        self.current_handle().report(lrm, available)
    }

    /// Lease tick passthrough (fire-and-forget, like reports).
    pub fn tick(&self, now: u64, lease: u64) -> Result<(), GrmError> {
        self.current_handle().tick(now, lease)
    }

    /// One deadline-bounded attempt per loop turn; retries only
    /// transport-classified failures, with capped exponential backoff
    /// and deterministic jitter between attempts.
    fn retry_loop<T, F>(&self, issue: F) -> Result<T, GrmError>
    where
        F: Fn(&C) -> Result<Receiver<Result<T, GrmError>>, GrmError>,
    {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let outcome = match issue(&self.current_handle()) {
                Ok(rx) => match rx.recv_timeout(self.policy.deadline) {
                    Ok(decision) => decision,
                    Err(RecvTimeoutError::Timeout) => Err(GrmError::DeadlineExceeded {
                        millis: self.policy.deadline.as_millis() as u64,
                    }),
                    Err(RecvTimeoutError::Disconnected) => Err(GrmError::Disconnected),
                },
                Err(e) => Err(e),
            };
            match outcome {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempts < self.policy.max_attempts => {
                    std::thread::sleep(self.backoff(attempts));
                }
                // Retryable but out of attempts: every transport-class
                // failure exhausts the same way (including the socket
                // variants), so callers see one terminal error.
                Err(e) if e.is_retryable() => {
                    return Err(GrmError::RetriesExhausted { attempts });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Backoff before the retry following attempt `attempt` (1-based):
    /// `base × 2^(attempt-1)`, capped, scaled by a jitter factor in
    /// `[0.5, 1.0)` drawn from the seeded stream.
    fn backoff(&self, attempt: usize) -> Duration {
        let exp = attempt.saturating_sub(1).min(16) as u32;
        let raw = self.policy.base_backoff.saturating_mul(1u32 << exp);
        let capped = raw.min(self.policy.max_backoff);
        let factor = 0.5 + 0.5 * self.jitter.lock().gen::<f64>();
        capped.mul_f64(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::GrmServer;
    use agreements_faults::{FaultMix, FaultPlane};
    use agreements_flow::AgreementMatrix;

    fn complete(n: usize, share: f64) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.set(i, j, share).unwrap();
                }
            }
        }
        s
    }

    #[test]
    fn clean_network_round_trip() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let client = ResilientGrmClient::new(grm.handle(), 1, RetryPolicy::default());
        client.report(0, 0.0).unwrap();
        client.report(1, 10.0).unwrap();
        let alloc = client.request(0, 4.0).unwrap();
        assert!((alloc.amount - 4.0).abs() < 1e-9);
        client.release(alloc).unwrap();
        let avail = grm.handle().availability().unwrap();
        assert!((avail.iter().sum::<f64>() - 10.0).abs() < 1e-9);
        grm.shutdown();
    }

    #[test]
    fn dead_server_exhausts_retries() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let handle = grm.handle();
        grm.shutdown();
        let client = ResilientGrmClient::new(handle, 2, RetryPolicy::aggressive());
        match client.request(0, 1.0) {
            Err(GrmError::RetriesExhausted { attempts }) => {
                assert_eq!(attempts, RetryPolicy::aggressive().max_attempts);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn lossy_link_retries_to_success_without_double_grant() {
        // Drop just under half of all messages: several attempts may be
        // needed, and duplicates of the same id must not double-grant.
        let plane = FaultPlane::new(1234, FaultMix { drop: 0.45, dup: 0.3, ..FaultMix::none() });
        let grm = GrmServer::spawn_chaotic(complete(2, 1.0), 1, &plane, "grm");
        let client = ResilientGrmClient::new(
            grm.handle(),
            3,
            RetryPolicy {
                deadline: Duration::from_millis(30),
                max_attempts: 40,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
            },
        );
        // Seed the view through the lossy link until it sticks.
        let direct = grm.handle();
        let mut granted = 0u64;
        for k in 0..6 {
            // Reports may be dropped; re-push state via the *plane* (the
            // realistic path), then verify through a direct read.
            for _ in 0..8 {
                let _ = client.report(0, 0.0);
                let _ = client.report(1, 10.0);
            }
            match client.request(0, 1.0) {
                Ok(a) => {
                    granted += 1;
                    assert!((a.amount - 1.0).abs() < 1e-9, "attempt {k}");
                }
                Err(GrmError::RetriesExhausted { .. }) => {}
                Err(GrmError::Sched(_)) => {} // stale view mid-schedule
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        }
        plane.heal();
        // Let the healed link settle, then check the books directly.
        for _ in 0..3 {
            let _ = client.report(0, 0.0);
            let _ = client.report(1, 10.0);
        }
        let stats = direct.stats().unwrap();
        assert!(granted > 0, "at least one request should eventually land");
        // Exactly-once effects: the server granted every id the client
        // observed as granted, and never more ids than were issued (a
        // grant whose reply outran the very last deadline can leave
        // stats.granted one ahead of the client's count, but duplication
        // and retries can never multiply a grant).
        assert!(stats.granted >= granted, "client saw {granted}, server {}", stats.granted);
        assert!(stats.granted <= 6, "more grants than logical calls: {}", stats.granted);
        grm.shutdown();
    }

    #[test]
    fn rebind_after_crash_reaches_standby() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let client = ResilientGrmClient::new(grm.handle(), 4, RetryPolicy::aggressive());
        client.report(0, 0.0).unwrap();
        client.report(1, 5.0).unwrap();
        assert!(client.request(0, 1.0).is_ok());
        grm.crash();
        assert!(matches!(client.request(0, 1.0), Err(GrmError::RetriesExhausted { .. })));
        // Cold standby comes up; the client is rebound and recovers.
        let standby = GrmServer::spawn(complete(2, 1.0), 1);
        client.rebind(standby.handle());
        client.report(0, 0.0).unwrap();
        client.report(1, 5.0).unwrap();
        assert!(client.request(0, 1.0).is_ok());
        standby.shutdown();
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let policy = RetryPolicy {
            deadline: Duration::from_millis(1),
            max_attempts: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
        };
        let a = ResilientGrmClient::new(grm.handle(), 9, policy);
        let b = ResilientGrmClient::new(grm.handle(), 9, policy);
        let seq_a: Vec<Duration> = (1..8).map(|k| a.backoff(k)).collect();
        let seq_b: Vec<Duration> = (1..8).map(|k| b.backoff(k)).collect();
        assert_eq!(seq_a, seq_b, "same client id, same jitter schedule");
        for (k, d) in seq_a.iter().enumerate() {
            assert!(*d <= Duration::from_millis(10), "cap respected at attempt {k}");
            assert!(*d >= Duration::from_millis(1), "at least half the base");
        }
        let c = ResilientGrmClient::new(grm.handle(), 10, policy);
        let seq_c: Vec<Duration> = (1..8).map(|k| c.backoff(k)).collect();
        assert_ne!(seq_a, seq_c, "different clients, different schedules");
        grm.shutdown();
    }
}
