//! Property tests on simulator invariants: request conservation,
//! determinism, and sharing sanity under random workloads.

use agreements_flow::AgreementMatrix;
use agreements_proxysim::{PolicyKind, SharingConfig, SimConfig, Simulator};
use agreements_trace::{ProxyTrace, Request, ServiceModel};
use proptest::prelude::*;

/// A random but modest workload: per proxy, a set of bursts (start time,
/// count, spacing, response length).
#[derive(Debug, Clone)]
struct Workload {
    n: usize,
    traces: Vec<ProxyTrace>,
    total: usize,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (2usize..=4).prop_flat_map(|n| {
        proptest::collection::vec(
            proptest::collection::vec(
                (
                    0.0f64..80_000.0,     // burst start
                    1usize..=40,          // count
                    0.1f64..5.0,          // spacing
                    1_000u64..=2_000_000, // response length
                ),
                0..=3,
            ),
            n,
        )
        .prop_map(move |bursts_per_proxy| {
            let mut traces = Vec::with_capacity(n);
            let mut total = 0;
            for (p, bursts) in bursts_per_proxy.into_iter().enumerate() {
                let mut requests: Vec<Request> = bursts
                    .into_iter()
                    .flat_map(|(t0, count, spacing, len)| {
                        (0..count).map(move |i| Request {
                            arrival: (t0 + i as f64 * spacing).min(86_399.0),
                            response_len: len,
                        })
                    })
                    .collect();
                requests.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap());
                total += requests.len();
                traces.push(ProxyTrace { proxy: p, requests });
            }
            Workload { n, traces, total }
        })
    })
}

fn config(n: usize, sharing: bool) -> SimConfig {
    let mut cfg = SimConfig {
        n,
        capacity: 1.0,
        per_proxy_capacity: None,
        epoch: 10.0,
        threshold_epochs: 1.0,
        horizon_epochs: 1.0,
        service: ServiceModel::PAPER,
        sharing: None,
        max_drain: 4.0 * 86_400.0,
        warmup_days: 0,
        record_decisions: false,
        discipline: agreements_proxysim::QueueDiscipline::Fifo,
    };
    if sharing {
        let mut s = AgreementMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.set(i, j, 0.3).unwrap();
                }
            }
        }
        cfg = cfg.with_sharing(SharingConfig {
            agreements: s,
            level: n - 1,
            policy: PolicyKind::Lp,
            redirect_cost: 0.0,
            schedule: Vec::new(),
        });
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every admitted request is served exactly once (conservation), with
    /// or without sharing.
    #[test]
    fn all_requests_served_once(w in arb_workload(), sharing in any::<bool>()) {
        let sim = Simulator::new(config(w.n, sharing)).unwrap();
        let r = sim.run(&w.traces).unwrap();
        prop_assert!(r.is_stable());
        prop_assert_eq!(r.served, w.total);
        let slot_arrivals: usize = r.slots.iter().map(|s| s.arrivals).sum();
        let slot_served: usize = r.slots.iter().map(|s| s.served).sum();
        prop_assert_eq!(slot_arrivals, w.total);
        prop_assert_eq!(slot_served, w.total);
        // Per-proxy slots sum to the same totals.
        let per_proxy: usize = r.proxy_slots.iter()
            .flat_map(|slots| slots.iter().map(|s| s.served))
            .sum();
        prop_assert_eq!(per_proxy, w.total);
    }

    /// Runs are bit-for-bit deterministic.
    #[test]
    fn runs_are_deterministic(w in arb_workload(), sharing in any::<bool>()) {
        let sim = Simulator::new(config(w.n, sharing)).unwrap();
        let a = sim.run(&w.traces).unwrap();
        let b = sim.run(&w.traces).unwrap();
        prop_assert_eq!(a.served, b.served);
        prop_assert_eq!(a.redirected, b.redirected);
        prop_assert!((a.total_wait - b.total_wait).abs() < 1e-9);
        prop_assert_eq!(a.consultations, b.consultations);
    }

    /// Waiting times are non-negative and the worst is at least the
    /// average.
    #[test]
    fn wait_statistics_are_consistent(w in arb_workload(), sharing in any::<bool>()) {
        let sim = Simulator::new(config(w.n, sharing)).unwrap();
        let r = sim.run(&w.traces).unwrap();
        prop_assert!(r.total_wait >= 0.0);
        prop_assert!(r.worst_wait + 1e-9 >= r.avg_wait());
        for s in &r.slots {
            prop_assert!(s.max_wait + 1e-9 >= s.avg_wait());
            prop_assert!(s.redirected <= s.served);
        }
    }

    /// Histogram quantiles are monotone in q, bounded by the worst wait
    /// times the bucket growth factor, and count every service.
    #[test]
    fn histogram_quantiles_consistent(w in arb_workload()) {
        let sim = Simulator::new(config(w.n, false)).unwrap();
        let r = sim.run(&w.traces).unwrap();
        prop_assume!(r.served > 0);
        prop_assert_eq!(r.wait_histogram.count() as usize, r.served);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut prev = 0.0;
        for &q in &qs {
            let v = r.wait_quantile(q);
            prop_assert!(v >= prev, "quantiles must be monotone");
            prev = v;
        }
        // p100 is within one bucket (25%) of the true worst (or the floor
        // bucket when everything waited less than a millisecond).
        let p100 = r.wait_quantile(1.0);
        prop_assert!(p100 <= (r.worst_wait * 1.25).max(1e-3) + 1e-9,
            "p100 {p100} vs worst {}", r.worst_wait);
        prop_assert!(p100 >= r.worst_wait * 0.79 - 1e-9,
            "p100 {p100} under worst {}", r.worst_wait);
    }

    /// With free redirection, LP sharing never makes the *total* wait
    /// dramatically worse than no sharing (it can differ slightly because
    /// moving the queue tail reorders service).
    #[test]
    fn free_sharing_does_not_hurt_much(w in arb_workload()) {
        let alone = Simulator::new(config(w.n, false)).unwrap().run(&w.traces).unwrap();
        let shared = Simulator::new(config(w.n, true)).unwrap().run(&w.traces).unwrap();
        prop_assert!(
            shared.total_wait <= alone.total_wait * 1.10 + 60.0,
            "sharing {:.1} vs alone {:.1}",
            shared.total_wait,
            alone.total_wait
        );
    }
}
