//! The epoch-driven simulation core.

use crate::config::{AgreementEvent, PolicyKind, SimConfig};
use crate::metrics::SimResult;
use crate::proxy::{Proxy, QueuedRequest};
use agreements_flow::{IncrementalFlow, TransitiveFlow};
use agreements_sched::{
    AllocationPolicy, CachedLpPolicy, GreedyPolicy, ProportionalPolicy, SystemState,
};
use agreements_telemetry::{Telemetry, TelemetryEvent};
use agreements_trace::{ProxyTrace, DAY_SECONDS};
use std::fmt;
use std::sync::Arc;

/// Errors constructing or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Trace count does not match the configured proxy count.
    TraceCountMismatch {
        /// Configured proxy count.
        expected: usize,
        /// Traces supplied.
        got: usize,
    },
    /// Agreement matrix dimension does not match the proxy count.
    AgreementMismatch {
        /// Configured proxy count.
        expected: usize,
        /// Agreement matrix dimension.
        got: usize,
    },
    /// Non-positive capacity or epoch.
    InvalidConfig(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TraceCountMismatch { expected, got } => {
                write!(f, "expected {expected} traces, got {got}")
            }
            SimError::AgreementMismatch { expected, got } => {
                write!(f, "agreement matrix is {got}x{got}, need {expected}")
            }
            SimError::InvalidConfig(what) => write!(f, "invalid config: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A configured simulator, ready to run traces.
///
/// The flow table is held by `Arc`: consultations share the snapshot
/// with the scheduler state instead of cloning the n×n matrix per
/// consultation, and when an agreement-fluctuation schedule is active
/// each edit republishes a fresh snapshot repaired incrementally.
pub struct Simulator {
    cfg: SimConfig,
    flow: Option<Arc<TransitiveFlow>>,
    policy: Option<Box<dyn AllocationPolicy + Send>>,
    telemetry: Telemetry,
}

impl Simulator {
    /// Build a simulator; precomputes the transitive flow table.
    pub fn new(cfg: SimConfig) -> Result<Self, SimError> {
        if cfg.capacity <= 0.0 || !cfg.capacity.is_finite() {
            return Err(SimError::InvalidConfig("capacity must be positive"));
        }
        if let Some(per) = &cfg.per_proxy_capacity {
            if per.len() != cfg.n {
                return Err(SimError::InvalidConfig("per_proxy_capacity length must equal n"));
            }
            if per.iter().any(|c| *c <= 0.0 || !c.is_finite()) {
                return Err(SimError::InvalidConfig("per-proxy capacities must be positive"));
            }
        }
        if cfg.epoch <= 0.0 || !cfg.epoch.is_finite() {
            return Err(SimError::InvalidConfig("epoch must be positive"));
        }
        let (flow, policy) = match &cfg.sharing {
            None => (None, None),
            Some(sh) => {
                if sh.agreements.n() != cfg.n {
                    return Err(SimError::AgreementMismatch {
                        expected: cfg.n,
                        got: sh.agreements.n(),
                    });
                }
                // Reject an unappliable schedule up front rather than
                // mid-run: dry-run every event against a scratch matrix.
                if !sh.schedule.is_empty() {
                    let mut probe = sh.agreements.clone();
                    for e in &sh.schedule {
                        if !e.at.is_finite() {
                            return Err(SimError::InvalidConfig(
                                "schedule event time must be finite",
                            ));
                        }
                        probe.set(e.from, e.to, e.share).map_err(|_| {
                            SimError::InvalidConfig("invalid agreement schedule event")
                        })?;
                    }
                }
                let flow = Arc::new(TransitiveFlow::compute(&sh.agreements, sh.level));
                let policy: Box<dyn AllocationPolicy + Send> = match sh.policy {
                    // Consultations solve the same-shaped LP thousands of
                    // times per day: run them on the cached solver
                    // (persistent skeleton + workspace, single-solve best
                    // effort) — bit-identical to the stateless LpPolicy.
                    PolicyKind::Lp => Box::new(CachedLpPolicy::reduced()),
                    PolicyKind::Proportional => {
                        // End-point enforcement: the proportional split is
                        // blind to load, but each end point enforces its
                        // agreement share against the resources it
                        // actually has available (relative agreements are
                        // defined over *available* resources, §2.1), so
                        // overflow routed at busy near neighbours bounces
                        // and stays queued at home.
                        Box::new(ProportionalPolicy::new(sh.agreements.clone()))
                    }
                    PolicyKind::Greedy => Box::new(GreedyPolicy),
                    PolicyKind::LpFairShare => {
                        Box::new(agreements_sched::FairShareLpPolicy::default())
                    }
                    PolicyKind::LpCostAware { per_hop, lambda } => Box::new(
                        agreements_sched::CostAwareLpPolicy::ring_distance(cfg.n, per_hop, lambda),
                    ),
                };
                (Some(flow), Some(policy))
            }
        };
        Ok(Simulator { cfg, flow, policy, telemetry: Telemetry::default() })
    }

    /// Attach a telemetry plane: per-consultation θ records flow from
    /// the epoch loop, the policy records its admission decisions and
    /// LP-solve timings, and an active fluctuation schedule records its
    /// incremental flow repairs. `Telemetry::default()` (the initial
    /// state) keeps every run bit-identical to an uninstrumented one.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        if let Some(policy) = &self.policy {
            policy.set_telemetry(&telemetry);
        }
        self.telemetry = telemetry;
    }

    /// Build a simulator that consults a caller-supplied policy instead
    /// of one derived from [`PolicyKind`] — e.g. a
    /// policy backed by a live GRM server, or a custom objective.
    /// `cfg.sharing` must be set (it still supplies the agreement
    /// structure, transitivity level, and redirection cost).
    pub fn with_policy(
        cfg: SimConfig,
        policy: Box<dyn AllocationPolicy + Send>,
    ) -> Result<Self, SimError> {
        let mut sim = Simulator::new(cfg)?;
        if sim.flow.is_none() {
            return Err(SimError::InvalidConfig("with_policy requires cfg.sharing to be set"));
        }
        sim.policy = Some(policy);
        Ok(sim)
    }

    /// Run the full day plus drain; returns aggregated metrics.
    pub fn run(&self, traces: &[ProxyTrace]) -> Result<SimResult, SimError> {
        let n = self.cfg.n;
        if traces.len() != n {
            return Err(SimError::TraceCountMismatch { expected: n, got: traces.len() });
        }
        if let Some(policy) = &self.policy {
            // Each run is an independent replay: drop any acceleration
            // state a previous run left in a stateful policy so repeated
            // runs of one simulator stay bit-identical.
            policy.begin_run();
        }
        let mut result = SimResult::new(n);
        let mut proxies: Vec<Proxy> = (0..n)
            .map(|i| Proxy::with_discipline(self.cfg.capacity_of(i), self.cfg.discipline))
            .collect();
        let mut cursors = vec![0usize; n];
        // Replay the trace warmup_days + 1 times; record only the last day.
        let days = self.cfg.warmup_days + 1;
        let measure_from = self.cfg.warmup_days as f64 * DAY_SECONDS;
        let total_span = days as f64 * DAY_SECONDS;
        let epoch = self.cfg.epoch;
        let threshold_work: Vec<f64> =
            (0..n).map(|i| self.cfg.threshold_epochs * self.cfg.capacity_of(i) * epoch).collect();
        let horizon = self.cfg.horizon_epochs * epoch;
        let redirect_cost = self.cfg.sharing.as_ref().map_or(0.0, |s| s.redirect_cost);

        // Agreement fluctuation (Figure 12 variants): events repair the
        // flow table incrementally at epoch boundaries. With an empty
        // schedule `flow_now` is exactly the precomputed snapshot and the
        // run is bit-identical to the static-agreement behavior.
        let mut flow_now = self.flow.clone();
        let mut churn: Option<(IncrementalFlow, Vec<AgreementEvent>, usize)> =
            match &self.cfg.sharing {
                Some(sh) if !sh.schedule.is_empty() => {
                    let mut events = sh.schedule.clone();
                    events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite event times"));
                    let mut inc = IncrementalFlow::new(sh.agreements.clone(), sh.level);
                    inc.set_telemetry(self.telemetry.clone());
                    Some((inc, events, 0))
                }
                _ => None,
            };

        let mut t = 0.0f64;
        loop {
            // 0. Apply due agreement edits and republish the snapshot.
            if let Some((inc, events, cursor)) = &mut churn {
                let mut changed = false;
                while *cursor < events.len() && measure_from + events[*cursor].at <= t {
                    let e = events[*cursor];
                    *cursor += 1;
                    inc.set(e.from, e.to, e.share).expect("schedule validated at construction");
                    changed = true;
                }
                if changed {
                    flow_now = Some(inc.snapshot());
                }
            }
            // 1. Admit this epoch's arrivals (cursor indexes the virtual
            //    replayed stream: day d, request i).
            let mut any_left = false;
            for (p, trace) in traces.iter().enumerate() {
                let reqs = &trace.requests;
                if reqs.is_empty() {
                    continue;
                }
                let total = reqs.len() * days;
                while cursors[p] < total {
                    let day = cursors[p] / reqs.len();
                    let r = reqs[cursors[p] % reqs.len()];
                    let arrival = r.arrival + day as f64 * DAY_SECONDS;
                    if arrival >= t + epoch {
                        break;
                    }
                    cursors[p] += 1;
                    let measured = arrival >= measure_from;
                    if measured {
                        result.record_arrival(p, arrival);
                    }
                    proxies[p].queue.push_back(QueuedRequest {
                        arrival,
                        demand: self.cfg.service.demand(&r),
                        home: p,
                        redirected: false,
                        measured,
                    });
                }
                any_left |= cursors[p] < total;
            }

            // 2. Scheduler consultations for overloaded proxies.
            if let (Some(flow), Some(policy)) = (&flow_now, &self.policy) {
                let mut avail: Vec<f64> =
                    proxies.iter().map(|p| p.idle_capacity(t, horizon)).collect();
                for i in 0..n {
                    let pending = proxies[i].pending_work(t);
                    if pending <= threshold_work[i] {
                        continue;
                    }
                    // Movable work: non-redirected queued requests only.
                    let movable: f64 =
                        proxies[i].queue.iter().filter(|r| !r.redirected).map(|r| r.demand).sum();
                    let excess = (pending - threshold_work[i]).min(movable);
                    if excess <= 0.0 {
                        continue;
                    }
                    result.consultations += 1;
                    let state = match SystemState::new(flow.clone(), None, avail.clone()) {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let alloc = match policy.allocate_up_to(&state, i, excess) {
                        Ok(a) => a,
                        Err(_) => continue,
                    };
                    let wants: Vec<(usize, f64)> = alloc.remote_draws().collect();
                    let moved = redistribute(&mut proxies, i, &wants, redirect_cost);
                    for &(k, m) in &moved {
                        avail[k] = (avail[k] - m).max(0.0);
                    }
                    self.telemetry.add("proxysim.consultations", 1);
                    self.telemetry.record_with(|| TelemetryEvent::EpochTheta {
                        time: t,
                        proxy: i,
                        excess,
                        theta: alloc.theta,
                        moved: moved.iter().map(|&(_, m)| m).sum(),
                    });
                    if self.cfg.record_decisions && t >= measure_from {
                        result.decisions.push(crate::metrics::Decision {
                            time: t - measure_from,
                            proxy: i,
                            excess,
                            moved,
                        });
                    }
                }
            }

            // 3. Serve the epoch everywhere.
            for proxy in &mut proxies {
                for (req, wait) in proxy.serve_epoch(t, epoch) {
                    if req.measured {
                        result.record_service(req.home, req.arrival, wait, req.redirected);
                    }
                }
            }

            t += epoch;
            // Termination: trace exhausted, queues empty, servers idle.
            let day_done = t >= total_span && !any_left;
            if day_done {
                let all_idle = proxies.iter().all(|p| p.queue.is_empty() && p.server_free_at <= t);
                if all_idle {
                    break;
                }
                if t > total_span + self.cfg.max_drain {
                    result.unserved = proxies.iter().map(|p| p.queue.len()).sum();
                    break;
                }
            }
        }
        Ok(result)
    }
}

/// Redirect queued work from proxy `from` to the destinations in `wants`
/// (`(destination, work-seconds)` pairs), charging `cost` extra demand per
/// moved request.
///
/// Selection is **largest-demand first** among not-yet-redirected
/// requests: moving few, heavy requests carries the most overload work per
/// redirected request, keeping the redirected *request* fraction low (the
/// paper reports < 1.5%) and making the fixed per-request redirection
/// overhead negligible relative to what is moved.
///
/// Returns the `(destination, work moved)` pairs actually realized
/// (excluding the added cost).
fn redistribute(
    proxies: &mut [Proxy],
    from: usize,
    wants: &[(usize, f64)],
    cost: f64,
) -> Vec<(usize, f64)> {
    // Movable candidates, heaviest first.
    let mut candidates: Vec<(usize, f64)> = proxies[from]
        .queue
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.redirected)
        .map(|(idx, r)| (idx, r.demand))
        .collect();
    candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite demands"));

    // Destinations by descending want; first-fit-decreasing assignment.
    // Candidates are scanned heaviest-first per destination, skipping ones
    // already taken (O(candidates × destinations), destinations ≤ n).
    let mut order: Vec<(usize, f64)> = wants.to_vec();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite wants"));
    let mut taken = vec![false; candidates.len()];
    // queue index -> destination
    let mut assignment: Vec<(usize, usize)> = Vec::new();
    let mut moved: Vec<(usize, f64)> = Vec::new();
    for &(dest, want) in &order {
        debug_assert_ne!(dest, from);
        let mut remaining = want;
        let mut got = 0.0f64;
        for (c, &(idx, demand)) in candidates.iter().enumerate() {
            if taken[c] || demand > remaining + 1e-9 {
                continue;
            }
            taken[c] = true;
            assignment.push((idx, dest));
            remaining -= demand;
            got += demand;
            if remaining <= 1e-9 {
                break;
            }
        }
        if got > 0.0 {
            moved.push((dest, got));
        }
    }

    if assignment.is_empty() {
        return moved;
    }
    // Extract assigned requests (preserving arrival order per
    // destination) and rebuild the source queue.
    assignment.sort_unstable();
    let mut per_dest: Vec<Vec<QueuedRequest>> = vec![Vec::new(); proxies.len()];
    let mut kept: std::collections::VecDeque<QueuedRequest> =
        std::collections::VecDeque::with_capacity(proxies[from].queue.len());
    let mut aiter = assignment.iter().peekable();
    for (idx, r) in std::mem::take(&mut proxies[from].queue).into_iter().enumerate() {
        if let Some(&&(aidx, dest)) = aiter.peek() {
            if aidx == idx {
                aiter.next();
                per_dest[dest].push(QueuedRequest {
                    demand: r.demand + cost,
                    redirected: true,
                    ..r
                });
                continue;
            }
        }
        kept.push_back(r);
    }
    proxies[from].queue = kept;
    for (dest, reqs) in per_dest.into_iter().enumerate() {
        for r in reqs {
            proxies[dest].queue.push_back(r);
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SharingConfig;
    use agreements_flow::AgreementMatrix;
    use agreements_trace::{Request, ServiceModel};

    /// A burst of `count` requests of fixed length arriving at `t0`, one
    /// per `spacing` seconds.
    fn burst(proxy: usize, t0: f64, count: usize, spacing: f64, len: u64) -> ProxyTrace {
        ProxyTrace {
            proxy,
            requests: (0..count)
                .map(|i| Request { arrival: t0 + i as f64 * spacing, response_len: len })
                .collect(),
        }
    }

    fn empty(proxy: usize) -> ProxyTrace {
        ProxyTrace { proxy, requests: vec![] }
    }

    fn base_cfg(n: usize) -> SimConfig {
        SimConfig {
            n,
            capacity: 1.0,
            per_proxy_capacity: None,
            epoch: 10.0,
            threshold_epochs: 1.0,
            horizon_epochs: 1.0,
            service: ServiceModel::PAPER,
            sharing: None,
            max_drain: 86_400.0,
            warmup_days: 0,
            record_decisions: false,
            discipline: crate::proxy::QueueDiscipline::Fifo,
        }
    }

    fn complete(n: usize, share: f64) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.set(i, j, share).unwrap();
                }
            }
        }
        s
    }

    #[test]
    fn all_requests_served_and_counted() {
        let cfg = base_cfg(2);
        let sim = Simulator::new(cfg).unwrap();
        let traces = vec![burst(0, 0.0, 100, 1.0, 10_000), burst(1, 5.0, 50, 2.0, 10_000)];
        let r = sim.run(&traces).unwrap();
        assert_eq!(r.served, 150);
        assert!(r.is_stable());
        assert_eq!(r.slots.iter().map(|s| s.arrivals).sum::<usize>(), 150);
        assert_eq!(r.slots.iter().map(|s| s.served).sum::<usize>(), 150);
        assert_eq!(r.redirected, 0, "sharing disabled");
        assert_eq!(r.consultations, 0);
    }

    #[test]
    fn light_load_waits_near_zero() {
        let sim = Simulator::new(base_cfg(1)).unwrap();
        // 0.11 s demands arriving every 10 s: almost never queue.
        let traces = vec![burst(0, 0.0, 100, 10.0, 10_000)];
        let r = sim.run(&traces).unwrap();
        assert!(r.avg_wait() < 0.01, "avg wait {}", r.avg_wait());
    }

    #[test]
    fn overload_builds_queueing_delay() {
        let sim = Simulator::new(base_cfg(1)).unwrap();
        // 2 s demands (len ~1.9MB) arriving every 1 s: server falls behind
        // one second per arrival.
        let traces = vec![burst(0, 0.0, 100, 1.0, 1_900_000)];
        let r = sim.run(&traces).unwrap();
        assert!(r.worst_wait > 50.0, "worst {}", r.worst_wait);
        assert!(r.avg_wait() > 20.0, "avg {}", r.avg_wait());
    }

    #[test]
    fn sharing_offloads_to_idle_partner() {
        let s = complete(2, 0.5);
        let cfg = base_cfg(2).with_sharing(SharingConfig::lp(s));
        let sim = Simulator::new(cfg).unwrap();
        let busy = burst(0, 0.0, 100, 1.0, 1_900_000);
        let no_share = Simulator::new(base_cfg(2)).unwrap();
        let r0 = no_share.run(&[busy.clone(), empty(1)]).unwrap();
        let r1 = sim.run(&[busy, empty(1)]).unwrap();
        assert!(r1.redirected > 0, "some requests must move");
        assert!(
            r1.avg_wait() < r0.avg_wait() * 0.8,
            "sharing {} vs alone {}",
            r1.avg_wait(),
            r0.avg_wait()
        );
        assert!(r1.consultations > 0);
    }

    #[test]
    fn redirect_cost_slows_redirected_requests() {
        let s = complete(2, 0.5);
        let mut sh = SharingConfig::lp(s);
        sh.redirect_cost = 5.0; // exaggerated for visibility
        let cfg = base_cfg(2).with_sharing(sh);
        let sim_costly = Simulator::new(cfg).unwrap();
        let mut sh_free = SharingConfig::lp(complete(2, 0.5));
        sh_free.redirect_cost = 0.0;
        let sim_free = Simulator::new(base_cfg(2).with_sharing(sh_free)).unwrap();
        let traces = vec![burst(0, 0.0, 100, 1.0, 1_900_000), empty(1)];
        let rc = sim_costly.run(&traces).unwrap();
        let rf = sim_free.run(&traces).unwrap();
        assert!(rc.avg_wait() >= rf.avg_wait(), "{} vs {}", rc.avg_wait(), rf.avg_wait());
    }

    #[test]
    fn no_agreement_means_no_redirection() {
        let cfg = base_cfg(2).with_sharing(SharingConfig::lp(AgreementMatrix::zeros(2)));
        let sim = Simulator::new(cfg).unwrap();
        let traces = vec![burst(0, 0.0, 50, 1.0, 1_900_000), empty(1)];
        let r = sim.run(&traces).unwrap();
        assert_eq!(r.redirected, 0);
    }

    #[test]
    fn unstable_overload_reports_unserved() {
        let mut cfg = base_cfg(1);
        cfg.capacity = 0.01; // hopeless
        cfg.max_drain = 100.0;
        let sim = Simulator::new(cfg).unwrap();
        let traces = vec![burst(0, 86_000.0, 500, 0.1, 20_000_000)];
        let r = sim.run(&traces).unwrap();
        assert!(!r.is_stable());
        assert!(r.unserved > 0);
    }

    #[test]
    fn config_validation() {
        let mut cfg = base_cfg(2);
        cfg.capacity = 0.0;
        assert!(matches!(Simulator::new(cfg), Err(SimError::InvalidConfig(_))));
        let cfg = base_cfg(2).with_sharing(SharingConfig::lp(complete(3, 0.1)));
        assert!(matches!(
            Simulator::new(cfg),
            Err(SimError::AgreementMismatch { expected: 2, got: 3 })
        ));
        let sim = Simulator::new(base_cfg(2)).unwrap();
        assert!(matches!(
            sim.run(&[empty(0)]),
            Err(SimError::TraceCountMismatch { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn runs_are_deterministic() {
        let s = complete(3, 0.3);
        let cfg = base_cfg(3).with_sharing(SharingConfig::lp(s));
        let sim = Simulator::new(cfg).unwrap();
        let traces =
            vec![burst(0, 0.0, 80, 1.0, 1_500_000), burst(1, 40.0, 30, 2.0, 500_000), empty(2)];
        let a = sim.run(&traces).unwrap();
        let b = sim.run(&traces).unwrap();
        assert_eq!(a.served, b.served);
        assert_eq!(a.redirected, b.redirected);
        assert!((a.total_wait - b.total_wait).abs() < 1e-9);
    }

    #[test]
    fn proportional_policy_also_offloads() {
        let s = complete(2, 0.5);
        let mut sh = SharingConfig::lp(s);
        sh.policy = PolicyKind::Proportional;
        let sim = Simulator::new(base_cfg(2).with_sharing(sh)).unwrap();
        let traces = vec![burst(0, 0.0, 100, 1.0, 1_900_000), empty(1)];
        let r = sim.run(&traces).unwrap();
        assert!(r.redirected > 0);
    }

    fn queued(arrival: f64, demand: f64) -> QueuedRequest {
        QueuedRequest { arrival, demand, home: 0, redirected: false, measured: true }
    }

    #[test]
    fn redistribute_respects_want_and_order() {
        let mut proxies = vec![Proxy::new(1.0), Proxy::new(1.0)];
        for i in 0..5 {
            proxies[0].queue.push_back(queued(i as f64, 1.0));
        }
        let moved = redistribute(&mut proxies, 0, &[(1, 2.5)], 0.1);
        assert_eq!(moved, vec![(1, 2.0)], "two whole requests fit");
        assert_eq!(proxies[0].queue.len(), 3);
        assert_eq!(proxies[1].queue.len(), 2);
        // Moved requests keep arrival order and pay the cost.
        let v: Vec<_> = proxies[1].queue.iter().collect();
        assert!(v[0].arrival < v[1].arrival);
        assert!((v[0].demand - 1.1).abs() < 1e-12);
        assert!(v.iter().all(|r| r.redirected));
    }

    #[test]
    fn redistribute_prefers_heavy_requests() {
        let mut proxies = vec![Proxy::new(1.0), Proxy::new(1.0)];
        proxies[0].queue.push_back(queued(0.0, 1.0));
        proxies[0].queue.push_back(queued(1.0, 5.0));
        proxies[0].queue.push_back(queued(2.0, 2.0));
        let moved = redistribute(&mut proxies, 0, &[(1, 5.5)], 0.0);
        assert_eq!(moved, vec![(1, 5.0)], "the single 5.0 beats 1+2");
        assert_eq!(proxies[1].queue.len(), 1);
        assert_eq!(proxies[0].queue.len(), 2);
        // Source order preserved for kept requests.
        let v: Vec<_> = proxies[0].queue.iter().collect();
        assert_eq!(v[0].arrival, 0.0);
        assert_eq!(v[1].arrival, 2.0);
    }

    #[test]
    fn redistribute_splits_across_destinations() {
        let mut proxies = vec![Proxy::new(1.0), Proxy::new(1.0), Proxy::new(1.0)];
        for i in 0..6 {
            proxies[0].queue.push_back(queued(i as f64, 1.0));
        }
        let moved = redistribute(&mut proxies, 0, &[(1, 2.0), (2, 3.0)], 0.0);
        // Larger want served first.
        assert!(moved.contains(&(2, 3.0)));
        assert!(moved.contains(&(1, 2.0)));
        assert_eq!(proxies[0].queue.len(), 1);
        assert_eq!(proxies[1].queue.len(), 2);
        assert_eq!(proxies[2].queue.len(), 3);
    }

    #[test]
    fn decision_log_records_consultations() {
        let s = complete(2, 0.5);
        let mut cfg = base_cfg(2).with_sharing(SharingConfig::lp(s));
        cfg.record_decisions = true;
        let sim = Simulator::new(cfg).unwrap();
        let traces = vec![burst(0, 0.0, 100, 1.0, 1_900_000), empty(1)];
        let r = sim.run(&traces).unwrap();
        assert!(!r.decisions.is_empty());
        assert_eq!(r.decisions.len(), {
            // Every logged decision moved something to proxy 1.
            r.decisions.iter().filter(|d| d.proxy == 0).count()
        });
        let total_logged: f64 = r.decisions.iter().map(|d| d.total_moved()).sum();
        assert!(total_logged > 0.0);
        for d in &r.decisions {
            assert!(d.total_moved() <= d.excess + 1e-9, "never moves more than asked");
            assert!(d.moved.iter().all(|&(k, _)| k == 1));
        }
        // Off by default: no log.
        let cfg = base_cfg(2).with_sharing(SharingConfig::lp(complete(2, 0.5)));
        let r2 = Simulator::new(cfg).unwrap().run(&traces).unwrap();
        assert!(r2.decisions.is_empty());
        assert!(r2.consultations > 0);
    }

    #[test]
    fn heterogeneous_capacities_validated() {
        let cfg = base_cfg(2).with_per_proxy_capacity(vec![1.0]);
        assert!(matches!(Simulator::new(cfg), Err(SimError::InvalidConfig(_))));
        let cfg = base_cfg(2).with_per_proxy_capacity(vec![1.0, 0.0]);
        assert!(matches!(Simulator::new(cfg), Err(SimError::InvalidConfig(_))));
        let cfg = base_cfg(2).with_per_proxy_capacity(vec![1.0, 2.0]);
        assert!(Simulator::new(cfg).is_ok());
    }

    #[test]
    fn weak_proxy_leans_on_strong_partner() {
        // Proxy 0 is 10x weaker; with sharing its overload drains to the
        // strong partner.
        let s = complete(2, 0.5);
        let hetero = |sharing| {
            let mut cfg = base_cfg(2).with_per_proxy_capacity(vec![0.2, 2.0]);
            if sharing {
                cfg = cfg.with_sharing(SharingConfig::lp(complete(2, 0.5)));
            }
            cfg
        };
        let _ = s;
        let traces = vec![burst(0, 0.0, 120, 1.0, 500_000), empty(1)];
        let alone = Simulator::new(hetero(false)).unwrap().run(&traces).unwrap();
        let shared = Simulator::new(hetero(true)).unwrap().run(&traces).unwrap();
        assert!(shared.redirected > 0);
        assert!(
            shared.avg_wait() < alone.avg_wait() * 0.5,
            "shared {} vs alone {}",
            shared.avg_wait(),
            alone.avg_wait()
        );
    }

    #[test]
    fn schedule_applied_at_start_matches_static_config() {
        use crate::config::AgreementEvent;
        // Starting from zero agreements and switching the full complete
        // structure on at t = 0 must be indistinguishable — bit for bit
        // — from configuring the complete structure statically.
        let n = 2;
        let mut schedule = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    schedule.push(AgreementEvent { at: 0.0, from: i, to: j, share: 0.5 });
                }
            }
        }
        let fluct = SharingConfig::lp(AgreementMatrix::zeros(n)).with_schedule(schedule);
        let statc = SharingConfig::lp(complete(n, 0.5));
        let traces = vec![burst(0, 0.0, 100, 1.0, 1_900_000), empty(1)];
        let rf = Simulator::new(base_cfg(n).with_sharing(fluct)).unwrap().run(&traces).unwrap();
        let rs = Simulator::new(base_cfg(n).with_sharing(statc)).unwrap().run(&traces).unwrap();
        assert!(rf.redirected > 0);
        assert_eq!(rf.served, rs.served);
        assert_eq!(rf.redirected, rs.redirected);
        assert_eq!(rf.consultations, rs.consultations);
        assert_eq!(rf.total_wait.to_bits(), rs.total_wait.to_bits());
    }

    #[test]
    fn mid_run_agreement_revocation_cuts_redirection() {
        use crate::config::AgreementEvent;
        // The partnership is cancelled 30 s into a 100 s burst: some
        // work moves before the cut, none after.
        let sh = SharingConfig::lp(complete(2, 0.5)).with_schedule(vec![
            AgreementEvent { at: 30.0, from: 0, to: 1, share: 0.0 },
            AgreementEvent { at: 30.0, from: 1, to: 0, share: 0.0 },
        ]);
        let traces = vec![burst(0, 0.0, 100, 1.0, 1_900_000), empty(1)];
        let cut = Simulator::new(base_cfg(2).with_sharing(sh)).unwrap().run(&traces).unwrap();
        let keep = Simulator::new(base_cfg(2).with_sharing(SharingConfig::lp(complete(2, 0.5))))
            .unwrap()
            .run(&traces)
            .unwrap();
        assert!(cut.redirected > 0, "moves happen before the cut");
        assert!(
            cut.redirected < keep.redirected,
            "revocation must stop redirection: {} vs {}",
            cut.redirected,
            keep.redirected
        );
    }

    #[test]
    fn schedule_validation_rejects_bad_events() {
        use crate::config::AgreementEvent;
        let bad_share = SharingConfig::lp(AgreementMatrix::zeros(2))
            .with_schedule(vec![AgreementEvent { at: 0.0, from: 0, to: 1, share: 1.5 }]);
        assert!(matches!(
            Simulator::new(base_cfg(2).with_sharing(bad_share)),
            Err(SimError::InvalidConfig(_))
        ));
        let bad_index = SharingConfig::lp(AgreementMatrix::zeros(2))
            .with_schedule(vec![AgreementEvent { at: 0.0, from: 0, to: 5, share: 0.1 }]);
        assert!(matches!(
            Simulator::new(base_cfg(2).with_sharing(bad_index)),
            Err(SimError::InvalidConfig(_))
        ));
        let bad_time = SharingConfig::lp(AgreementMatrix::zeros(2))
            .with_schedule(vec![AgreementEvent { at: f64::NAN, from: 0, to: 1, share: 0.1 }]);
        assert!(matches!(
            Simulator::new(base_cfg(2).with_sharing(bad_time)),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn already_redirected_requests_are_pinned() {
        let mut proxies = vec![Proxy::new(1.0), Proxy::new(1.0)];
        proxies[0].queue.push_back(QueuedRequest {
            arrival: 0.0,
            demand: 1.0,
            home: 1,
            redirected: true,
            measured: true,
        });
        let moved = redistribute(&mut proxies, 0, &[(1, 5.0)], 0.0);
        assert!(moved.is_empty());
        assert_eq!(proxies[0].queue.len(), 1);
    }
}
