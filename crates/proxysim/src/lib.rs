//! Trace-driven simulator of cooperating ISP-level web proxies (paper §4).
//!
//! Each proxy serves its local client stream from a FIFO queue through a
//! single logical server of configurable capacity (the paper collapses
//! CPU/disk/memory/network into one "general" resource measured in seconds
//! of work). Per scheduling epoch:
//!
//! 1. Arrivals from the trace are admitted to their home proxy's queue.
//! 2. If resource sharing is enabled and a proxy's backlog exceeds the
//!    consultation threshold, the **global scheduler** is consulted: given
//!    each proxy's idle capacity over the scheduling horizon and the
//!    agreement structure, the configured policy (LP / proportional
//!    end-point / greedy) decides how much overflow work to move where,
//!    and requests are redirected from the back of the overloaded queue
//!    (paying a fixed per-request redirection cost).
//! 3. Every server processes its queue for the epoch; a request's
//!    **waiting time** is the delay between its arrival and the moment its
//!    service starts (at whichever proxy finally serves it).
//!
//! Results aggregate per 10-minute slot of arrival (the paper's reporting
//! unit): request counts, average and worst-case waits, and redirection
//! fractions — everything Figures 5–13 plot.

#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod multires;
pub mod proxy;
pub mod sim;

pub use config::{AgreementEvent, PolicyKind, SharingConfig, SimConfig};
pub use metrics::{SimResult, SlotMetrics, WaitHistogram};
pub use multires::{run_multires, MultiResConfig};
pub use proxy::QueueDiscipline;
pub use sim::Simulator;
