//! Per-slot and aggregate simulation metrics.

use agreements_trace::{slot_of, SLOTS_PER_DAY};

/// Log-scale waiting-time histogram: bucket `k` covers
/// `[BASE·G^(k−1), BASE·G^k)` seconds, with bucket 0 for waits below
/// `BASE` and the last bucket open-ended. 96 buckets at 25% growth span
/// 1 ms to ≈ 1.6 M s with ≤ 25% relative error — plenty for percentile
/// reporting without storing every wait.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitHistogram {
    buckets: Vec<u64>,
    count: u64,
}

const HIST_BUCKETS: usize = 96;
const HIST_BASE: f64 = 1e-3;
const HIST_GROWTH: f64 = 1.25;

impl WaitHistogram {
    fn new() -> Self {
        WaitHistogram { buckets: vec![0; HIST_BUCKETS], count: 0 }
    }

    fn bucket_of(wait: f64) -> usize {
        if wait < HIST_BASE {
            return 0;
        }
        let k = ((wait / HIST_BASE).ln() / HIST_GROWTH.ln()).floor() as usize + 1;
        k.min(HIST_BUCKETS - 1)
    }

    fn record(&mut self, wait: f64) {
        self.buckets[Self::bucket_of(wait.max(0.0))] += 1;
        self.count += 1;
    }

    /// Upper edge of bucket `k`.
    fn upper_edge(k: usize) -> f64 {
        if k == 0 {
            HIST_BASE
        } else {
            HIST_BASE * HIST_GROWTH.powi(k as i32)
        }
    }

    /// The waiting time at quantile `q ∈ [0, 1]`, as the upper edge of
    /// the bucket containing it (≤ 25% overestimate). 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::upper_edge(k);
            }
        }
        Self::upper_edge(HIST_BUCKETS - 1)
    }

    /// Number of recorded waits.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Default for WaitHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One scheduler consultation, recorded when
/// [`crate::config::SimConfig::record_decisions`] is set.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Epoch start time (seconds into the measured day).
    pub time: f64,
    /// The overloaded proxy that consulted the scheduler.
    pub proxy: usize,
    /// Work it asked to shed (work-seconds).
    pub excess: f64,
    /// Work actually moved, per destination `(proxy, work-seconds)`.
    pub moved: Vec<(usize, f64)>,
}

impl Decision {
    /// Total work moved across all destinations.
    pub fn total_moved(&self) -> f64 {
        self.moved.iter().map(|&(_, w)| w).sum()
    }
}

/// Metrics for one 10-minute reporting slot, attributed by a request's
/// *arrival* time at its home proxy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SlotMetrics {
    /// Requests arriving in this slot (across all proxies).
    pub arrivals: usize,
    /// Requests served so far whose waiting time is accounted here.
    pub served: usize,
    /// Sum of waiting times, seconds.
    pub total_wait: f64,
    /// Worst single waiting time, seconds.
    pub max_wait: f64,
    /// Requests from this slot that were redirected.
    pub redirected: usize,
}

impl SlotMetrics {
    /// Average waiting time in this slot (0 if nothing served).
    pub fn avg_wait(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_wait / self.served as f64
        }
    }

    /// Fraction of this slot's served requests that were redirected.
    pub fn redirect_fraction(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.redirected as f64 / self.served as f64
        }
    }
}

/// Complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-slot metrics (144 slots), aggregated over all proxies.
    pub slots: Vec<SlotMetrics>,
    /// Per-slot metrics split by *home* proxy (the paper's figures plot a
    /// single ISP's series).
    pub proxy_slots: Vec<Vec<SlotMetrics>>,
    /// Total requests served.
    pub served: usize,
    /// Total requests redirected.
    pub redirected: usize,
    /// Sum of all waiting times.
    pub total_wait: f64,
    /// Worst waiting time observed anywhere.
    pub worst_wait: f64,
    /// Number of scheduler consultations performed.
    pub consultations: usize,
    /// Requests left unserved when the drain cap hit (0 in a stable run).
    pub unserved: usize,
    /// Log-scale histogram of all waiting times (percentile queries).
    pub wait_histogram: WaitHistogram,
    /// Consultation log (empty unless
    /// [`crate::config::SimConfig::record_decisions`] was set).
    pub decisions: Vec<Decision>,
}

impl SimResult {
    pub(crate) fn new(n_proxies: usize) -> Self {
        SimResult {
            slots: vec![SlotMetrics::default(); SLOTS_PER_DAY],
            proxy_slots: vec![vec![SlotMetrics::default(); SLOTS_PER_DAY]; n_proxies],
            served: 0,
            redirected: 0,
            total_wait: 0.0,
            worst_wait: 0.0,
            consultations: 0,
            unserved: 0,
            wait_histogram: WaitHistogram::new(),
            decisions: Vec::new(),
        }
    }

    pub(crate) fn record_arrival(&mut self, home: usize, arrival: f64) {
        let s = slot_of(arrival);
        self.slots[s].arrivals += 1;
        self.proxy_slots[home][s].arrivals += 1;
    }

    pub(crate) fn record_service(
        &mut self,
        home: usize,
        arrival: f64,
        wait: f64,
        redirected: bool,
    ) {
        let s = slot_of(arrival);
        for slot in [&mut self.slots[s], &mut self.proxy_slots[home][s]] {
            slot.served += 1;
            slot.total_wait += wait;
            slot.max_wait = slot.max_wait.max(wait);
            if redirected {
                slot.redirected += 1;
            }
        }
        if redirected {
            self.redirected += 1;
        }
        self.served += 1;
        self.total_wait += wait;
        self.worst_wait = self.worst_wait.max(wait);
        self.wait_histogram.record(wait);
    }

    /// Waiting time at quantile `q` across all served requests (e.g.
    /// `0.99` for p99), within the histogram's ≤ 25% bucket error.
    pub fn wait_quantile(&self, q: f64) -> f64 {
        self.wait_histogram.quantile(q)
    }

    /// Average waiting time over all served requests.
    pub fn avg_wait(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_wait / self.served as f64
        }
    }

    /// Average waits per slot, aggregated over all proxies.
    pub fn avg_wait_series(&self) -> Vec<f64> {
        self.slots.iter().map(SlotMetrics::avg_wait).collect()
    }

    /// Average waits per slot for requests whose *home* is `proxy` — the
    /// single-ISP view the paper's figures plot.
    pub fn proxy_avg_wait_series(&self, proxy: usize) -> Vec<f64> {
        self.proxy_slots[proxy].iter().map(SlotMetrics::avg_wait).collect()
    }

    /// Average wait over all requests homed at `proxy`.
    pub fn proxy_avg_wait(&self, proxy: usize) -> f64 {
        let (wait, served) = self.proxy_slots[proxy]
            .iter()
            .fold((0.0, 0usize), |(w, c), s| (w + s.total_wait, c + s.served));
        if served == 0 {
            0.0
        } else {
            wait / served as f64
        }
    }

    /// Worst single wait among requests homed at `proxy`.
    pub fn proxy_worst_wait(&self, proxy: usize) -> f64 {
        self.proxy_slots[proxy].iter().map(|s| s.max_wait).fold(0.0, f64::max)
    }

    /// Peak of one proxy's per-slot average-wait curve.
    pub fn proxy_peak_slot_avg_wait(&self, proxy: usize) -> f64 {
        self.proxy_avg_wait_series(proxy).into_iter().fold(0.0, f64::max)
    }

    /// Peak of the aggregate per-slot average-wait curve.
    pub fn peak_slot_avg_wait(&self) -> f64 {
        self.avg_wait_series().into_iter().fold(0.0, f64::max)
    }

    /// Overall fraction of served requests that were redirected.
    pub fn redirect_fraction(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.redirected as f64 / self.served as f64
        }
    }

    /// Largest per-slot redirect fraction (paper: "even at peak time,
    /// this amount is less than 6%").
    pub fn peak_redirect_fraction(&self) -> f64 {
        self.slots.iter().map(SlotMetrics::redirect_fraction).fold(0.0, f64::max)
    }

    /// Was every request served before the drain cap?
    pub fn is_stable(&self) -> bool {
        self.unserved == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_metrics_averages() {
        let mut m = SlotMetrics::default();
        assert_eq!(m.avg_wait(), 0.0);
        assert_eq!(m.redirect_fraction(), 0.0);
        m.served = 4;
        m.total_wait = 10.0;
        m.redirected = 1;
        assert!((m.avg_wait() - 2.5).abs() < 1e-12);
        assert!((m.redirect_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn result_records_by_arrival_slot() {
        let mut r = SimResult::new(2);
        r.record_arrival(0, 650.0); // slot 1
        r.record_service(0, 650.0, 3.0, true);
        r.record_service(1, 50.0, 7.0, false); // slot 0
        assert_eq!(r.slots[1].arrivals, 1);
        assert_eq!(r.slots[1].served, 1);
        assert_eq!(r.slots[1].redirected, 1);
        assert_eq!(r.slots[0].served, 1);
        assert!((r.avg_wait() - 5.0).abs() < 1e-12);
        assert_eq!(r.worst_wait, 7.0);
        assert_eq!(r.redirected, 1);
        assert!((r.redirect_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = WaitHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        // p50 should be near 50 (within 25% bucket error).
        let p50 = h.quantile(0.5);
        assert!((40.0..=65.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((90.0..=130.0).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) >= p99);
        assert!(h.quantile(0.0) > 0.0, "lowest bucket edge");
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = WaitHistogram::new();
        h.record(0.0);
        h.record(1e9); // beyond the last bucket: clamped, not lost
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.25) <= 1e-3);
        assert!(h.quantile(1.0) > 1e5);
    }

    #[test]
    fn result_quantiles_track_recorded_waits() {
        let mut r = SimResult::new(1);
        for _ in 0..99 {
            r.record_service(0, 0.0, 0.01, false);
        }
        r.record_service(0, 0.0, 100.0, false);
        let p50 = r.wait_quantile(0.5);
        assert!(p50 < 0.02, "p50 {p50}");
        let p995 = r.wait_quantile(0.995);
        assert!(p995 > 50.0, "p995 {p995}");
    }

    #[test]
    fn series_and_peaks() {
        let mut r = SimResult::new(2);
        r.record_service(0, 0.0, 1.0, false);
        r.record_service(0, 600.0, 9.0, false);
        let series = r.avg_wait_series();
        assert_eq!(series.len(), SLOTS_PER_DAY);
        assert_eq!(series[0], 1.0);
        assert_eq!(series[1], 9.0);
        assert_eq!(r.peak_slot_avg_wait(), 9.0);
        assert!(r.is_stable());
    }
}
