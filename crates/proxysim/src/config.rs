//! Simulation configuration.

use crate::proxy::QueueDiscipline;
use agreements_flow::AgreementMatrix;
use agreements_trace::{DiurnalProfile, ServiceModel};

/// Which allocation policy the global scheduler runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// The paper's LP scheme (reduced formulation).
    Lp,
    /// The Figure 13 baseline: proportional end-point redistribution.
    Proportional,
    /// Greedy most-entitlement-first (extra baseline).
    Greedy,
    /// LP with the fairness objective: minimize the worst *relative*
    /// capacity drop (paper §3.1 "concerns of fairness").
    LpFairShare,
    /// LP with a borrowing-cost term proportional to ring distance
    /// between requester and owner (paper §3.1 "cost of borrowing
    /// resources from a different site"): minimize
    /// `θ + λ · Σ distance·draw`.
    LpCostAware {
        /// Cost per unit of work per hop of circular distance.
        per_hop: f64,
        /// Weight of the cost term against the perturbation term.
        lambda: f64,
    },
}

/// One scheduled agreement edit during a simulation run: at simulated
/// time `at` (seconds relative to the start of the *measured* day;
/// negative times fire during warmup), the direct agreement
/// `S[from][to]` is set to `share`.
///
/// Events let a run model *fluctuating* agreements — the paper's §4
/// premise that sharing contracts are renegotiated while the system
/// serves load. The simulator applies each event at the first epoch
/// boundary at or after its time and repairs the transitive flow table
/// incrementally (only the affected rows are recomputed), so dense
/// schedules stay cheap even at full transitivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgreementEvent {
    /// Seconds since the start of the measured day (epoch-boundary
    /// granularity; ties apply in schedule order).
    pub at: f64,
    /// Granting principal.
    pub from: usize,
    /// Receiving principal.
    pub to: usize,
    /// New direct share `S[from][to]`, in `[0, 1]`.
    pub share: f64,
}

/// Resource sharing setup: agreement structure + enforcement policy.
#[derive(Debug, Clone)]
pub struct SharingConfig {
    /// Direct agreement matrix `S`.
    pub agreements: AgreementMatrix,
    /// Transitivity level enforced (1 = direct only; `n−1` = full
    /// closure). Swept in Figures 8–11.
    pub level: usize,
    /// Scheduler policy.
    pub policy: PolicyKind,
    /// Fixed overhead added to each redirected request's demand, seconds
    /// (Figure 12: 0.0 / 0.1 / 0.2).
    pub redirect_cost: f64,
    /// Scheduled agreement edits applied while the run progresses
    /// (empty = static agreements, the historical behavior).
    pub schedule: Vec<AgreementEvent>,
}

impl SharingConfig {
    /// LP policy over the given agreements at full transitivity, free
    /// redirection, static agreements.
    pub fn lp(agreements: AgreementMatrix) -> Self {
        let level = agreements.n().saturating_sub(1).max(1);
        SharingConfig {
            agreements,
            level,
            policy: PolicyKind::Lp,
            redirect_cost: 0.0,
            schedule: Vec::new(),
        }
    }

    /// Attach an agreement-fluctuation schedule.
    pub fn with_schedule(mut self, schedule: Vec<AgreementEvent>) -> Self {
        self.schedule = schedule;
        self
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of proxies.
    pub n: usize,
    /// Per-proxy server capacity, in work-seconds per wall second
    /// (1.0 = a server that serves exactly the unit-demand rate).
    pub capacity: f64,
    /// Optional per-proxy capacity override (heterogeneous fleets). When
    /// set, `capacity` is ignored; the length must equal `n`.
    pub per_proxy_capacity: Option<Vec<f64>>,
    /// Scheduling epoch, seconds: arrivals batch, scheduler consultations,
    /// and availability accounting all happen on this grid.
    pub epoch: f64,
    /// Consultation threshold, in epochs of backlog: the scheduler is
    /// consulted when a proxy's pending work exceeds
    /// `threshold_epochs × capacity × epoch`.
    pub threshold_epochs: f64,
    /// Scheduling horizon in epochs: how much idle capacity owners offer
    /// per consultation.
    pub horizon_epochs: f64,
    /// Service-time model.
    pub service: ServiceModel,
    /// Sharing setup; `None` disables sharing entirely (Figure 5).
    pub sharing: Option<SharingConfig>,
    /// Hard cap on post-trace drain time (seconds) before declaring the
    /// system unstable.
    pub max_drain: f64,
    /// Days of warmup before the measured day: the trace is replayed
    /// `warmup_days + 1` times and metrics are recorded only for the last
    /// replay. One warmup day puts the queues in their *cyclic* steady
    /// state, so the midnight backlog correctly wraps the day boundary
    /// (the paper's trace is an averaged repeating day).
    pub warmup_days: usize,
    /// Record every scheduler consultation (measured day only) in
    /// [`crate::metrics::SimResult::decisions`]. Off by default: the log
    /// grows with consultation count.
    pub record_decisions: bool,
    /// Service order at every proxy (FIFO unless ablating).
    pub discipline: QueueDiscipline,
}

impl SimConfig {
    /// A configuration calibrated to the paper's operating point: the
    /// capacity is set so the *peak* offered load is `peak_rho` times
    /// capacity (paper-like waits need `peak_rho` slightly above 1, e.g.
    /// 1.05–1.15, which yields ≈ hundreds of seconds of midnight backlog
    /// without sharing).
    pub fn calibrated(n: usize, requests_per_day: usize, mean_demand: f64, peak_rho: f64) -> Self {
        let profile = DiurnalProfile::paper();
        let mean_weight = profile.total_weight() / 86_400.0;
        let peak_weight =
            (0..24).map(|h| profile.rate_at(h as f64 * 3600.0 + 1800.0)).fold(0.0f64, f64::max);
        let mean_rate = requests_per_day as f64 / 86_400.0;
        let peak_demand_rate = mean_rate * (peak_weight / mean_weight) * mean_demand;
        SimConfig {
            n,
            capacity: peak_demand_rate / peak_rho,
            per_proxy_capacity: None,
            epoch: 10.0,
            // Consult the global scheduler only when a real backlog has
            // formed (2 epochs of work): transient Poisson bursts clear on
            // their own, keeping the redirected fraction in the paper's
            // < 1.5% regime while still absorbing the diurnal overload.
            threshold_epochs: 2.0,
            horizon_epochs: 1.0,
            service: ServiceModel::PAPER,
            sharing: None,
            max_drain: 4.0 * 86_400.0,
            warmup_days: 1,
            record_decisions: false,
            discipline: QueueDiscipline::Fifo,
        }
    }

    /// Enable sharing with the given setup.
    pub fn with_sharing(mut self, sharing: SharingConfig) -> Self {
        self.sharing = Some(sharing);
        self
    }

    /// Scale every proxy's capacity (Figure 7's "more processing power").
    pub fn with_capacity_factor(mut self, factor: f64) -> Self {
        self.capacity *= factor;
        if let Some(per) = &mut self.per_proxy_capacity {
            for c in per {
                *c *= factor;
            }
        }
        self
    }

    /// Give each proxy its own capacity (heterogeneous fleet).
    pub fn with_per_proxy_capacity(mut self, capacities: Vec<f64>) -> Self {
        self.per_proxy_capacity = Some(capacities);
        self
    }

    /// Capacity of proxy `i` under the current configuration.
    pub fn capacity_of(&self, i: usize) -> f64 {
        match &self.per_proxy_capacity {
            Some(per) => per[i],
            None => self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_peak_rho_is_honoured() {
        let cfg = SimConfig::calibrated(10, 100_000, 0.12, 1.1);
        // Recompute the peak demand rate and check the ratio.
        let profile = DiurnalProfile::paper();
        let mean_weight = profile.total_weight() / 86_400.0;
        let peak_rate = (100_000.0 / 86_400.0) * (1.0 / mean_weight) * 0.12;
        assert!((peak_rate / cfg.capacity - 1.1).abs() < 1e-9);
    }

    #[test]
    fn capacity_factor_scales() {
        let cfg = SimConfig::calibrated(10, 100_000, 0.12, 1.1);
        let c0 = cfg.capacity;
        let cfg2 = cfg.with_capacity_factor(1.25);
        assert!((cfg2.capacity - 1.25 * c0).abs() < 1e-12);
    }

    #[test]
    fn sharing_config_defaults() {
        let s = SharingConfig::lp(AgreementMatrix::zeros(10));
        assert_eq!(s.level, 9);
        assert_eq!(s.policy, PolicyKind::Lp);
        assert_eq!(s.redirect_cost, 0.0);
    }
}
