//! Per-proxy server and queue state.

use std::collections::VecDeque;

/// Order in which a proxy's server picks the next queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// First-come first-served (the paper's implicit model).
    #[default]
    Fifo,
    /// Shortest-job-first: serve the smallest queued demand next.
    /// Minimizes mean wait at the cost of delaying large requests —
    /// an ablation against the paper's `c = 30 s` demand cap, which
    /// exists precisely to keep FIFO spikes bounded.
    ShortestFirst,
}

/// A request sitting in some proxy's queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// Original arrival time at its home proxy.
    pub arrival: f64,
    /// Remaining demand, in work-seconds (includes any redirection
    /// overhead added when moved).
    pub demand: f64,
    /// Home proxy (for metrics attribution).
    pub home: usize,
    /// Whether this request has already been redirected once; redirected
    /// requests are pinned to avoid ping-ponging.
    pub redirected: bool,
    /// Whether this request belongs to the measured day (false during
    /// warmup replays; warmup requests are served but not recorded).
    pub measured: bool,
}

/// One proxy: a single logical server of fixed capacity draining a FIFO
/// queue.
#[derive(Debug, Clone)]
pub struct Proxy {
    /// Queue of admitted-but-unserved requests.
    pub queue: VecDeque<QueuedRequest>,
    /// Wall-clock time at which the server finishes everything it has
    /// already *started*; the in-service residual is not in `queue`.
    pub server_free_at: f64,
    /// Capacity in work-seconds per wall second.
    pub capacity: f64,
    /// Service order.
    pub discipline: QueueDiscipline,
}

impl Proxy {
    /// New idle proxy (FIFO).
    pub fn new(capacity: f64) -> Self {
        Proxy {
            queue: VecDeque::new(),
            server_free_at: 0.0,
            capacity,
            discipline: QueueDiscipline::Fifo,
        }
    }

    /// New idle proxy with an explicit queue discipline.
    pub fn with_discipline(capacity: f64, discipline: QueueDiscipline) -> Self {
        Proxy { discipline, ..Proxy::new(capacity) }
    }

    /// Dequeue the next request per the discipline.
    fn pop_next(&mut self) -> Option<QueuedRequest> {
        match self.discipline {
            QueueDiscipline::Fifo => self.queue.pop_front(),
            QueueDiscipline::ShortestFirst => {
                let idx = self
                    .queue
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        a.demand.partial_cmp(&b.demand).expect("finite demands")
                    })
                    .map(|(i, _)| i)?;
                self.queue.remove(idx)
            }
        }
    }

    /// Queued work in work-seconds (excluding the in-service residual).
    pub fn queued_work(&self) -> f64 {
        self.queue.iter().map(|r| r.demand).sum()
    }

    /// Total pending work at time `now`, in work-seconds: queued work plus
    /// the residual of the request currently in service.
    pub fn pending_work(&self, now: f64) -> f64 {
        self.queued_work() + (self.server_free_at - now).max(0.0) * self.capacity
    }

    /// Idle capacity over a horizon of `h` wall seconds starting at `now`,
    /// in work-seconds — what this proxy can offer partners.
    pub fn idle_capacity(&self, now: f64, h: f64) -> f64 {
        (self.capacity * h - self.pending_work(now)).max(0.0)
    }

    /// Serve the queue within the epoch `[now, now + epoch)`. Requests
    /// whose service *starts* inside the window are dequeued; each
    /// invocation returns the `(request, waiting_time)` pairs served.
    pub fn serve_epoch(&mut self, now: f64, epoch: f64) -> Vec<(QueuedRequest, f64)> {
        let end = now + epoch;
        let mut served = Vec::new();
        if self.server_free_at < now {
            self.server_free_at = now;
        }
        while self.server_free_at < end {
            let Some(req) = self.pop_next() else { break };
            let start = self.server_free_at.max(req.arrival);
            let wait = start - req.arrival;
            self.server_free_at = start + req.demand / self.capacity;
            served.push((req, wait.max(0.0)));
        }
        served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: f64, demand: f64) -> QueuedRequest {
        QueuedRequest { arrival, demand, home: 0, redirected: false, measured: true }
    }

    #[test]
    fn fifo_service_and_waiting_times() {
        let mut p = Proxy::new(1.0);
        p.queue.push_back(req(0.0, 2.0));
        p.queue.push_back(req(0.5, 2.0));
        let served = p.serve_epoch(0.0, 10.0);
        assert_eq!(served.len(), 2);
        assert_eq!(served[0].1, 0.0, "first starts immediately");
        assert!((served[1].1 - 1.5).abs() < 1e-12, "second waits 2.0 - 0.5");
        assert!((p.server_free_at - 4.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_scales_service_rate() {
        let mut p = Proxy::new(2.0);
        p.queue.push_back(req(0.0, 4.0));
        p.serve_epoch(0.0, 1.0);
        assert!((p.server_free_at - 2.0).abs() < 1e-12, "4 work-s at 2 w/s");
    }

    #[test]
    fn only_starts_within_epoch_are_dequeued() {
        let mut p = Proxy::new(1.0);
        p.queue.push_back(req(0.0, 15.0));
        p.queue.push_back(req(0.0, 1.0));
        let served = p.serve_epoch(0.0, 10.0);
        assert_eq!(served.len(), 1, "second request's start is at t=15");
        assert_eq!(p.queue.len(), 1);
        // Next epoch (t in [10, 20)): the long request ends at 15.
        let served = p.serve_epoch(10.0, 10.0);
        assert_eq!(served.len(), 1);
        assert!((served[0].1 - 15.0).abs() < 1e-12);
    }

    #[test]
    fn pending_work_includes_in_service_residual() {
        let mut p = Proxy::new(1.0);
        p.queue.push_back(req(0.0, 15.0));
        p.serve_epoch(0.0, 10.0);
        // At t = 10: residual 5 wall-seconds of the in-service request.
        assert!((p.pending_work(10.0) - 5.0).abs() < 1e-12);
        p.queue.push_back(req(10.0, 3.0));
        assert!((p.pending_work(10.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn idle_capacity_saturates_at_zero() {
        let mut p = Proxy::new(1.0);
        assert!((p.idle_capacity(0.0, 10.0) - 10.0).abs() < 1e-12);
        p.queue.push_back(req(0.0, 25.0));
        assert_eq!(p.idle_capacity(0.0, 10.0), 0.0);
    }

    #[test]
    fn server_never_starts_before_arrival() {
        let mut p = Proxy::new(1.0);
        p.queue.push_back(req(5.0, 1.0));
        let served = p.serve_epoch(0.0, 10.0);
        assert_eq!(served[0].1, 0.0, "no wait for future arrival");
        assert!((p.server_free_at - 6.0).abs() < 1e-12);
    }

    #[test]
    fn shortest_first_reorders_service() {
        let mut p = Proxy::with_discipline(1.0, QueueDiscipline::ShortestFirst);
        p.queue.push_back(req(0.0, 5.0));
        p.queue.push_back(req(0.1, 1.0));
        p.queue.push_back(req(0.2, 3.0));
        let served = p.serve_epoch(0.0, 100.0);
        let demands: Vec<f64> = served.iter().map(|(r, _)| r.demand).collect();
        assert_eq!(demands, vec![1.0, 3.0, 5.0]);
        // The small request waited ~0; the large one absorbed the rest.
        assert!(served[0].1 < 0.01);
        assert!((served[2].1 - 4.0).abs() < 0.21, "wait {}", served[2].1);
    }

    #[test]
    fn idle_server_clock_advances_with_now() {
        let mut p = Proxy::new(1.0);
        let served = p.serve_epoch(100.0, 10.0);
        assert!(served.is_empty());
        assert_eq!(p.server_free_at, 100.0);
    }
}
