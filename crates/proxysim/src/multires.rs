//! Two-resource proxy simulation: CPU and network, allocated together
//! (paper §3.2's multi-resource requests and coupled binding, made
//! dynamic).
//!
//! The main simulator follows the paper's §4 simplification ("all proxy
//! server resources are collapsed together into a single general
//! resource"). This module keeps the two dominant resources distinct:
//!
//! - **CPU** demand per request: `a + b·len` (the paper's model),
//! - **network** demand per request: `len / 1 MB` units,
//!
//! served concurrently — a request occupies the server for
//! `max(cpu/cpu_capacity, net/net_capacity)` wall seconds (bottleneck
//! service). Since a redirected request carries *both* demands to the
//! same partner, the scheduler cannot solve two independent LPs; it binds
//! the resources into a composite (`agreements_sched::multi::bind_coupled`)
//! whose per-owner availability is the bottleneck of the two idle
//! capacities, and allocates bundles.

use crate::config::SharingConfig;
use crate::metrics::SimResult;
use agreements_flow::TransitiveFlow;
use agreements_sched::multi::bind_coupled;
use agreements_sched::{AllocationPolicy, LpPolicy, SystemState};
use agreements_trace::{ProxyTrace, ServiceModel, DAY_SECONDS};
use std::collections::VecDeque;
use std::sync::Arc;

/// Configuration for the two-resource simulation.
#[derive(Debug, Clone)]
pub struct MultiResConfig {
    /// Number of proxies.
    pub n: usize,
    /// Per-proxy CPU capacity (work-seconds of CPU per wall second).
    pub cpu_capacity: f64,
    /// Per-proxy network capacity (MB per wall second).
    pub net_capacity: f64,
    /// CPU demand model (the paper's `a + b·len`, capped).
    pub service: ServiceModel,
    /// Scheduling epoch in seconds.
    pub epoch: f64,
    /// Consultation threshold, in epochs of bottleneck backlog.
    pub threshold_epochs: f64,
    /// Sharing setup (`None` disables sharing). The agreement structure
    /// covers both resources (the paper's premise for coupled binding:
    /// bound resources live under the same agreements).
    pub sharing: Option<SharingConfig>,
    /// Warmup days (see the single-resource simulator).
    pub warmup_days: usize,
    /// Drain cap in seconds.
    pub max_drain: f64,
}

impl MultiResConfig {
    /// Network demand of a response, in MB.
    fn net_demand(len: u64) -> f64 {
        len as f64 / 1_000_000.0
    }
}

#[derive(Debug, Clone, Copy)]
struct MrRequest {
    arrival: f64,
    cpu: f64,
    net: f64,
    home: usize,
    redirected: bool,
    measured: bool,
}

impl MrRequest {
    /// Wall-clock service time at the given capacities.
    fn service_time(&self, cpu_cap: f64, net_cap: f64) -> f64 {
        (self.cpu / cpu_cap).max(self.net / net_cap)
    }
}

#[derive(Debug, Clone)]
struct MrProxy {
    queue: VecDeque<MrRequest>,
    server_free_at: f64,
}

impl MrProxy {
    fn pending_wall(&self, now: f64, cpu_cap: f64, net_cap: f64) -> f64 {
        let queued: f64 = self.queue.iter().map(|r| r.service_time(cpu_cap, net_cap)).sum();
        queued + (self.server_free_at - now).max(0.0)
    }

    fn idle_resource(&self, now: f64, h: f64, cpu_cap: f64, net_cap: f64) -> (f64, f64) {
        let busy_wall = self.pending_wall(now, cpu_cap, net_cap).min(h);
        let idle_wall = h - busy_wall;
        (idle_wall * cpu_cap, idle_wall * net_cap)
    }
}

/// Run the two-resource simulation over per-proxy traces.
pub fn run_multires(
    cfg: &MultiResConfig,
    traces: &[ProxyTrace],
) -> Result<SimResult, crate::sim::SimError> {
    use crate::sim::SimError;
    let n = cfg.n;
    if traces.len() != n {
        return Err(SimError::TraceCountMismatch { expected: n, got: traces.len() });
    }
    if cfg.cpu_capacity <= 0.0 || cfg.net_capacity <= 0.0 || cfg.epoch <= 0.0 {
        return Err(SimError::InvalidConfig("capacities and epoch must be positive"));
    }
    // The two per-resource states share one `Arc` snapshot: neither
    // consultation clones the flow matrix.
    let (flow, policy): (Option<Arc<TransitiveFlow>>, Option<LpPolicy>) = match &cfg.sharing {
        None => (None, None),
        Some(sh) => {
            if sh.agreements.n() != n {
                return Err(SimError::AgreementMismatch { expected: n, got: sh.agreements.n() });
            }
            (
                Some(Arc::new(TransitiveFlow::compute(&sh.agreements, sh.level))),
                Some(LpPolicy::reduced()),
            )
        }
    };
    let redirect_cost = cfg.sharing.as_ref().map_or(0.0, |s| s.redirect_cost);

    let mut result = SimResult::new(n);
    let mut proxies: Vec<MrProxy> =
        (0..n).map(|_| MrProxy { queue: VecDeque::new(), server_free_at: 0.0 }).collect();
    let mut cursors = vec![0usize; n];
    let days = cfg.warmup_days + 1;
    let measure_from = cfg.warmup_days as f64 * DAY_SECONDS;
    let total_span = days as f64 * DAY_SECONDS;
    let threshold_wall = cfg.threshold_epochs * cfg.epoch;

    let mut t = 0.0f64;
    loop {
        // 1. Admit arrivals.
        let mut any_left = false;
        for (p, trace) in traces.iter().enumerate() {
            let reqs = &trace.requests;
            if reqs.is_empty() {
                continue;
            }
            let total = reqs.len() * days;
            while cursors[p] < total {
                let day = cursors[p] / reqs.len();
                let r = reqs[cursors[p] % reqs.len()];
                let arrival = r.arrival + day as f64 * DAY_SECONDS;
                if arrival >= t + cfg.epoch {
                    break;
                }
                cursors[p] += 1;
                let measured = arrival >= measure_from;
                if measured {
                    result.record_arrival(p, arrival);
                }
                proxies[p].queue.push_back(MrRequest {
                    arrival,
                    cpu: cfg.service.demand(&r),
                    net: MultiResConfig::net_demand(r.response_len),
                    home: p,
                    redirected: false,
                    measured,
                });
            }
            any_left |= cursors[p] < total;
        }

        // 2. Consultations with coupled allocation.
        if let (Some(flow), Some(policy)) = (&flow, &policy) {
            // Idle capacity per resource over one epoch.
            let idles: Vec<(f64, f64)> = proxies
                .iter()
                .map(|p| p.idle_resource(t, cfg.epoch, cfg.cpu_capacity, cfg.net_capacity))
                .collect();
            let cpu_idle: Vec<f64> = idles.iter().map(|x| x.0).collect();
            let net_idle: Vec<f64> = idles.iter().map(|x| x.1).collect();
            for i in 0..n {
                let pending = proxies[i].pending_wall(t, cfg.cpu_capacity, cfg.net_capacity);
                if pending <= threshold_wall {
                    continue;
                }
                result.consultations += 1;
                // Composite: 1 bundle = 1 wall-second of this proxy's
                // mixed service, costing cpu_capacity CPU units and
                // net_capacity MB per bundle.
                let cpu_state = match SystemState::new(flow.clone(), None, cpu_idle.clone()) {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let net_state = match SystemState::new(flow.clone(), None, net_idle.clone()) {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let bound = match bind_coupled(&[
                    (&cpu_state, cfg.cpu_capacity),
                    (&net_state, cfg.net_capacity),
                ]) {
                    Ok(b) => b,
                    Err(_) => continue,
                };
                let excess_wall = pending - threshold_wall;
                let alloc = match policy.allocate_up_to(&bound, i, excess_wall) {
                    Ok(a) => a,
                    Err(_) => continue,
                };
                // Move whole requests, heaviest (by wall time) first.
                for (k, want_wall) in alloc.remote_draws() {
                    let moved_wall =
                        move_requests_mr(&mut proxies, i, k, want_wall, redirect_cost, cfg);
                    let _ = moved_wall;
                }
            }
        }

        // 3. Serve.
        for proxy in proxies.iter_mut() {
            let end = t + cfg.epoch;
            if proxy.server_free_at < t {
                proxy.server_free_at = t;
            }
            while proxy.server_free_at < end {
                let Some(req) = proxy.queue.pop_front() else { break };
                let start = proxy.server_free_at.max(req.arrival);
                let wait = (start - req.arrival).max(0.0);
                proxy.server_free_at = start + req.service_time(cfg.cpu_capacity, cfg.net_capacity);
                if req.measured {
                    result.record_service(req.home, req.arrival, wait, req.redirected);
                }
            }
        }

        t += cfg.epoch;
        let done = t >= total_span && !any_left;
        if done {
            let all_idle = proxies.iter().all(|p| p.queue.is_empty() && p.server_free_at <= t);
            if all_idle {
                break;
            }
            if t > total_span + cfg.max_drain {
                result.unserved = proxies.iter().map(|p| p.queue.len()).sum();
                break;
            }
        }
    }
    Ok(result)
}

/// Move up to `want_wall` wall-seconds of service from `from` to `to`,
/// heaviest requests first, charging `cost` extra CPU per move.
fn move_requests_mr(
    proxies: &mut [MrProxy],
    from: usize,
    to: usize,
    want_wall: f64,
    cost: f64,
    cfg: &MultiResConfig,
) -> f64 {
    let mut candidates: Vec<(usize, f64)> = proxies[from]
        .queue
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.redirected)
        .map(|(idx, r)| (idx, r.service_time(cfg.cpu_capacity, cfg.net_capacity)))
        .collect();
    candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let mut moved = 0.0;
    let mut take: Vec<usize> = Vec::new();
    for (idx, wall) in candidates {
        if moved + wall <= want_wall + 1e-9 {
            take.push(idx);
            moved += wall;
        }
        if moved >= want_wall - 1e-9 {
            break;
        }
    }
    if take.is_empty() {
        return 0.0;
    }
    take.sort_unstable();
    let mut kept = VecDeque::with_capacity(proxies[from].queue.len());
    let mut iter = take.iter().peekable();
    for (idx, r) in std::mem::take(&mut proxies[from].queue).into_iter().enumerate() {
        if iter.peek() == Some(&&idx) {
            iter.next();
            proxies[to].queue.push_back(MrRequest { cpu: r.cpu + cost, redirected: true, ..r });
        } else {
            kept.push_back(r);
        }
    }
    proxies[from].queue = kept;
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use agreements_flow::AgreementMatrix;
    use agreements_trace::Request;

    fn burst(proxy: usize, t0: f64, count: usize, spacing: f64, len: u64) -> ProxyTrace {
        ProxyTrace {
            proxy,
            requests: (0..count)
                .map(|i| Request { arrival: t0 + i as f64 * spacing, response_len: len })
                .collect(),
        }
    }

    fn cfg(n: usize, sharing: bool) -> MultiResConfig {
        let sharing = sharing.then(|| {
            let mut s = AgreementMatrix::zeros(n);
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        s.set(i, j, 0.4).unwrap();
                    }
                }
            }
            SharingConfig {
                agreements: s,
                level: n - 1,
                policy: PolicyKind::Lp,
                redirect_cost: 0.0,
                schedule: Vec::new(),
            }
        });
        MultiResConfig {
            n,
            cpu_capacity: 1.0,
            net_capacity: 1.0, // 1 MB/s
            service: ServiceModel::PAPER,
            epoch: 10.0,
            threshold_epochs: 1.0,
            sharing,
            warmup_days: 0,
            max_drain: 4.0 * 86_400.0,
        }
    }

    #[test]
    fn serves_everything_and_conserves() {
        let traces = vec![burst(0, 0.0, 80, 1.0, 500_000), burst(1, 10.0, 40, 2.0, 100_000)];
        let r = run_multires(&cfg(2, false), &traces).unwrap();
        assert!(r.is_stable());
        assert_eq!(r.served, 120);
    }

    #[test]
    fn network_bound_requests_use_net_capacity() {
        // 2 MB responses at 1 MB/s: 2 s of net, only 0.1 + 2e-6*... of
        // cpu — service is network-bound at 2 s each.
        let traces = vec![burst(0, 0.0, 5, 100.0, 2_000_000)];
        let r = run_multires(&cfg(1, false), &traces).unwrap();
        assert!(r.is_stable());
        assert!(r.avg_wait() < 0.01, "spaced out: no queueing");
        // Same but arriving every second: each waits behind ~2 s services.
        let traces = vec![burst(0, 0.0, 5, 1.0, 2_000_000)];
        let r = run_multires(&cfg(1, false), &traces).unwrap();
        assert!(r.avg_wait() > 1.0, "network bottleneck queues: {}", r.avg_wait());
    }

    #[test]
    fn coupled_sharing_offloads_both_resources() {
        // Proxy 0 slammed with network-heavy work; proxy 1 idle.
        let traces = vec![burst(0, 0.0, 120, 1.0, 2_000_000), burst(1, 0.0, 0, 1.0, 0)];
        let alone = run_multires(&cfg(2, false), &traces).unwrap();
        let shared = run_multires(&cfg(2, true), &traces).unwrap();
        assert!(shared.redirected > 0, "bundles moved");
        assert!(
            shared.avg_wait() < alone.avg_wait() * 0.8,
            "shared {} vs alone {}",
            shared.avg_wait(),
            alone.avg_wait()
        );
    }

    #[test]
    fn validation_errors() {
        let traces = vec![burst(0, 0.0, 1, 1.0, 1000)];
        assert!(run_multires(&cfg(2, false), &traces).is_err(), "trace count");
        let mut bad = cfg(1, false);
        bad.net_capacity = 0.0;
        assert!(run_multires(&bad, &traces).is_err());
    }

    #[test]
    fn deterministic() {
        let traces = vec![burst(0, 0.0, 60, 1.0, 1_500_000), burst(1, 5.0, 10, 3.0, 200_000)];
        let a = run_multires(&cfg(2, true), &traces).unwrap();
        let b = run_multires(&cfg(2, true), &traces).unwrap();
        assert_eq!(a.served, b.served);
        assert!((a.total_wait - b.total_wait).abs() < 1e-9);
    }
}
