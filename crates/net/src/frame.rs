//! Length-prefixed binary framing with per-frame CRC.
//!
//! Every message crossing a GRM socket (and every record in the durable
//! journal) travels inside one frame:
//!
//! ```text
//! ┌───────┬─────────────┬──────────────┬─────────────┐
//! │ magic │ len: u32 LE │ payload      │ crc: u32 LE │
//! │ A6 4D │ (payload)   │ (len bytes)  │ (payload)   │
//! └───────┴─────────────┴──────────────┴─────────────┘
//! ```
//!
//! The CRC is CRC-32 (IEEE 802.3, reflected) over the payload only; the
//! magic and length are validated structurally. `len` is bounded by
//! [`MAX_FRAME_LEN`], so a corrupt length prefix can never make the
//! decoder buffer unbounded garbage — it is rejected immediately and the
//! decoder *resyncs*: it scans forward for the next magic candidate and
//! keeps decoding, so one torn or corrupted frame costs one error, not
//! the connection. (A candidate inside surviving payload bytes is
//! possible; the CRC rejects it and the scan continues.)
//!
//! Encoding and decoding are byte-deterministic: the same payload always
//! produces the same frame, which is what lets the journal's recovery
//! fingerprints and the federation's decision-sequence comparison work
//! byte-for-byte.

use std::fmt;

/// Frame preamble: resync marker for the scanning decoder.
pub const MAGIC: [u8; 2] = [0xA6, 0x4D];

/// Upper bound on one *wire* frame's payload. Large enough for a
/// 1000-principal availability snapshot (~8 KiB) with two orders of
/// magnitude to spare; small enough that a corrupt length prefix cannot
/// stall the decoder waiting on gigabytes that will never arrive.
///
/// The durable journal uses the same framing with a larger limit
/// ([`crate::journal::MAX_JOURNAL_FRAME_LEN`]): its snapshot records
/// carry the full n×n agreement matrix, which passes 1 MiB near
/// n ≈ 360, and a local file cannot be stalled by a slow sender anyway.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Bytes of envelope around a payload: magic (2) + len (4) + crc (4).
pub const FRAME_OVERHEAD: usize = 10;

/// Why a frame failed to decode. The decoder has already resynced when
/// one of these is returned — calling [`FrameDecoder::next_frame`] again
/// continues from the next magic candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The bytes at the decode position did not start with [`MAGIC`].
    BadMagic,
    /// The length prefix exceeded the decoder's frame limit
    /// ([`MAX_FRAME_LEN`] on the wire).
    Oversized {
        /// The rejected length.
        len: usize,
    },
    /// The payload did not match its CRC.
    CrcMismatch,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the frame limit")
            }
            FrameError::CrcMismatch => write!(f, "frame CRC mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time — the container has no crc crate and needs none.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append one encoded frame carrying `payload` to `out`. Fails only when
/// the payload exceeds [`MAX_FRAME_LEN`] — a frame the decoder would be
/// obliged to reject, so it must never be sent.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) -> Result<(), FrameError> {
    encode_frame_limited(payload, out, MAX_FRAME_LEN)
}

/// [`encode_frame`] under a caller-chosen payload limit. Encoder and
/// decoder limits must agree per channel: the journal writes and
/// recovers with [`crate::journal::MAX_JOURNAL_FRAME_LEN`], the sockets
/// with [`MAX_FRAME_LEN`].
pub fn encode_frame_limited(
    payload: &[u8],
    out: &mut Vec<u8>,
    max_len: usize,
) -> Result<(), FrameError> {
    if payload.len() > max_len || payload.len() > u32::MAX as usize {
        return Err(FrameError::Oversized { len: payload.len() });
    }
    out.reserve(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    Ok(())
}

/// Total encoded size of a frame carrying `payload_len` payload bytes.
pub fn frame_len(payload_len: usize) -> usize {
    FRAME_OVERHEAD + payload_len
}

/// Incremental frame decoder over an arbitrary byte stream.
///
/// Feed bytes with [`push`](FrameDecoder::push) as they arrive; pull
/// frames with [`next_frame`](FrameDecoder::next_frame) until it returns
/// `Ok(None)` ("need more bytes"). Errors report a corrupted frame *and
/// leave the decoder usable*: it has already skipped forward to the next
/// magic candidate.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Index of the first unconsumed byte in `buf`.
    start: usize,
    /// Corrupt frames skipped since construction (telemetry hook).
    corrupt: u64,
    /// Largest acceptable payload length (see [`FrameDecoder::limited`]).
    max_len: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::limited(MAX_FRAME_LEN)
    }
}

impl FrameDecoder {
    /// A decoder with empty buffer and the wire limit [`MAX_FRAME_LEN`].
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// A decoder accepting payloads up to `max_len` bytes — the journal
    /// recovery path, whose snapshot records outgrow the wire limit.
    pub fn limited(max_len: usize) -> Self {
        FrameDecoder { buf: Vec::new(), start: 0, corrupt: 0, max_len }
    }

    /// Feed raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily: once the consumed prefix dominates, shift the
        // tail down so the buffer does not grow without bound.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes buffered (a non-zero value at EOF means the
    /// stream ended inside a frame — a truncated write or torn tail).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Corrupt frames skipped so far.
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt
    }

    /// Decode the next frame. `Ok(Some(payload))` yields one complete,
    /// CRC-verified payload; `Ok(None)` means the buffer holds no
    /// complete frame yet; `Err` reports a corrupted frame that has been
    /// skipped (call again to continue after the resync point).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let avail = self.buf.len() - self.start;
        if avail < 2 {
            // Not enough even for the magic; but a lone non-magic byte
            // can be rejected already so a stray tail never pins `pending`.
            if avail == 1 && self.buf[self.start] != MAGIC[0] {
                self.resync(1);
                self.corrupt += 1;
                return Err(FrameError::BadMagic);
            }
            return Ok(None);
        }
        let s = self.start;
        if self.buf[s] != MAGIC[0] || self.buf[s + 1] != MAGIC[1] {
            self.resync(1);
            self.corrupt += 1;
            return Err(FrameError::BadMagic);
        }
        if avail < 6 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([
            self.buf[s + 2],
            self.buf[s + 3],
            self.buf[s + 4],
            self.buf[s + 5],
        ]) as usize;
        if len > self.max_len {
            // Corrupt length prefix: discard the magic and scan forward.
            self.resync(2);
            self.corrupt += 1;
            return Err(FrameError::Oversized { len });
        }
        if avail < FRAME_OVERHEAD + len {
            return Ok(None);
        }
        let payload_start = s + 6;
        let payload_end = payload_start + len;
        let want = u32::from_le_bytes([
            self.buf[payload_end],
            self.buf[payload_end + 1],
            self.buf[payload_end + 2],
            self.buf[payload_end + 3],
        ]);
        let payload = &self.buf[payload_start..payload_end];
        if crc32(payload) != want {
            self.resync(2);
            self.corrupt += 1;
            return Err(FrameError::CrcMismatch);
        }
        let out = payload.to_vec();
        self.start = payload_end + 4;
        Ok(Some(out))
    }

    /// Skip `skip` bytes, then advance to the next byte that could start
    /// a magic sequence (leaving final validation to the next decode).
    fn resync(&mut self, skip: usize) {
        self.start = (self.start + skip).min(self.buf.len());
        while self.start < self.buf.len() && self.buf[self.start] != MAGIC[0] {
            self.start += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_single_frame() {
        let mut wire = Vec::new();
        encode_frame(b"hello agreements", &mut wire).unwrap();
        assert_eq!(wire.len(), frame_len(16));
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"hello agreements");
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let mut wire = Vec::new();
        encode_frame(b"a", &mut wire).unwrap();
        encode_frame(b"", &mut wire).unwrap();
        encode_frame(&[0xA6; 64], &mut wire).unwrap(); // payload full of magic bytes
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &wire {
            dec.push(&[b]);
            while let Some(p) = dec.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, vec![b"a".to_vec(), Vec::new(), vec![0xA6; 64]]);
    }

    #[test]
    fn oversized_encode_is_rejected() {
        let mut out = Vec::new();
        let too_big = vec![0u8; MAX_FRAME_LEN + 1];
        assert_eq!(
            encode_frame(&too_big, &mut out),
            Err(FrameError::Oversized { len: MAX_FRAME_LEN + 1 })
        );
        assert!(out.is_empty(), "nothing written on rejection");
    }

    #[test]
    fn corrupt_length_prefix_resyncs_to_next_frame() {
        let mut wire = Vec::new();
        encode_frame(b"first", &mut wire).unwrap();
        encode_frame(b"second", &mut wire).unwrap();
        wire[5] = 0xFF; // high byte of frame 1's length: now > MAX_FRAME_LEN
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert!(matches!(dec.next_frame(), Err(FrameError::Oversized { .. })));
        // The scan walks frame 1's wreckage (no magic bytes in "first")
        // and lands on frame 2 intact.
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"second");
        assert_eq!(dec.corrupt_frames(), 1);
    }

    #[test]
    fn corrupt_payload_fails_crc_then_resyncs() {
        let mut wire = Vec::new();
        encode_frame(b"damaged", &mut wire).unwrap();
        encode_frame(b"survivor", &mut wire).unwrap();
        wire[8] ^= 0x01; // flip one payload bit of frame 1
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.next_frame(), Err(FrameError::CrcMismatch));
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"survivor");
    }

    #[test]
    fn truncated_frame_waits_instead_of_yielding() {
        let mut wire = Vec::new();
        encode_frame(b"whole frame body", &mut wire).unwrap();
        let cut = wire.len() - 3;
        let mut dec = FrameDecoder::new();
        dec.push(&wire[..cut]);
        assert_eq!(dec.next_frame(), Ok(None));
        assert!(dec.pending() > 0, "truncation is visible at EOF");
        dec.push(&wire[cut..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"whole frame body");
    }

    #[test]
    fn garbage_prefix_is_skipped() {
        let mut wire = vec![0x00, 0x13, 0x37];
        encode_frame(b"after noise", &mut wire).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let mut errors = 0;
        loop {
            match dec.next_frame() {
                Ok(Some(p)) => {
                    assert_eq!(p, b"after noise");
                    break;
                }
                Ok(None) => panic!("frame should be reachable"),
                Err(_) => errors += 1,
            }
        }
        assert!(errors >= 1);
    }
}
