//! Socket-backed [`GrmClient`]: the channel client's trait surface over
//! a real byte stream.
//!
//! [`NetGrmClient`] connects on demand (first call after construction or
//! after a connection death), multiplexes concurrent in-flight calls
//! over one connection by correlation id, and demuxes responses on a
//! background reader thread. It implements [`agreements_grm::GrmClient`],
//! so `ResilientGrmClient`'s deadline/backoff/rebind machinery — and the
//! server-side dedup window — work unchanged when "the GRM" is another
//! process.
//!
//! Error mapping follows the retryability taxonomy:
//!
//! - connect failure → [`GrmError::ConnectionRefused`] (retryable: the
//!   daemon may be restarting);
//! - mid-call socket death → [`GrmError::ConnectionReset`] (retryable:
//!   the decision may or may not have happened, which is exactly what
//!   idempotent `RequestId`s exist for);
//! - an undecodable response payload → [`GrmError::FrameDecode`]
//!   (**not** retryable: a codec mismatch will not heal by resending);
//! - a peer that stalls without closing (e.g. a partitioned proxy
//!   holding the connection open) → [`GrmError::DeadlineExceeded`]
//!   (retryable) once the per-RPC deadline elapses. The reader thread
//!   polls its socket with a short timeout and sweeps overdue in-flight
//!   calls, so a silent peer can never hang an RPC forever — the
//!   connection itself stays up in case the reply is merely late;
//! - a Unix-socket path over the kernel's `sun_path` limit →
//!   [`GrmError::BadEndpoint`] naming the path and limit (**not**
//!   retryable: the same endpoint fails the same way).
//!
//! Frame-level corruption (bad CRC) is handled below this layer: the
//! streaming decoder resyncs and the affected call either completes from
//! a later duplicate or dies with the connection.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use agreements_grm::{GrmClient, GrmError, GrmStats, RequestId};
use agreements_sched::{Allocation, MultiAllocation};
use agreements_telemetry::{HistKind, Telemetry};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::frame::{encode_frame, FrameDecoder, FRAME_OVERHEAD};
use crate::uds_path_check;
use crate::wire::{RequestFrame, ResponseFrame, WireRequest, WireResponse};

/// How often the reader thread wakes to check for overdue in-flight
/// calls while the socket is quiet (and the sweep cadence under
/// continuous traffic).
const POLL: Duration = Duration::from_millis(20);

/// Default per-RPC deadline: generous enough for a group-commit fsync
/// queue at full depth, short enough that a wedged peer surfaces as a
/// retryable error rather than a hung worker. Override with
/// [`NetGrmClient::with_rpc_deadline`].
const DEFAULT_RPC_DEADLINE: Duration = Duration::from_secs(10);

/// Where the daemon lives.
#[derive(Debug, Clone)]
enum Target {
    Uds(PathBuf),
    Tcp(String),
}

/// One live socket, either flavour. Reads and writes go through
/// independent clones; `shutdown` kills both so the reader thread
/// observes EOF promptly.
enum Socket {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Socket {
    fn try_clone(&self) -> io::Result<Socket> {
        match self {
            Socket::Uds(s) => Ok(Socket::Uds(s.try_clone()?)),
            Socket::Tcp(s) => Ok(Socket::Tcp(s.try_clone()?)),
        }
    }

    /// Socket options live on the shared file description, so setting
    /// them once here covers every clone: the reader polls at `read`,
    /// the writer gives up at `write` instead of blocking forever into
    /// a stalled peer's full buffer.
    fn set_timeouts(&self, read: Duration, write: Duration) -> io::Result<()> {
        match self {
            Socket::Uds(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(Some(write))
            }
            Socket::Tcp(s) => {
                s.set_read_timeout(Some(read))?;
                s.set_write_timeout(Some(write))
            }
        }
    }

    fn shutdown(&self) {
        match self {
            Socket::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Socket::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Socket {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Socket::Uds(s) => s.read(buf),
            Socket::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Socket {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Socket::Uds(s) => s.write(buf),
            Socket::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Socket::Uds(s) => s.flush(),
            Socket::Tcp(s) => s.flush(),
        }
    }
}

/// A registered in-flight call, typed by the reply it expects.
enum Pending {
    Grant(Sender<Result<Allocation, GrmError>>),
    Unit(Sender<Result<(), GrmError>>),
    Availability(Sender<Result<Vec<f64>, GrmError>>),
    Stats(Sender<Result<GrmStats, GrmError>>),
    GrantMulti(Sender<Result<MultiAllocation, GrmError>>),
    AvailabilityMulti(Sender<Result<Vec<Vec<f64>>, GrmError>>),
}

impl Pending {
    fn fail(self, e: GrmError) {
        match self {
            Pending::Grant(tx) => {
                let _ = tx.send(Err(e));
            }
            Pending::Unit(tx) => {
                let _ = tx.send(Err(e));
            }
            Pending::Availability(tx) => {
                let _ = tx.send(Err(e));
            }
            Pending::Stats(tx) => {
                let _ = tx.send(Err(e));
            }
            Pending::GrantMulti(tx) => {
                let _ = tx.send(Err(e));
            }
            Pending::AvailabilityMulti(tx) => {
                let _ = tx.send(Err(e));
            }
        }
    }

    /// Dispatch a decoded response to the waiter. A `Unit(Err)` answers
    /// any call shape (the listener's fallback for e.g. a failed
    /// availability query); any other shape mismatch is a protocol bug
    /// and surfaces as the non-retryable `FrameDecode`.
    fn complete(self, resp: WireResponse) {
        match (self, resp) {
            (Pending::Grant(tx), WireResponse::Grant(r)) => {
                let _ = tx.send(r);
            }
            (Pending::Unit(tx), WireResponse::Unit(r)) => {
                let _ = tx.send(r);
            }
            (Pending::Availability(tx), WireResponse::Availability(v)) => {
                let _ = tx.send(Ok(v));
            }
            (Pending::Stats(tx), WireResponse::Stats(s)) => {
                let _ = tx.send(Ok(*s));
            }
            (Pending::GrantMulti(tx), WireResponse::GrantMulti(r)) => {
                let _ = tx.send(r);
            }
            (Pending::AvailabilityMulti(tx), WireResponse::AvailabilityMulti(lanes)) => {
                let _ = tx.send(Ok(lanes));
            }
            (p, WireResponse::Unit(Err(e))) => p.fail(e),
            (p, _) => p.fail(GrmError::FrameDecode {
                detail: "response kind does not match the call".into(),
            }),
        }
    }
}

/// A [`Pending`] plus the wall-clock instant after which the reader
/// thread's sweep fails it with a retryable `DeadlineExceeded` — the
/// guarantee that a stalled-but-open peer cannot park a call forever.
struct InFlight {
    waiter: Pending,
    deadline: Instant,
    deadline_millis: u64,
}

type PendingMap = Arc<Mutex<HashMap<u64, InFlight>>>;

/// Fail every in-flight call whose deadline has passed. The entry is
/// removed first, so a reply that limps in later is simply dropped (the
/// corr id no longer resolves) — the caller has already been told to
/// retry under the same `RequestId`, which the daemon's dedup window
/// makes safe.
fn sweep_expired(pending: &PendingMap) {
    let now = Instant::now();
    let expired: Vec<InFlight> = {
        let mut map = pending.lock();
        if map.values().all(|p| p.deadline > now) {
            return;
        }
        let corrs: Vec<u64> =
            map.iter().filter(|(_, p)| p.deadline <= now).map(|(c, _)| *c).collect();
        corrs.into_iter().filter_map(|c| map.remove(&c)).collect()
    };
    for p in expired {
        p.waiter.fail(GrmError::DeadlineExceeded { millis: p.deadline_millis });
    }
}

struct Conn {
    writer: Socket,
    pending: PendingMap,
}

impl Conn {
    fn teardown(&self, e: &GrmError) {
        self.writer.shutdown();
        fail_all(&self.pending, e);
    }
}

fn fail_all(pending: &PendingMap, e: &GrmError) {
    let drained: Vec<InFlight> = {
        let mut map = pending.lock();
        map.drain().map(|(_, p)| p).collect()
    };
    for p in drained {
        p.waiter.fail(e.clone());
    }
}

struct Inner {
    target: Target,
    conn: Mutex<Option<Conn>>,
    next_corr: AtomicU64,
    /// Bumped each time a fresh socket is established (under the `conn`
    /// lock). Async callers compare generations to learn whether two
    /// sends shared one connection — calls from an older generation are
    /// dead and their frames' wire ordering says nothing about the
    /// current socket.
    generation: AtomicU64,
    /// Per-RPC deadline in milliseconds, applied by the reader thread's
    /// sweep to every in-flight call registered after it was set.
    rpc_deadline_millis: AtomicU64,
    telemetry: Telemetry,
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.get_mut().take() {
            conn.teardown(&GrmError::Disconnected);
        }
    }
}

/// Socket transport for the GRM protocol; see the module docs.
#[derive(Clone)]
pub struct NetGrmClient {
    inner: Arc<Inner>,
}

impl NetGrmClient {
    /// A client for a daemon on a Unix-domain socket.
    pub fn uds(path: &Path) -> NetGrmClient {
        Self::with_target(Target::Uds(path.to_path_buf()), Telemetry::disabled())
    }

    /// A client for a daemon on a TCP address (`host:port`).
    pub fn tcp(addr: &str) -> NetGrmClient {
        Self::with_target(Target::Tcp(addr.to_string()), Telemetry::disabled())
    }

    /// Attach a telemetry plane (frame-size histogram on sends).
    pub fn with_telemetry(self, telemetry: Telemetry) -> NetGrmClient {
        NetGrmClient {
            inner: Arc::new(Inner {
                target: self.inner.target.clone(),
                conn: Mutex::new(None),
                next_corr: AtomicU64::new(self.inner.next_corr.load(Ordering::Relaxed)),
                generation: AtomicU64::new(self.inner.generation.load(Ordering::Relaxed)),
                rpc_deadline_millis: AtomicU64::new(
                    self.inner.rpc_deadline_millis.load(Ordering::Relaxed),
                ),
                telemetry,
            }),
        }
    }

    /// Set the per-RPC deadline: an in-flight call with no reply after
    /// this long fails with the retryable [`GrmError::DeadlineExceeded`]
    /// instead of waiting on a stalled peer forever. Applies to calls
    /// issued after the change; resolution is the reader's ~20 ms poll.
    pub fn with_rpc_deadline(self, deadline: Duration) -> NetGrmClient {
        let millis = deadline.as_millis().clamp(1, u64::MAX as u128) as u64;
        self.inner.rpc_deadline_millis.store(millis, Ordering::Relaxed);
        self
    }

    fn with_target(target: Target, telemetry: Telemetry) -> NetGrmClient {
        NetGrmClient {
            inner: Arc::new(Inner {
                target,
                conn: Mutex::new(None),
                next_corr: AtomicU64::new(1),
                generation: AtomicU64::new(0),
                rpc_deadline_millis: AtomicU64::new(DEFAULT_RPC_DEADLINE.as_millis() as u64),
                telemetry,
            }),
        }
    }

    /// Drop the current connection (if any), failing in-flight calls
    /// with [`GrmError::ConnectionReset`]. The next call reconnects.
    pub fn disconnect(&self) {
        if let Some(conn) = self.inner.conn.lock().take() {
            conn.teardown(&GrmError::ConnectionReset);
        }
    }

    fn connect(&self) -> Result<Conn, GrmError> {
        if let Target::Uds(path) = &self.inner.target {
            uds_path_check(path).map_err(|e| GrmError::BadEndpoint { detail: e.to_string() })?;
        }
        let socket = match &self.inner.target {
            Target::Uds(path) => UnixStream::connect(path).map(Socket::Uds),
            Target::Tcp(addr) => TcpStream::connect(addr.as_str()).map(|s| {
                let _ = s.set_nodelay(true);
                Socket::Tcp(s)
            }),
        }
        .map_err(|e| match e.kind() {
            io::ErrorKind::ConnectionRefused | io::ErrorKind::NotFound => {
                GrmError::ConnectionRefused
            }
            _ => GrmError::ConnectionReset,
        })?;
        let deadline =
            Duration::from_millis(self.inner.rpc_deadline_millis.load(Ordering::Relaxed));
        socket.set_timeouts(POLL, deadline).map_err(|_| GrmError::ConnectionReset)?;
        let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
        let reader = socket.try_clone().map_err(|_| GrmError::ConnectionReset)?;
        let inner = Arc::downgrade(&self.inner);
        let reader_pending = Arc::clone(&pending);
        thread::spawn(move || read_loop(reader, reader_pending, inner));
        Ok(Conn { writer: socket, pending })
    }

    /// Register `pending` under a fresh correlation id and put the frame
    /// on the wire, (re)connecting if necessary. Returns the connection
    /// generation the frame was written on (exact: the generation only
    /// changes under the `conn` lock held here).
    fn send(
        &self,
        req: WireRequest,
        replay_seq: Option<u64>,
        pending: Pending,
    ) -> Result<u64, GrmError> {
        let mut guard = self.inner.conn.lock();
        if guard.is_none() {
            *guard = Some(self.connect()?);
            self.inner.generation.fetch_add(1, Ordering::Relaxed);
        }
        let corr = self.inner.next_corr.fetch_add(1, Ordering::Relaxed);
        let payload = RequestFrame { corr, replay_seq, req }.encode();
        let mut framed = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
        encode_frame(&payload, &mut framed)
            .map_err(|e| GrmError::FrameDecode { detail: format!("unencodable request: {e}") })?;
        let conn = guard.as_mut().expect("connection just ensured");
        let deadline_millis = self.inner.rpc_deadline_millis.load(Ordering::Relaxed);
        conn.pending.lock().insert(
            corr,
            InFlight {
                waiter: pending,
                deadline: Instant::now() + Duration::from_millis(deadline_millis),
                deadline_millis,
            },
        );
        let wrote = conn.writer.write_all(&framed).and_then(|()| conn.writer.flush());
        if let Err(_e) = wrote {
            let conn = guard.take().expect("connection present");
            // The registered pending is failed along with the rest.
            conn.teardown(&GrmError::ConnectionReset);
            return Err(GrmError::ConnectionReset);
        }
        self.inner.telemetry.observe(HistKind::FrameBytes, framed.len() as f64);
        Ok(self.inner.generation.load(Ordering::Relaxed))
    }

    // ----- blocking conveniences ------------------------------------

    /// Blocking allocation request carrying a global replay sequence
    /// (sequenced-federation mode). Retries must reuse both `seq` and
    /// `id` so the daemon can recognise the event across crashes.
    pub fn request_seq(
        &self,
        seq: u64,
        lrm: usize,
        amount: f64,
        id: RequestId,
    ) -> Result<Allocation, GrmError> {
        let (tx, rx) = bounded(1);
        self.send(
            WireRequest::Request { lrm: lrm as u64, amount, req_id: Some(id) },
            Some(seq),
            Pending::Grant(tx),
        )?;
        rx.recv().map_err(|_| GrmError::ConnectionReset)?
    }

    /// Blocking availability report carrying a global replay sequence;
    /// returns once the daemon has applied *and journaled* the report.
    pub fn report_seq(&self, seq: u64, lrm: usize, available: f64) -> Result<(), GrmError> {
        let (tx, rx) = bounded(1);
        self.send(
            WireRequest::Report { lrm: lrm as u64, available },
            Some(seq),
            Pending::Unit(tx),
        )?;
        rx.recv().map_err(|_| GrmError::ConnectionReset)?
    }

    /// Blocking release carrying a global replay sequence.
    pub fn release_seq(&self, seq: u64, alloc: Allocation, id: RequestId) -> Result<(), GrmError> {
        let (tx, rx) = bounded(1);
        self.send(WireRequest::Release { alloc, req_id: Some(id) }, Some(seq), Pending::Unit(tx))?;
        rx.recv().map_err(|_| GrmError::ConnectionReset)?
    }

    // ----- pipelined (windowed in-flight) variants -------------------

    /// Start a sequenced allocation request without waiting for the
    /// decision: the daemon's reply arrives on the returned receiver,
    /// demuxed by correlation id. A worker keeps a window of these in
    /// flight to pipeline the socket, the journal append, and the
    /// group-commit fsync. Retries must reuse both `seq` and `id`.
    ///
    /// Also returns the connection generation the frame went out on:
    /// windowed callers compare it against their window's generation to
    /// detect a mid-window reconnect (every older in-flight call died
    /// with the previous socket and must be re-issued *before* any
    /// higher sequence number, or the daemon's replay cursor wedges
    /// behind the out-of-order frame).
    pub fn request_seq_async(
        &self,
        seq: u64,
        lrm: usize,
        amount: f64,
        id: RequestId,
    ) -> Result<(Receiver<Result<Allocation, GrmError>>, u64), GrmError> {
        let (tx, rx) = bounded(1);
        let gen = self.send(
            WireRequest::Request { lrm: lrm as u64, amount, req_id: Some(id) },
            Some(seq),
            Pending::Grant(tx),
        )?;
        Ok((rx, gen))
    }

    /// Start a sequenced availability report without waiting for the
    /// (journaled) ack. Returns the reply receiver and the connection
    /// generation (see [`NetGrmClient::request_seq_async`]).
    pub fn report_seq_async(
        &self,
        seq: u64,
        lrm: usize,
        available: f64,
    ) -> Result<(Receiver<Result<(), GrmError>>, u64), GrmError> {
        let (tx, rx) = bounded(1);
        let gen = self.send(
            WireRequest::Report { lrm: lrm as u64, available },
            Some(seq),
            Pending::Unit(tx),
        )?;
        Ok((rx, gen))
    }

    /// Start an *unsequenced* availability report, keeping the ack
    /// receiver (unlike the fire-and-forget [`GrmClient::report`]): the
    /// ack proves the daemon applied and journaled the report, which the
    /// non-sequenced federation needs before letting requests race.
    /// Returns the reply receiver and the connection generation.
    pub fn report_acked_async(
        &self,
        lrm: usize,
        available: f64,
    ) -> Result<(Receiver<Result<(), GrmError>>, u64), GrmError> {
        let (tx, rx) = bounded(1);
        let gen =
            self.send(WireRequest::Report { lrm: lrm as u64, available }, None, Pending::Unit(tx))?;
        Ok((rx, gen))
    }

    /// Start an *unsequenced* idempotent allocation request, returning
    /// the reply receiver and the connection generation — the windowed
    /// variant of [`GrmClient::issue_request`] for non-sequenced
    /// federation workers.
    pub fn request_acked_async(
        &self,
        lrm: usize,
        amount: f64,
        id: RequestId,
    ) -> Result<(Receiver<Result<Allocation, GrmError>>, u64), GrmError> {
        let (tx, rx) = bounded(1);
        let gen = self.send(
            WireRequest::Request { lrm: lrm as u64, amount, req_id: Some(id) },
            None,
            Pending::Grant(tx),
        )?;
        Ok((rx, gen))
    }

    // ----- multi-resource calls --------------------------------------

    /// Blocking multi-resource allocation request: one amount per lane,
    /// admitted lane-conjunctively by a multi-engine daemon. A daemon
    /// serving a single-resource GRM answers [`GrmError::Unsupported`].
    pub fn request_multi(&self, lrm: usize, amounts: &[f64]) -> Result<MultiAllocation, GrmError> {
        let (tx, rx) = bounded(1);
        self.send(
            WireRequest::RequestMulti { lrm: lrm as u64, amounts: amounts.to_vec(), req_id: None },
            None,
            Pending::GrantMulti(tx),
        )?;
        rx.recv().map_err(|_| GrmError::ConnectionReset)?
    }

    /// [`NetGrmClient::request_multi`] with an idempotency id: retries
    /// reusing `id` replay the original decision out of the daemon's
    /// dedup window instead of double-granting.
    pub fn request_multi_idempotent(
        &self,
        lrm: usize,
        amounts: &[f64],
        id: RequestId,
    ) -> Result<MultiAllocation, GrmError> {
        let (tx, rx) = bounded(1);
        self.send(
            WireRequest::RequestMulti {
                lrm: lrm as u64,
                amounts: amounts.to_vec(),
                req_id: Some(id),
            },
            None,
            Pending::GrantMulti(tx),
        )?;
        rx.recv().map_err(|_| GrmError::ConnectionReset)?
    }

    /// Fire-and-forget multi-resource availability report (all lanes of
    /// one LRM move atomically), mirroring [`GrmClient::report`].
    pub fn report_multi(&self, lrm: usize, available: Vec<f64>) -> Result<(), GrmError> {
        let (tx, _rx) = bounded(1);
        self.send(WireRequest::ReportMulti { lrm: lrm as u64, available }, None, Pending::Unit(tx))
            .map(|_gen| ())
    }

    /// Blocking snapshot of the daemon's per-lane availability view
    /// (`[lane][principal]`).
    pub fn availability_multi(&self) -> Result<Vec<Vec<f64>>, GrmError> {
        let (tx, rx) = bounded(1);
        self.send(WireRequest::AvailabilityMulti, None, Pending::AvailabilityMulti(tx))?;
        rx.recv().map_err(|_| GrmError::ConnectionReset)?
    }

    /// Blocking snapshot of the daemon's availability view.
    pub fn availability(&self) -> Result<Vec<f64>, GrmError> {
        let (tx, rx) = bounded(1);
        self.send(WireRequest::Availability, None, Pending::Availability(tx))?;
        rx.recv().map_err(|_| GrmError::ConnectionReset)?
    }

    /// Blocking snapshot of the daemon's operational counters.
    pub fn stats(&self) -> Result<GrmStats, GrmError> {
        let (tx, rx) = bounded(1);
        self.send(WireRequest::Stats, None, Pending::Stats(tx))?;
        rx.recv().map_err(|_| GrmError::ConnectionReset)?
    }
}

impl GrmClient for NetGrmClient {
    fn issue_request(
        &self,
        lrm: usize,
        amount: f64,
        req_id: Option<RequestId>,
    ) -> Result<Receiver<Result<Allocation, GrmError>>, GrmError> {
        let (tx, rx) = bounded(1);
        self.send(
            WireRequest::Request { lrm: lrm as u64, amount, req_id },
            None,
            Pending::Grant(tx),
        )?;
        Ok(rx)
    }

    fn issue_release(
        &self,
        alloc: Allocation,
        req_id: Option<RequestId>,
    ) -> Result<Receiver<Result<(), GrmError>>, GrmError> {
        let (tx, rx) = bounded(1);
        self.send(WireRequest::Release { alloc, req_id }, None, Pending::Unit(tx))?;
        Ok(rx)
    }

    fn issue_replay(
        &self,
        req_id: RequestId,
        lrm: usize,
        amount: f64,
    ) -> Result<Receiver<Result<(), GrmError>>, GrmError> {
        let (tx, rx) = bounded(1);
        self.send(
            WireRequest::ReplayGrant { req_id, lrm: lrm as u64, amount },
            None,
            Pending::Unit(tx),
        )?;
        Ok(rx)
    }

    fn report(&self, lrm: usize, available: f64) -> Result<(), GrmError> {
        // Fire-and-forget like the channel client: the daemon's ack is
        // discarded (the receiver is dropped here).
        let (tx, _rx) = bounded(1);
        self.send(WireRequest::Report { lrm: lrm as u64, available }, None, Pending::Unit(tx))
            .map(|_gen| ())
    }

    fn tick(&self, now: u64, lease: u64) -> Result<(), GrmError> {
        let (tx, _rx) = bounded(1);
        self.send(WireRequest::Tick { now, lease }, None, Pending::Unit(tx)).map(|_gen| ())
    }
}

/// The demux loop: decode frames off the socket, route responses to
/// their waiters by correlation id. The socket is read with a short
/// poll timeout; every ~20 ms (quiet or busy) the loop sweeps in-flight
/// calls whose deadline has passed, failing them with the retryable
/// `DeadlineExceeded` — so a peer that stalls without closing cannot
/// hang a call forever. Exits on EOF or a fatal protocol error, failing
/// every in-flight call.
fn read_loop(mut socket: Socket, pending: PendingMap, inner: std::sync::Weak<Inner>) {
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut last_sweep = Instant::now();
    let fatal: GrmError = 'outer: loop {
        if last_sweep.elapsed() >= POLL {
            sweep_expired(&pending);
            last_sweep = Instant::now();
        }
        match socket.read(&mut buf) {
            Ok(0) => break GrmError::ConnectionReset,
            Ok(n) => {
                dec.push(&buf[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(payload)) => match ResponseFrame::decode(&payload) {
                            Ok(frame) => {
                                let waiter = pending.lock().remove(&frame.corr);
                                if let Some(p) = waiter {
                                    p.waiter.complete(frame.resp);
                                }
                            }
                            Err(e) => {
                                // A framed-but-undecodable response: a
                                // codec mismatch. Fail the one call if
                                // the corr prefix is readable; anything
                                // beyond that is unrecoverable.
                                if payload.len() >= 8 {
                                    let corr = u64::from_le_bytes(
                                        payload[..8].try_into().expect("8-byte prefix"),
                                    );
                                    let waiter = pending.lock().remove(&corr);
                                    if let Some(p) = waiter {
                                        p.waiter.fail(e.clone());
                                    }
                                } else {
                                    break 'outer e;
                                }
                            }
                        },
                        Ok(None) => break,
                        // Bad CRC: decoder resynced past it; the lost
                        // reply's call completes via a duplicate or
                        // dies with the connection.
                        Err(_) => continue,
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::Interrupted
                    || e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break GrmError::ConnectionReset,
        }
    };
    fail_all(&pending, &fatal);
    // Clear the shared slot iff it still refers to this connection, so
    // the next call reconnects instead of writing into a corpse.
    if let Some(inner) = inner.upgrade() {
        let mut guard = inner.conn.lock();
        if let Some(conn) = guard.as_ref() {
            if Arc::ptr_eq(&conn.pending, &pending) {
                if let Some(conn) = guard.take() {
                    conn.writer.shutdown();
                }
            }
        }
    }
}
