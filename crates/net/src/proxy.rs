//! Socket-level fault injection: the chaos plane for real connections.
//!
//! [`FaultProxy`] sits between a [`crate::client::NetGrmClient`] and a
//! [`crate::listener::GrmListener`] on Unix-domain sockets and subjects
//! **whole frames** to the same seeded [`FaultSchedule`] the in-process
//! chaos plane uses: drop, duplicate, hold-and-reorder, plus an explicit
//! partition switch. Faults apply to the client→server direction only,
//! mirroring `FaultPlane::wrap`, which interposes on the sender side of
//! a link; server→client bytes pass through verbatim. Because the unit
//! of harm is a complete CRC frame (the proxy reframes what it
//! forwards), dropping or reordering never tears a frame in half — torn
//! *bytes* are the journal's department, torn *messages* are this one's.
//!
//! Determinism: one proxy owns one link name and one
//! [`FaultSchedule`]; every frame crossing it advances the per-link
//! sequence exactly as a channel message would, so a socket federation
//! and a channel federation with the same seed see the same fate
//! sequence.

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use agreements_faults::{Fate, FaultMix, FaultSchedule, HoldBuffer};
use parking_lot::Mutex;

use crate::frame::{encode_frame, FrameDecoder};

const POLL: Duration = Duration::from_millis(20);

/// What the proxy actually did to the traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Frames forwarded upstream (duplicates counted twice).
    pub delivered: u64,
    /// Frames dropped by the schedule.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames held back past at least one successor.
    pub held: u64,
    /// Frames swallowed by an active partition.
    pub partitioned: u64,
}

#[derive(Default)]
struct Counters {
    delivered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    held: AtomicU64,
    partitioned: AtomicU64,
}

struct ProxyShared {
    schedule: Mutex<FaultSchedule>,
    /// Frames crossing the link so far (the schedule's sequence axis;
    /// shared across connections so reconnects continue the stream).
    seq: AtomicU64,
    faults_on: AtomicBool,
    partitioned: AtomicBool,
    shutdown: AtomicBool,
    counters: Counters,
}

/// A deterministic fault injector for one Unix-domain socket link.
pub struct FaultProxy {
    shared: Arc<ProxyShared>,
    accept: Option<JoinHandle<()>>,
    listen_path: PathBuf,
}

impl FaultProxy {
    /// Listen on `listen`, forwarding each accepted connection to the
    /// daemon socket at `upstream` through the fault schedule seeded by
    /// `(seed, link)` with the given `mix`.
    pub fn spawn_uds(
        listen: &Path,
        upstream: &Path,
        seed: u64,
        link: &str,
        mix: FaultMix,
    ) -> io::Result<FaultProxy> {
        if listen.exists() {
            let _ = std::fs::remove_file(listen);
        }
        let listener = UnixListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ProxyShared {
            schedule: Mutex::new(FaultSchedule::new(seed, link, mix)),
            seq: AtomicU64::new(0),
            faults_on: AtomicBool::new(true),
            partitioned: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let upstream = upstream.to_path_buf();
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || {
            while !accept_shared.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let shared = Arc::clone(&accept_shared);
                        let upstream = upstream.clone();
                        thread::spawn(move || pump_connection(client, &upstream, &shared));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(FaultProxy { shared, accept: Some(accept), listen_path: listen.to_path_buf() })
    }

    /// Sever the link: every client→server frame is swallowed until
    /// [`FaultProxy::heal_partition`]. Established connections stay up —
    /// a partition is silence, not a reset.
    pub fn partition(&self) {
        self.shared.partitioned.store(true, Ordering::SeqCst);
    }

    /// End the partition; traffic (and the fault mix, if still active)
    /// resumes.
    pub fn heal_partition(&self) {
        self.shared.partitioned.store(false, Ordering::SeqCst);
    }

    /// Whether the link is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.shared.partitioned.load(Ordering::SeqCst)
    }

    /// The network recovers: stop injecting faults and end any
    /// partition. Held frames flush on the next frame or connection
    /// close. Irreversible, mirroring `FaultPlane::heal`.
    pub fn heal(&self) {
        self.shared.faults_on.store(false, Ordering::SeqCst);
        self.shared.partitioned.store(false, Ordering::SeqCst);
    }

    /// Snapshot of the proxy's counters.
    pub fn stats(&self) -> ProxyStats {
        let c = &self.shared.counters;
        ProxyStats {
            delivered: c.delivered.load(Ordering::SeqCst),
            dropped: c.dropped.load(Ordering::SeqCst),
            duplicated: c.duplicated.load(Ordering::SeqCst),
            held: c.held.load(Ordering::SeqCst),
            partitioned: c.partitioned.load(Ordering::SeqCst),
        }
    }

    /// Stop accepting and tear the proxy down. Live pump threads exit
    /// when their sockets close.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(j) = self.accept.take() {
            let _ = j.join();
        }
        let _ = std::fs::remove_file(&self.listen_path);
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One proxied connection: a faulted client→server pump on this thread,
/// a verbatim server→client pump on a second.
fn pump_connection(client: UnixStream, upstream: &Path, shared: &Arc<ProxyShared>) {
    let server = match UnixStream::connect(upstream) {
        Ok(s) => s,
        // Upstream down: refuse by closing, which the client maps to a
        // retryable reset.
        Err(_) => return,
    };
    let _ = client.set_read_timeout(Some(POLL));
    let _ = server.set_read_timeout(Some(POLL));

    // Server → client: verbatim byte copy.
    let s2c = {
        let mut from = match server.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut to = match client.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let shared = Arc::clone(shared);
        thread::spawn(move || {
            let mut buf = [0u8; 16 * 1024];
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                match from.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        if to.write_all(&buf[..n]).and_then(|()| to.flush()).is_err() {
                            break;
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut
                            || e.kind() == io::ErrorKind::Interrupted =>
                    {
                        continue;
                    }
                    Err(_) => break,
                }
            }
            let _ = to.shutdown(std::net::Shutdown::Write);
        })
    };

    // Client → server: frame-aware fault pipeline.
    faulted_pump(client, &server, shared);
    let _ = server.shutdown(std::net::Shutdown::Both);
    let _ = s2c.join();
}

fn forward(out: &mut (impl Write + ?Sized), payload: &[u8], c: &Counters) -> io::Result<()> {
    let mut framed = Vec::with_capacity(payload.len() + crate::frame::FRAME_OVERHEAD);
    encode_frame(payload, &mut framed)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    out.write_all(&framed)?;
    out.flush()?;
    c.delivered.fetch_add(1, Ordering::SeqCst);
    Ok(())
}

fn faulted_pump(mut client: UnixStream, server: &UnixStream, shared: &Arc<ProxyShared>) {
    let mut out = match server.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut dec = FrameDecoder::new();
    let mut held: HoldBuffer<Vec<u8>> = HoldBuffer::new();
    let mut buf = [0u8; 16 * 1024];
    let c = &shared.counters;
    'conn: loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        match client.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                dec.push(&buf[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(payload)) => {
                            // Mirror FaultPlane::pump exactly: fate at
                            // the current sequence, then advance, then
                            // release what the advance made due.
                            let seq = shared.seq.load(Ordering::SeqCst);
                            if shared.partitioned.load(Ordering::SeqCst) {
                                c.partitioned.fetch_add(1, Ordering::SeqCst);
                            } else if !shared.faults_on.load(Ordering::SeqCst) {
                                for m in held.drain() {
                                    if forward(&mut out, &m, c).is_err() {
                                        break 'conn;
                                    }
                                }
                                if forward(&mut out, &payload, c).is_err() {
                                    break 'conn;
                                }
                            } else {
                                match shared.schedule.lock().next_fate() {
                                    Fate::Deliver => {
                                        if forward(&mut out, &payload, c).is_err() {
                                            break 'conn;
                                        }
                                    }
                                    Fate::Drop => {
                                        c.dropped.fetch_add(1, Ordering::SeqCst);
                                    }
                                    Fate::Duplicate => {
                                        c.duplicated.fetch_add(1, Ordering::SeqCst);
                                        for _ in 0..2 {
                                            if forward(&mut out, &payload, c).is_err() {
                                                break 'conn;
                                            }
                                        }
                                    }
                                    Fate::Hold { distance } => {
                                        c.held.fetch_add(1, Ordering::SeqCst);
                                        held.hold(seq, distance, payload);
                                    }
                                }
                            }
                            let next = seq + 1;
                            shared.seq.store(next, Ordering::SeqCst);
                            while let Some(m) = held.release_due(next) {
                                if forward(&mut out, &m, c).is_err() {
                                    break 'conn;
                                }
                            }
                        }
                        Ok(None) => break,
                        // The client never sends corrupt frames; if one
                        // appears, skip it like the listener would.
                        Err(_) => continue,
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                // A healed link must not keep frames hostage while quiet.
                if !shared.faults_on.load(Ordering::SeqCst) && !held.is_empty() {
                    for m in held.drain() {
                        if forward(&mut out, &m, c).is_err() {
                            break 'conn;
                        }
                    }
                }
                continue;
            }
            Err(_) => break,
        }
    }
    // Held frames were in flight, not lost: flush them before closing.
    for m in held.drain() {
        if forward(&mut out, &m, c).is_err() {
            break;
        }
    }
    let _ = out.shutdown(std::net::Shutdown::Write);
}
