//! Socket-level fault injection: the chaos plane for real connections.
//!
//! [`FaultProxy`] sits between a [`crate::client::NetGrmClient`] and a
//! [`crate::listener::GrmListener`] — on Unix-domain sockets or TCP —
//! and subjects **whole frames** to the same seeded [`FaultSchedule`]
//! the in-process chaos plane uses: drop, duplicate, hold-and-reorder,
//! in-place delay (injected latency), plus an explicit partition
//! switch. Faults apply to *both* directions: the client→server pump
//! draws from the schedule named by `link`, the server→client pump from
//! an independent schedule named `link:reply`, so lost Grants exercise
//! the retry/dedup-replay path just as lost Requests do. Because the
//! unit of harm is a complete CRC frame (the proxy reframes what it
//! forwards), dropping or reordering never tears a frame in half — torn
//! *bytes* are the journal's department, torn *messages* are this one's.
//!
//! Determinism: one proxy owns one link name and one pair of
//! [`FaultSchedule`]s; every frame crossing a direction advances that
//! direction's sequence exactly as a channel message would, so a socket
//! federation and a channel federation with the same seed see the same
//! fate sequence. The upstream can be a fixed address or an address
//! *file* re-read on every accepted connection
//! ([`ProxyUpstream::TcpAddrFile`]) — that keeps the proxy a stable
//! client endpoint across daemon kill-9/respawn cycles, where the
//! respawned daemon binds a fresh ephemeral port.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use agreements_faults::{Fate, FaultMix, FaultSchedule, HoldBuffer};
use parking_lot::Mutex;

use crate::frame::{encode_frame, FrameDecoder};
use crate::uds_path_check;

const POLL: Duration = Duration::from_millis(20);

/// What the proxy actually did to the traffic, both directions summed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Frames forwarded (duplicates counted twice).
    pub delivered: u64,
    /// Frames dropped by the schedule.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames held back past at least one successor.
    pub held: u64,
    /// Frames stalled in place by an injected delay.
    pub delayed: u64,
    /// Frames swallowed by an active partition.
    pub partitioned: u64,
}

#[derive(Default)]
struct Counters {
    delivered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    held: AtomicU64,
    delayed: AtomicU64,
    partitioned: AtomicU64,
}

/// Where the proxy forwards accepted connections.
#[derive(Debug, Clone)]
pub enum ProxyUpstream {
    /// A Unix-domain daemon socket.
    Uds(PathBuf),
    /// A fixed TCP address (`host:port`).
    TcpAddr(String),
    /// A file holding the daemon's current TCP address, re-read on every
    /// accepted connection — the stable endpoint for kill-9/respawn
    /// runs, where the daemon rebinds an ephemeral port each life.
    TcpAddrFile(PathBuf),
}

impl ProxyUpstream {
    fn connect(&self) -> io::Result<Box<dyn Duplex>> {
        match self {
            ProxyUpstream::Uds(path) => Ok(Box::new(UnixStream::connect(path)?) as Box<dyn Duplex>),
            ProxyUpstream::TcpAddr(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                Ok(Box::new(s))
            }
            ProxyUpstream::TcpAddrFile(path) => {
                let addr = std::fs::read_to_string(path)?;
                let s = TcpStream::connect(addr.trim())?;
                s.set_nodelay(true)?;
                Ok(Box::new(s))
            }
        }
    }
}

/// The two proxied directions, each with its own schedule and sequence.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Client→server: requests. Subject to the partition switch.
    Forward,
    /// Server→client: replies. Partition-transparent (a partition is
    /// request silence; replies already in flight still land).
    Reply,
}

struct DirState {
    schedule: Mutex<FaultSchedule>,
    /// Frames crossing this direction so far (the schedule's sequence
    /// axis; shared across connections so reconnects continue the
    /// stream).
    seq: AtomicU64,
}

impl DirState {
    fn new(seed: u64, link: &str, mix: FaultMix) -> Self {
        DirState {
            schedule: Mutex::new(FaultSchedule::new(seed, link, mix)),
            seq: AtomicU64::new(0),
        }
    }
}

struct ProxyShared {
    forward: DirState,
    reply: DirState,
    faults_on: AtomicBool,
    partitioned: AtomicBool,
    shutdown: AtomicBool,
    counters: Counters,
}

impl ProxyShared {
    fn dir(&self, dir: Dir) -> &DirState {
        match dir {
            Dir::Forward => &self.forward,
            Dir::Reply => &self.reply,
        }
    }
}

/// The streams a proxy can splice: Unix-domain or TCP, interchangeably.
trait Duplex: Read + Write + Send {
    fn try_clone_box(&self) -> io::Result<Box<dyn Duplex>>;
    fn shutdown_dir(&self, how: Shutdown);
    fn set_read_poll(&self, timeout: Duration) -> io::Result<()>;
}

impl Duplex for UnixStream {
    fn try_clone_box(&self) -> io::Result<Box<dyn Duplex>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn shutdown_dir(&self, how: Shutdown) {
        let _ = UnixStream::shutdown(self, how);
    }
    fn set_read_poll(&self, timeout: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(timeout))
    }
}

impl Duplex for TcpStream {
    fn try_clone_box(&self) -> io::Result<Box<dyn Duplex>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn shutdown_dir(&self, how: Shutdown) {
        let _ = TcpStream::shutdown(self, how);
    }
    fn set_read_poll(&self, timeout: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(timeout))
    }
}

enum Frontend {
    Uds(UnixListener),
    Tcp(TcpListener),
}

impl Frontend {
    fn accept(&self) -> io::Result<Box<dyn Duplex>> {
        match self {
            Frontend::Uds(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Duplex>),
            Frontend::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Box::new(s) as Box<dyn Duplex>
            }),
        }
    }
}

/// A deterministic bidirectional fault injector for one socket link.
pub struct FaultProxy {
    shared: Arc<ProxyShared>,
    accept: Option<JoinHandle<()>>,
    listen_path: Option<PathBuf>,
    local_addr: Option<SocketAddr>,
}

impl FaultProxy {
    /// Listen on the Unix socket `listen`, forwarding each accepted
    /// connection to the daemon socket at `upstream` through the fault
    /// schedule seeded by `(seed, link)` with the given `mix` on the
    /// client→server direction; replies pass unfaulted. (The historical
    /// forward-only shape — see [`FaultProxy::spawn_uds_bidir`] for
    /// reply-side chaos.)
    pub fn spawn_uds(
        listen: &Path,
        upstream: &Path,
        seed: u64,
        link: &str,
        mix: FaultMix,
    ) -> io::Result<FaultProxy> {
        FaultProxy::spawn_uds_bidir(listen, upstream, seed, link, mix, FaultMix::none())
    }

    /// Like [`FaultProxy::spawn_uds`], but with an independent reply-side
    /// mix drawn from the schedule named `link:reply` — lost or reordered
    /// Grants exercise the client's retry and the daemon's dedup replay.
    pub fn spawn_uds_bidir(
        listen: &Path,
        upstream: &Path,
        seed: u64,
        link: &str,
        forward_mix: FaultMix,
        reply_mix: FaultMix,
    ) -> io::Result<FaultProxy> {
        uds_path_check(listen)?;
        if listen.exists() {
            let _ = std::fs::remove_file(listen);
        }
        let listener = UnixListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        FaultProxy::spawn(
            Frontend::Uds(listener),
            Some(listen.to_path_buf()),
            None,
            ProxyUpstream::Uds(upstream.to_path_buf()),
            seed,
            link,
            forward_mix,
            reply_mix,
        )
    }

    /// Listen on the TCP address `listen` (use `127.0.0.1:0` for an
    /// ephemeral port, then read it back with [`FaultProxy::local_addr`])
    /// and forward each accepted connection to `upstream`, faulting both
    /// directions. `upstream` may be an address file re-read per
    /// connection, which keeps this proxy a stable client endpoint
    /// across daemon respawns.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_tcp(
        listen: &str,
        upstream: ProxyUpstream,
        seed: u64,
        link: &str,
        forward_mix: FaultMix,
        reply_mix: FaultMix,
    ) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        FaultProxy::spawn(
            Frontend::Tcp(listener),
            None,
            Some(local),
            upstream,
            seed,
            link,
            forward_mix,
            reply_mix,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn(
        frontend: Frontend,
        listen_path: Option<PathBuf>,
        local_addr: Option<SocketAddr>,
        upstream: ProxyUpstream,
        seed: u64,
        link: &str,
        forward_mix: FaultMix,
        reply_mix: FaultMix,
    ) -> io::Result<FaultProxy> {
        let shared = Arc::new(ProxyShared {
            forward: DirState::new(seed, link, forward_mix),
            reply: DirState::new(seed, &format!("{link}:reply"), reply_mix),
            faults_on: AtomicBool::new(true),
            partitioned: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || {
            while !accept_shared.shutdown.load(Ordering::Relaxed) {
                match frontend.accept() {
                    Ok(client) => {
                        let shared = Arc::clone(&accept_shared);
                        let upstream = upstream.clone();
                        thread::spawn(move || pump_connection(client, &upstream, &shared));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(FaultProxy { shared, accept: Some(accept), listen_path, local_addr })
    }

    /// The bound TCP address, when the frontend is TCP.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Sever the link: every client→server frame is swallowed until
    /// [`FaultProxy::heal_partition`]. Established connections stay up —
    /// a partition is silence, not a reset.
    pub fn partition(&self) {
        self.shared.partitioned.store(true, Ordering::SeqCst);
    }

    /// End the partition; traffic (and the fault mix, if still active)
    /// resumes.
    pub fn heal_partition(&self) {
        self.shared.partitioned.store(false, Ordering::SeqCst);
    }

    /// Whether the link is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.shared.partitioned.load(Ordering::SeqCst)
    }

    /// The network recovers: stop injecting faults and end any
    /// partition. Held frames flush on the next frame or connection
    /// close. Irreversible, mirroring `FaultPlane::heal`.
    pub fn heal(&self) {
        self.shared.faults_on.store(false, Ordering::SeqCst);
        self.shared.partitioned.store(false, Ordering::SeqCst);
    }

    /// Snapshot of the proxy's counters (both directions summed).
    pub fn stats(&self) -> ProxyStats {
        let c = &self.shared.counters;
        ProxyStats {
            delivered: c.delivered.load(Ordering::SeqCst),
            dropped: c.dropped.load(Ordering::SeqCst),
            duplicated: c.duplicated.load(Ordering::SeqCst),
            held: c.held.load(Ordering::SeqCst),
            delayed: c.delayed.load(Ordering::SeqCst),
            partitioned: c.partitioned.load(Ordering::SeqCst),
        }
    }

    /// Stop accepting and tear the proxy down. Live pump threads exit
    /// when their sockets close.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(j) = self.accept.take() {
            let _ = j.join();
        }
        if let Some(path) = &self.listen_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One proxied connection: a faulted client→server pump on this thread,
/// a faulted server→client pump on a second.
fn pump_connection(client: Box<dyn Duplex>, upstream: &ProxyUpstream, shared: &Arc<ProxyShared>) {
    let server = match upstream.connect() {
        Ok(s) => s,
        // Upstream down: refuse by closing, which the client maps to a
        // retryable reset.
        Err(_) => return,
    };
    let _ = client.set_read_poll(POLL);
    let _ = server.set_read_poll(POLL);

    // Server → client: reply-schedule frame pump.
    let s2c = {
        let from = match server.try_clone_box() {
            Ok(s) => s,
            Err(_) => return,
        };
        let to = match client.try_clone_box() {
            Ok(s) => s,
            Err(_) => return,
        };
        let shared = Arc::clone(shared);
        thread::spawn(move || faulted_pump(from, to, &shared, Dir::Reply))
    };

    // Client → server: forward-schedule frame pump.
    faulted_pump(client, server, shared, Dir::Forward);
    let _ = s2c.join();
}

fn forward(out: &mut (impl Write + ?Sized), payload: &[u8], c: &Counters) -> io::Result<()> {
    let mut framed = Vec::with_capacity(payload.len() + crate::frame::FRAME_OVERHEAD);
    encode_frame(payload, &mut framed)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    out.write_all(&framed)?;
    out.flush()?;
    c.delivered.fetch_add(1, Ordering::SeqCst);
    Ok(())
}

/// Pump one direction of one connection through its fault schedule. The
/// frame loop mirrors `FaultPlane::pump` exactly: fate at the current
/// sequence, then advance, then release what the advance made due. A
/// `Delay` fate stalls the whole direction in place (head-of-line
/// latency: successors queue behind it, so order — and with it the
/// schedule's determinism — is preserved).
fn faulted_pump(
    mut from: Box<dyn Duplex>,
    mut to: Box<dyn Duplex>,
    shared: &Arc<ProxyShared>,
    dir: Dir,
) {
    let mut dec = FrameDecoder::new();
    let mut held: HoldBuffer<Vec<u8>> = HoldBuffer::new();
    let mut buf = [0u8; 16 * 1024];
    let c = &shared.counters;
    let state = shared.dir(dir);
    'conn: loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                dec.push(&buf[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(payload)) => {
                            let seq = state.seq.load(Ordering::SeqCst);
                            let partitioned =
                                dir == Dir::Forward && shared.partitioned.load(Ordering::SeqCst);
                            if partitioned {
                                c.partitioned.fetch_add(1, Ordering::SeqCst);
                            } else if !shared.faults_on.load(Ordering::SeqCst) {
                                for m in held.drain() {
                                    if forward(&mut to, &m, c).is_err() {
                                        break 'conn;
                                    }
                                }
                                if forward(&mut to, &payload, c).is_err() {
                                    break 'conn;
                                }
                            } else {
                                match state.schedule.lock().next_fate() {
                                    Fate::Deliver => {
                                        if forward(&mut to, &payload, c).is_err() {
                                            break 'conn;
                                        }
                                    }
                                    Fate::Drop => {
                                        c.dropped.fetch_add(1, Ordering::SeqCst);
                                    }
                                    Fate::Duplicate => {
                                        c.duplicated.fetch_add(1, Ordering::SeqCst);
                                        for _ in 0..2 {
                                            if forward(&mut to, &payload, c).is_err() {
                                                break 'conn;
                                            }
                                        }
                                    }
                                    Fate::Hold { distance } => {
                                        c.held.fetch_add(1, Ordering::SeqCst);
                                        held.hold(seq, distance, payload);
                                    }
                                    Fate::Delay { micros } => {
                                        c.delayed.fetch_add(1, Ordering::SeqCst);
                                        thread::sleep(Duration::from_micros(micros));
                                        if forward(&mut to, &payload, c).is_err() {
                                            break 'conn;
                                        }
                                    }
                                }
                            }
                            let next = seq + 1;
                            state.seq.store(next, Ordering::SeqCst);
                            while let Some(m) = held.release_due(next) {
                                if forward(&mut to, &m, c).is_err() {
                                    break 'conn;
                                }
                            }
                        }
                        Ok(None) => break,
                        // Peers never send corrupt frames; if one
                        // appears, skip it like the listener would.
                        Err(_) => continue,
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                // A healed link must not keep frames hostage while quiet.
                if !shared.faults_on.load(Ordering::SeqCst) && !held.is_empty() {
                    for m in held.drain() {
                        if forward(&mut to, &m, c).is_err() {
                            break 'conn;
                        }
                    }
                }
                continue;
            }
            Err(_) => break,
        }
    }
    // Held frames were in flight, not lost: flush them before closing.
    for m in held.drain() {
        if forward(&mut to, &m, c).is_err() {
            break;
        }
    }
    to.shutdown_dir(Shutdown::Write);
    from.shutdown_dir(Shutdown::Read);
}
