//! The GRM daemon: a `GrmServer` behind a real socket.
//!
//! [`GrmListener`] accepts Unix-domain or TCP connections, decodes
//! [`crate::wire::RequestFrame`]s, drives the in-process [`GrmServer`],
//! and writes every decision to the [`crate::journal::DurableJournal`]
//! **before** the response frame leaves the process (write-ahead-of-
//! reply). Combined with [`crate::journal::FsyncPolicy::EveryOp`] this
//! gives at-most-once settlement across a kill -9: a decision a client
//! observed is durable, so a retry straddling the crash replays the
//! original decision out of the recovered dedup window instead of
//! re-executing.
//!
//! # Pipelined connections
//!
//! Each connection runs two threads. The *reader* decodes frames and
//! executes them serially in arrival order; the *writer* releases the
//! encoded replies. Splitting them means a connection can have many
//! RPCs in flight: the reader keeps executing (and appending journal
//! records) while earlier replies are still parked waiting for their
//! covering fsync. Clients multiplex by correlation id, so reply order
//! within a connection carries no meaning — the writer simply drains
//! its queue in FIFO order.
//!
//! # Group commit
//!
//! Under [`crate::journal::FsyncPolicy::Batched`] the execute path never
//! fsyncs. Every state-mutating record is appended (write-ahead) and its
//! reply is tagged with the record's LSN; a dedicated *syncer* thread
//! accumulates appends until the group fills (`max_pending`) or the
//! oldest append has waited [`ListenerConfig::max_hold`], then issues
//! **one** fsync — on a duplicate fd, outside the journal lock, so
//! execution never stalls behind the disk — and advances the durable
//! watermark. Writers release a reply only once the watermark covers its
//! LSN, so the write-ahead-of-reply invariant (and with it at-most-once
//! settlement across kill -9) holds under group commit exactly as it
//! does under `EveryOp`; the fsync cost is simply amortized over the
//! whole group. If an fsync fails the watermark is frozen, gated replies
//! are dropped, and their connections are torn down: the client retries
//! and observes `JOURNAL_DOWN` instead of an undurable decision.
//!
//! # Duplicate suppression in the journal
//!
//! The listener keeps a live [`RecoveredState`] mirror — the exact fold
//! recovery would compute — alongside the journal. A decision whose
//! `RequestId` is already in the mirror's dedup window was answered from
//! the server's cache; journaling it again would double-apply its pool
//! effect on replay, so it is skipped. The reply to a suppressed
//! duplicate still gates on the current append cursor: the *original*
//! decision's covering fsync may be outstanding, and the duplicate must
//! not leak it early. The mirror also supplies compaction snapshots:
//! when the live segment exceeds [`ListenerConfig::compact_every`]
//! records, the journal rolls to a fresh segment seeded with the mirror
//! state and deletes the old ones.
//!
//! # Sequenced replay mode
//!
//! With [`ListenerConfig::sequenced`], request frames carry a global
//! event sequence and a [`Sequencer`] admits them strictly in order:
//! event *k* executes and journals before *k*+1 starts. This is what
//! makes a multi-process replay bit-compatible with the in-process run —
//! the GRM observes the identical event order, so every draw and every
//! admit/deny decision matches. The cursor advances as soon as the
//! record is *appended*; the reply still waits for its covering fsync,
//! so sequencing composes with group commit (execution stays totally
//! ordered while fsyncs amortize across the pipeline). Events below the
//! cursor (retries of already-applied events, including retries
//! straddling a restart) are acked without re-applying. A connection
//! must not pipeline sequenced events out of order *with each other*;
//! pipelined federation workers keep per-connection sends in ascending
//! sequence order, which is all the serial reader needs.
//!
//! Without a sequencer, connections race like the in-process
//! federation's threads do and the journal records execution order (the
//! execute+append pair is atomic under the journal lock, so the
//! recovery fold replays exactly the interleaving that happened).

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use agreements_grm::{GrmError, GrmHandle, GrmServer};
use agreements_telemetry::{HistKind, Telemetry};
use parking_lot::Mutex;

use crate::frame::{encode_frame, FrameDecoder, FRAME_OVERHEAD};
use crate::journal::{
    DecisionBody, DurableJournal, FsyncPolicy, JournalRecord, RecoveredState, Snapshot,
};
use crate::wire::{RequestFrame, ResponseFrame, WireRequest, WireResponse};

/// How long blocked reads and sequencer waits go between checks of the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Listener tuning knobs.
#[derive(Debug, Clone)]
pub struct ListenerConfig {
    /// Enforce global event ordering via `replay_seq` (deterministic
    /// federation replay). Off by default: normal operation lets
    /// connections race like the in-process federation's threads do.
    pub sequenced: bool,
    /// Compact the journal when the live segment exceeds this many
    /// records; `0` disables auto-compaction.
    pub compact_every: u64,
    /// Group-commit hold timer: under `FsyncPolicy::Batched`, how long
    /// the syncer lets a partial group wait for more appends before
    /// fsyncing it anyway. Bounds reply latency when load is light.
    pub max_hold: Duration,
    /// Telemetry plane for fsync latency and frame-size histograms.
    pub telemetry: Telemetry,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            sequenced: false,
            compact_every: 8192,
            max_hold: Duration::from_millis(2),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Admits sequenced events strictly in order (see module docs).
struct SeqState {
    next: u64,
    /// The cursor event is currently executing on some connection: a
    /// second copy of the same seq (a retry racing on another socket
    /// after a reconnect) must wait for the execution to finish and then
    /// take the stale path, not execute Fresh a second time.
    claimed: bool,
}

struct Sequencer {
    state: std::sync::Mutex<SeqState>,
    cv: std::sync::Condvar,
}

enum Admission {
    /// This event is the cursor: execute and journal it.
    Fresh,
    /// Already applied before (a retry): ack idempotently.
    Stale,
    /// The listener is shutting down: drop the frame.
    Aborted,
}

impl Sequencer {
    fn new(next: u64) -> Sequencer {
        Sequencer {
            state: std::sync::Mutex::new(SeqState { next, claimed: false }),
            cv: std::sync::Condvar::new(),
        }
    }

    fn enter(&self, seq: u64, shutdown: &AtomicBool) -> Admission {
        let mut st = self.state.lock().expect("sequencer poisoned");
        loop {
            if st.next > seq {
                return Admission::Stale;
            }
            if st.next == seq && !st.claimed {
                st.claimed = true;
                return Admission::Fresh;
            }
            if shutdown.load(Ordering::Relaxed) {
                return Admission::Aborted;
            }
            st = self.cv.wait_timeout(st, POLL).expect("sequencer poisoned").0;
        }
    }

    fn exit(&self, seq: u64) {
        let mut st = self.state.lock().expect("sequencer poisoned");
        if st.next == seq {
            st.next = seq + 1;
            st.claimed = false;
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// The group-commit watermarks: how far the journal has appended, how
/// far fsyncs cover. Replies gate on `synced`; the syncer thread waits
/// on `work` for the gap to reopen.
#[derive(Default)]
struct DurState {
    appended: u64,
    synced: u64,
    /// An fsync failed: nothing past `synced` will ever be durable.
    failed: bool,
}

struct Durability {
    state: std::sync::Mutex<DurState>,
    /// Wakes the syncer when appends arrive.
    work: std::sync::Condvar,
    /// Wakes reply gates when the durable watermark advances.
    done: std::sync::Condvar,
}

impl Durability {
    fn new() -> Durability {
        Durability {
            state: std::sync::Mutex::new(DurState::default()),
            work: std::sync::Condvar::new(),
            done: std::sync::Condvar::new(),
        }
    }

    /// Fold fresh journal counters in (both watermarks only ever move
    /// forward). Returns how many records the `synced` watermark
    /// advanced over.
    fn advance(&self, appended: u64, synced: u64) -> u64 {
        let mut st = self.state.lock().expect("durability poisoned");
        if appended > st.appended {
            st.appended = appended;
            self.work.notify_one();
        }
        let covered = synced.saturating_sub(st.synced);
        if covered > 0 {
            st.synced = synced;
            self.done.notify_all();
        }
        covered
    }

    fn fail(&self) {
        let mut st = self.state.lock().expect("durability poisoned");
        st.failed = true;
        drop(st);
        self.work.notify_all();
        self.done.notify_all();
    }
}

struct Shared {
    handle: GrmHandle,
    /// The journal plus its live recovery mirror; one lock so execute,
    /// append, and mirror-fold are atomic with respect to each other and
    /// to compaction — the journal records the exact execution order.
    journal: Mutex<(DurableJournal, RecoveredState)>,
    sequencer: Option<Sequencer>,
    durability: Durability,
    telemetry: Telemetry,
    shutdown: AtomicBool,
    compact_every: u64,
    /// Frames that passed CRC but did not decode as a request.
    undecodable: AtomicU64,
    /// Completed group-commit fsyncs (syncer thread only).
    group_syncs: AtomicU64,
    /// Records covered by those fsyncs.
    group_records: AtomicU64,
}

impl Shared {
    /// Append + fold + maybe compact, under the already-held journal
    /// lock. Returns the reply's durability gate: the record's LSN —
    /// or, for a decision whose id is already in the mirror window (a
    /// duplicate answered from cache, not re-journaled), the current
    /// append cursor, which conservatively covers the original record.
    fn journal_locked(
        &self,
        guard: &mut (DurableJournal, RecoveredState),
        rec: &JournalRecord,
    ) -> io::Result<u64> {
        let (journal, mirror) = guard;
        if let JournalRecord::Decision { id: Some(id), .. } = rec {
            if mirror.dedup.iter().any(|(j, _)| j == id) {
                return Ok(journal.appended_lsn());
            }
        }
        let lsn = match journal.policy() {
            FsyncPolicy::EveryOp => {
                journal.append(rec)?;
                journal.appended_lsn()
            }
            // Group commit: append only; the syncer thread owns fsync.
            FsyncPolicy::Batched { .. } => journal.append_wal(rec)?,
        };
        mirror.apply(rec);
        if self.compact_every > 0 && journal.records_in_segment() >= self.compact_every {
            let snap = mirror.snapshot();
            journal.compact(&snap)?;
        }
        Ok(lsn)
    }

    /// Propagate the journal's LSN counters into the durability plane
    /// (call right before or after dropping the journal lock).
    fn publish_durability(&self, guard: &(DurableJournal, RecoveredState)) {
        self.durability.advance(guard.0.appended_lsn(), guard.0.synced_lsn());
    }

    /// Block until everything up to `lsn` is durable. Returns `false`
    /// when it never will be (fsync failure): the caller must drop the
    /// reply rather than leak an undurable decision. On shutdown the
    /// waiter forces a final inline sync so queued replies flush.
    fn wait_durable(&self, lsn: u64) -> bool {
        loop {
            {
                let mut st = self.durability.state.lock().expect("durability poisoned");
                loop {
                    if st.synced >= lsn {
                        return true;
                    }
                    if st.failed {
                        return false;
                    }
                    if self.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    st =
                        self.durability.done.wait_timeout(st, POLL).expect("durability poisoned").0;
                }
            }
            // Shutting down: sync inline instead of waiting for a syncer
            // that may already have exited.
            let mut guard = self.journal.lock();
            let ok = guard.0.sync().is_ok();
            let counters = (guard.0.appended_lsn(), guard.0.synced_lsn());
            drop(guard);
            self.durability.advance(counters.0, counters.1);
            if !ok {
                self.durability.fail();
                return false;
            }
        }
    }
}

/// A daemon serving one [`GrmServer`] over a socket, journaling every
/// decision before it is acknowledged. See the module docs.
pub struct GrmListener {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    syncer: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    server: Option<GrmServer>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl GrmListener {
    /// Serve `server` on a Unix-domain socket at `path`. A stale socket
    /// file from a previous (possibly killed) daemon is removed first.
    /// `journal` and `recovered` come from [`DurableJournal::open_or_create`].
    pub fn bind_uds(
        path: &Path,
        server: GrmServer,
        journal: DurableJournal,
        recovered: RecoveredState,
        config: ListenerConfig,
    ) -> io::Result<GrmListener> {
        crate::uds_path_check(path)?;
        if path.exists() {
            fs_remove(path)?;
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let mut l = Self::assemble(server, journal, recovered, config);
        l.uds_path = Some(path.to_path_buf());
        let shared = Arc::clone(&l.shared);
        let conns = Arc::clone(&l.conns);
        l.accept = Some(thread::spawn(move || {
            accept_loop(shared, conns, move || match listener.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_read_timeout(Some(POLL))?;
                    Ok(Some(Box::new(s) as Box<dyn Stream>))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            });
        }));
        Ok(l)
    }

    /// Serve `server` on a TCP socket; `addr` may be `"127.0.0.1:0"` to
    /// let the OS pick a port (see [`GrmListener::tcp_addr`]).
    pub fn bind_tcp(
        addr: &str,
        server: GrmServer,
        journal: DurableJournal,
        recovered: RecoveredState,
        config: ListenerConfig,
    ) -> io::Result<GrmListener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let mut l = Self::assemble(server, journal, recovered, config);
        l.tcp_addr = Some(listener.local_addr()?);
        let shared = Arc::clone(&l.shared);
        let conns = Arc::clone(&l.conns);
        l.accept = Some(thread::spawn(move || {
            accept_loop(shared, conns, move || match listener.accept() {
                Ok((s, _)) => {
                    s.set_nodelay(true)?;
                    s.set_read_timeout(Some(POLL))?;
                    Ok(Some(Box::new(s) as Box<dyn Stream>))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            });
        }));
        Ok(l)
    }

    fn assemble(
        server: GrmServer,
        journal: DurableJournal,
        recovered: RecoveredState,
        config: ListenerConfig,
    ) -> GrmListener {
        let sequencer = config.sequenced.then(|| Sequencer::new(recovered.next_seq));
        let policy = journal.policy();
        let shared = Arc::new(Shared {
            handle: server.handle(),
            journal: Mutex::new((journal, recovered)),
            sequencer,
            durability: Durability::new(),
            telemetry: config.telemetry,
            shutdown: AtomicBool::new(false),
            compact_every: config.compact_every,
            undecodable: AtomicU64::new(0),
            group_syncs: AtomicU64::new(0),
            group_records: AtomicU64::new(0),
        });
        let syncer = match policy {
            FsyncPolicy::EveryOp => None,
            FsyncPolicy::Batched { max_pending } => {
                let shared = Arc::clone(&shared);
                let max_hold = config.max_hold;
                Some(thread::spawn(move || syncer_loop(&shared, max_pending, max_hold)))
            }
        };
        GrmListener {
            shared,
            accept: None,
            syncer,
            conns: Arc::new(Mutex::new(Vec::new())),
            server: Some(server),
            tcp_addr: None,
            uds_path: None,
        }
    }

    /// The bound TCP address (None for a UDS listener).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// In-process handle to the served GRM (for harness assertions).
    pub fn handle(&self) -> GrmHandle {
        self.shared.handle.clone()
    }

    /// A clone of the live recovery mirror — the state a crash right now
    /// would recover to.
    pub fn mirror(&self) -> RecoveredState {
        self.shared.journal.lock().1.clone()
    }

    /// Snapshot of the live mirror (compaction/inspection helper).
    pub fn mirror_snapshot(&self) -> Snapshot {
        self.shared.journal.lock().1.snapshot()
    }

    /// Frames that passed CRC but failed request decoding.
    pub fn undecodable_frames(&self) -> u64 {
        self.shared.undecodable.load(Ordering::Relaxed)
    }

    /// Group-commit amortization counters: `(fsyncs, records covered)`.
    /// Both zero under `FsyncPolicy::EveryOp`.
    pub fn group_commit_stats(&self) -> (u64, u64) {
        (
            self.shared.group_syncs.load(Ordering::Relaxed),
            self.shared.group_records.load(Ordering::Relaxed),
        )
    }

    /// Stop accepting, drain connection threads, sync the journal, and
    /// shut the served GRM down.
    pub fn shutdown(mut self) {
        self.stop();
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(j) = self.accept.take() {
            let _ = j.join();
        }
        let joins: Vec<_> = self.conns.lock().drain(..).collect();
        for j in joins {
            let _ = j.join();
        }
        if let Some(j) = self.syncer.take() {
            let _ = j.join();
        }
        let mut guard = self.shared.journal.lock();
        let _ = guard.0.sync();
        self.shared.publish_durability(&guard);
        drop(guard);
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for GrmListener {
    fn drop(&mut self) {
        self.stop();
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

fn fs_remove(path: &Path) -> io::Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// The two stream types, unified for the connection handler. Reader and
/// writer threads work independent clones; `shutdown_both` kills the
/// underlying socket so the peer (and the sibling thread) unblocks.
trait Stream: Read + Write + Send {
    fn try_clone_box(&self) -> io::Result<Box<dyn Stream>>;
    fn shutdown_both(&self);
}

impl Stream for UnixStream {
    fn try_clone_box(&self) -> io::Result<Box<dyn Stream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_both(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

impl Stream for TcpStream {
    fn try_clone_box(&self) -> io::Result<Box<dyn Stream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_both(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

fn accept_loop(
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    mut accept: impl FnMut() -> io::Result<Option<Box<dyn Stream>>>,
) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match accept() {
            Ok(Some(stream)) => {
                let shared = Arc::clone(&shared);
                conns.lock().push(thread::spawn(move || serve_conn(stream, &shared)));
            }
            Ok(None) => thread::sleep(Duration::from_millis(2)),
            Err(_) => break,
        }
    }
}

/// The group-commit syncer: waits for the append watermark to pass the
/// durable one, lets a group accumulate (up to `max_pending` records or
/// `max_hold`, whichever first), then fsyncs once for the whole group —
/// on a duplicate fd, outside the journal lock, so execution continues
/// appending the next group while the disk works on this one.
fn syncer_loop(shared: &Shared, max_pending: usize, max_hold: Duration) {
    loop {
        {
            let mut st = shared.durability.state.lock().expect("durability poisoned");
            while st.appended == st.synced && !st.failed {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                st = shared.durability.work.wait_timeout(st, POLL).expect("durability poisoned").0;
            }
            if st.failed {
                return;
            }
            // Hold the partial group open for stragglers.
            let deadline = Instant::now() + max_hold;
            while ((st.appended - st.synced) as usize) < max_pending && !st.failed {
                let now = Instant::now();
                if now >= deadline || shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                st = shared
                    .durability
                    .work
                    .wait_timeout(st, deadline - now)
                    .expect("durability poisoned")
                    .0;
            }
            if st.failed {
                return;
            }
        }
        // Capture the sync target and a duplicate fd together, then
        // fsync without any lock held. Compaction syncs before rolling
        // segments, so everything up to `target` that is not in this fd
        // is durable already (see `DurableJournal::sync_handle`).
        let (target, handle) = {
            let guard = shared.journal.lock();
            (guard.0.appended_lsn(), guard.0.sync_handle())
        };
        let file = match handle {
            Ok(f) => f,
            Err(_) => {
                shared.durability.fail();
                return;
            }
        };
        let span = shared.telemetry.start();
        if file.sync_data().is_err() {
            shared.durability.fail();
            return;
        }
        shared.telemetry.stop(HistKind::JournalFsyncSeconds, span);
        {
            let mut guard = shared.journal.lock();
            guard.0.note_synced(target);
        }
        let covered = shared.durability.advance(0, target);
        shared.group_syncs.fetch_add(1, Ordering::Relaxed);
        shared.group_records.fetch_add(covered, Ordering::Relaxed);
        // `covered` is the unsynced tail this fsync retired — exactly
        // what a power cut an instant earlier would have lost. The
        // histogram is the loss-window curve's raw material.
        shared.telemetry.observe(HistKind::GroupCommitRecords, covered as f64);
    }
}

/// One queued reply: the durability gate (0 = none) and the already
/// encoded response frame.
type QueuedReply = (u64, Vec<u8>);

fn serve_conn(mut stream: Box<dyn Stream>, shared: &Arc<Shared>) {
    let writer_stream = match stream.try_clone_box() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<QueuedReply>();
    let writer_shared = Arc::clone(shared);
    let writer = thread::spawn(move || reply_writer(writer_stream, rx, &writer_shared));
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                dec.push(&buf[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(payload)) => {
                            shared.telemetry.observe(
                                HistKind::FrameBytes,
                                (payload.len() + FRAME_OVERHEAD) as f64,
                            );
                            if handle_frame(&payload, &tx, shared).is_err() {
                                break 'conn;
                            }
                        }
                        Ok(None) => break,
                        // Corrupt frame: the decoder resynced; the lost
                        // request is the sender's retry problem.
                        Err(_) => continue,
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// The reply side of a connection: waits each queued reply's durability
/// gate, then puts it on the wire. A reply whose gate can never be
/// satisfied (fsync failure) is dropped and the connection killed — the
/// client must retry rather than observe an undurable decision.
fn reply_writer(mut out: Box<dyn Stream>, rx: mpsc::Receiver<QueuedReply>, shared: &Shared) {
    loop {
        let (gate, bytes) = match rx.recv_timeout(POLL) {
            Ok(v) => v,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        if gate > 0 && !shared.wait_durable(gate) {
            out.shutdown_both();
            return;
        }
        if out.write_all(&bytes).and_then(|()| out.flush()).is_err() {
            out.shutdown_both();
            return;
        }
    }
}

/// Decode, execute, journal (write-ahead), queue the reply. Returns
/// `Err` only when the reply cannot be queued (writer thread died).
fn handle_frame(payload: &[u8], tx: &mpsc::Sender<QueuedReply>, shared: &Shared) -> io::Result<()> {
    let rf = match RequestFrame::decode(payload) {
        Ok(rf) => rf,
        Err(_) => {
            shared.undecodable.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
    };
    let (resp, gate) = match (&shared.sequencer, rf.replay_seq) {
        (Some(seq), Some(no)) => match seq.enter(no, &shared.shutdown) {
            Admission::Aborted => return Ok(()),
            Admission::Stale => execute_stale(&rf.req, shared),
            Admission::Fresh => {
                let out = execute(&rf.req, Some(no), shared);
                // The cursor advances on append, not on fsync: the next
                // event executes while this reply waits for its group.
                seq.exit(no);
                out
            }
        },
        _ => execute(&rf.req, None, shared),
    };
    queue_response(tx, shared, ResponseFrame { corr: rf.corr, resp }, gate)
}

fn queue_response(
    tx: &mpsc::Sender<QueuedReply>,
    shared: &Shared,
    frame: ResponseFrame,
    gate: u64,
) -> io::Result<()> {
    let payload = frame.encode();
    let mut framed = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    encode_frame(&payload, &mut framed)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    shared.telemetry.observe(HistKind::FrameBytes, framed.len() as f64);
    tx.send((gate, framed)).map_err(|_| io::Error::from(io::ErrorKind::BrokenPipe))
}

const JOURNAL_DOWN: GrmError = GrmError::Unsupported("agreement journal unavailable");

/// Is this decision outcome worth journaling? Transport-layer errors
/// (the in-process server died under us) are not decisions.
fn journalable(err: &GrmError) -> bool {
    !matches!(
        err,
        GrmError::Disconnected
            | GrmError::DeadlineExceeded { .. }
            | GrmError::RetriesExhausted { .. }
            | GrmError::ConnectionRefused
            | GrmError::ConnectionReset
    )
}

/// Execute one request and journal its record, atomically under the
/// journal lock — the journal records the exact execution interleaving,
/// so the recovery fold replays what actually happened even when
/// non-sequenced connections race. Returns the response and its
/// durability gate (0 for reads and for ops that journaled nothing).
fn execute(req: &WireRequest, seq: Option<u64>, shared: &Shared) -> (WireResponse, u64) {
    let h = &shared.handle;
    match req {
        WireRequest::Report { lrm, available } => {
            let mut guard = shared.journal.lock();
            let res = h.report(*lrm as usize, *available);
            let gate = if res.is_ok() {
                let rec = JournalRecord::Report { seq, lrm: *lrm, available: *available };
                match shared.journal_locked(&mut guard, &rec) {
                    Ok(g) => g,
                    Err(_) => return (WireResponse::Unit(Err(JOURNAL_DOWN)), 0),
                }
            } else {
                0
            };
            shared.publish_durability(&guard);
            drop(guard);
            (WireResponse::Unit(res), gate)
        }
        WireRequest::Tick { now, lease } => {
            // Lease expiry is soft state, corrected by the next round of
            // re-reports — never journaled.
            (WireResponse::Unit(h.tick(*now, *lease)), 0)
        }
        WireRequest::Request { lrm, amount, req_id } => {
            let mut guard = shared.journal.lock();
            let result = match req_id {
                Some(id) => h.request_idempotent(*lrm as usize, *amount, *id),
                None => h.request(*lrm as usize, *amount),
            };
            let gate = if result.as_ref().err().is_none_or(journalable) {
                let rec = JournalRecord::Decision {
                    seq,
                    id: *req_id,
                    body: DecisionBody::Grant(result.clone()),
                };
                match shared.journal_locked(&mut guard, &rec) {
                    Ok(g) => g,
                    Err(_) => return (WireResponse::Grant(Err(JOURNAL_DOWN)), 0),
                }
            } else {
                0
            };
            shared.publish_durability(&guard);
            drop(guard);
            (WireResponse::Grant(result), gate)
        }
        WireRequest::Release { alloc, req_id } => {
            let draws = alloc.draws.clone();
            let mut guard = shared.journal.lock();
            let result = match req_id {
                Some(id) => h.release_idempotent(alloc.clone(), *id),
                None => h.release(alloc.clone()),
            };
            let gate = if result.as_ref().err().is_none_or(journalable) {
                let rec = JournalRecord::Decision {
                    seq,
                    id: *req_id,
                    body: DecisionBody::Release { draws, result: result.clone() },
                };
                match shared.journal_locked(&mut guard, &rec) {
                    Ok(g) => g,
                    Err(_) => return (WireResponse::Unit(Err(JOURNAL_DOWN)), 0),
                }
            } else {
                0
            };
            shared.publish_durability(&guard);
            drop(guard);
            (WireResponse::Unit(result), gate)
        }
        WireRequest::ReplayGrant { req_id, lrm, amount } => {
            let mut guard = shared.journal.lock();
            let result = h.replay_grant(*req_id, *lrm as usize, *amount);
            let gate = if result.as_ref().err().is_none_or(journalable) {
                let rec = JournalRecord::Decision {
                    seq,
                    id: Some(*req_id),
                    body: DecisionBody::Replay {
                        lrm: *lrm,
                        amount: *amount,
                        result: result.clone(),
                    },
                };
                match shared.journal_locked(&mut guard, &rec) {
                    Ok(g) => g,
                    Err(_) => return (WireResponse::Unit(Err(JOURNAL_DOWN)), 0),
                }
            } else {
                0
            };
            shared.publish_durability(&guard);
            drop(guard);
            (WireResponse::Unit(result), gate)
        }
        WireRequest::Availability => match h.availability() {
            Ok(v) => (WireResponse::Availability(v), 0),
            Err(e) => (WireResponse::Unit(Err(e)), 0),
        },
        WireRequest::Stats => match h.stats() {
            Ok(s) => (WireResponse::Stats(Box::new(s)), 0),
            Err(e) => (WireResponse::Unit(Err(e)), 0),
        },
        WireRequest::RequestMulti { lrm, amounts, req_id } => {
            let mut guard = shared.journal.lock();
            let result = match req_id {
                Some(id) => h.request_multi_idempotent(*lrm as usize, amounts, *id),
                None => h.request_multi(*lrm as usize, amounts),
            };
            let gate = if result.as_ref().err().is_none_or(journalable) {
                let rec = JournalRecord::Decision {
                    seq,
                    id: *req_id,
                    body: DecisionBody::GrantMulti(result.clone()),
                };
                match shared.journal_locked(&mut guard, &rec) {
                    Ok(g) => g,
                    Err(_) => return (WireResponse::GrantMulti(Err(JOURNAL_DOWN)), 0),
                }
            } else {
                0
            };
            shared.publish_durability(&guard);
            drop(guard);
            (WireResponse::GrantMulti(result), gate)
        }
        // Multi-lane pools are soft state (re-reported each round) and
        // the recovery mirror's availability is single-lane, so multi
        // reports are not journaled — like `Tick`, not like `Report`.
        WireRequest::ReportMulti { lrm, available } => {
            (WireResponse::Unit(h.report_multi(*lrm as usize, available.clone())), 0)
        }
        WireRequest::AvailabilityMulti => match h.availability_multi() {
            Ok(lanes) => (WireResponse::AvailabilityMulti(lanes), 0),
            Err(e) => (WireResponse::Unit(Err(e)), 0),
        },
    }
}

/// An event below the replay cursor: it was applied (and journaled)
/// before a crash or retransmission. Reports are acked without
/// re-applying — re-running them would rewind the pools. Idempotent RPCs
/// are forwarded so the dedup window serves the original decision (the
/// duplicate-id check keeps the journal clean). Replayed decisions gate
/// on the current append cursor: the original record's covering fsync
/// may still be outstanding.
fn execute_stale(req: &WireRequest, shared: &Shared) -> (WireResponse, u64) {
    let h = &shared.handle;
    let cursor_gate = |shared: &Shared| shared.journal.lock().0.appended_lsn();
    match req {
        WireRequest::Report { .. } | WireRequest::Tick { .. } => (WireResponse::Unit(Ok(())), 0),
        WireRequest::Request { lrm, amount, req_id } => match req_id {
            Some(id) => {
                let res = h.request_idempotent(*lrm as usize, *amount, *id);
                (WireResponse::Grant(res), cursor_gate(shared))
            }
            // A sequenced request without an id cannot be deduplicated;
            // refuse rather than silently double-grant.
            None => (
                WireResponse::Grant(Err(GrmError::Unsupported(
                    "stale sequenced request without an idempotency id",
                ))),
                0,
            ),
        },
        WireRequest::Release { alloc, req_id } => match req_id {
            Some(id) => {
                let res = h.release_idempotent(alloc.clone(), *id);
                (WireResponse::Unit(res), cursor_gate(shared))
            }
            None => (
                WireResponse::Unit(Err(GrmError::Unsupported(
                    "stale sequenced release without an idempotency id",
                ))),
                0,
            ),
        },
        WireRequest::ReplayGrant { req_id, lrm, amount } => {
            let res = h.replay_grant(*req_id, *lrm as usize, *amount);
            (WireResponse::Unit(res), cursor_gate(shared))
        }
        WireRequest::Availability => match h.availability() {
            Ok(v) => (WireResponse::Availability(v), 0),
            Err(e) => (WireResponse::Unit(Err(e)), 0),
        },
        WireRequest::Stats => match h.stats() {
            Ok(s) => (WireResponse::Stats(Box::new(s)), 0),
            Err(e) => (WireResponse::Unit(Err(e)), 0),
        },
        WireRequest::RequestMulti { lrm, amounts, req_id } => match req_id {
            Some(id) => {
                let res = h.request_multi_idempotent(*lrm as usize, amounts, *id);
                (WireResponse::GrantMulti(res), cursor_gate(shared))
            }
            None => (
                WireResponse::GrantMulti(Err(GrmError::Unsupported(
                    "stale sequenced request without an idempotency id",
                ))),
                0,
            ),
        },
        // Stale multi reports ack without re-applying, like `Report`.
        WireRequest::ReportMulti { .. } => (WireResponse::Unit(Ok(())), 0),
        WireRequest::AvailabilityMulti => match h.availability_multi() {
            Ok(lanes) => (WireResponse::AvailabilityMulti(lanes), 0),
            Err(e) => (WireResponse::Unit(Err(e)), 0),
        },
    }
}
