//! The GRM daemon: a `GrmServer` behind a real socket.
//!
//! [`GrmListener`] accepts Unix-domain or TCP connections, decodes
//! [`crate::wire::RequestFrame`]s, drives the in-process [`GrmServer`],
//! and writes every decision to the [`crate::journal::DurableJournal`]
//! **before** the response frame leaves the process (write-ahead-of-
//! reply). Combined with [`crate::journal::FsyncPolicy::EveryOp`] this
//! gives at-most-once settlement across a kill -9: a decision a client
//! observed is durable, so a retry straddling the crash replays the
//! original decision out of the recovered dedup window instead of
//! re-executing.
//!
//! # Duplicate suppression in the journal
//!
//! The listener keeps a live [`RecoveredState`] mirror — the exact fold
//! recovery would compute — alongside the journal. A decision whose
//! `RequestId` is already in the mirror's dedup window was answered from
//! the server's cache; journaling it again would double-apply its pool
//! effect on replay, so it is skipped. The mirror also supplies
//! compaction snapshots: when the live segment exceeds
//! [`ListenerConfig::compact_every`] records, the journal rolls to a
//! fresh segment seeded with the mirror state and deletes the old ones.
//!
//! # Sequenced replay mode
//!
//! With [`ListenerConfig::sequenced`], request frames carry a global
//! event sequence and a [`Sequencer`] admits them strictly in order:
//! event *k* executes, journals, and syncs before *k*+1 starts. This is
//! what makes a multi-process replay bit-compatible with the in-process
//! run — the GRM observes the identical event order, so every draw and
//! every admit/deny decision matches. Events below the cursor (retries
//! of already-applied events, including retries straddling a restart)
//! are acked without re-applying: reports are acknowledged as-is, and
//! idempotent RPCs are forwarded so the dedup window replays the
//! original decision. A connection must not pipeline sequenced events
//! out of order with each other (the federation workers are strictly
//! call-by-call, so this never arises).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use agreements_grm::{GrmError, GrmHandle, GrmServer};
use agreements_telemetry::{HistKind, Telemetry};
use parking_lot::Mutex;

use crate::frame::{encode_frame, FrameDecoder, FRAME_OVERHEAD};
use crate::journal::{DecisionBody, DurableJournal, JournalRecord, RecoveredState, Snapshot};
use crate::wire::{RequestFrame, ResponseFrame, WireRequest, WireResponse};

/// How long blocked reads and sequencer waits go between checks of the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Listener tuning knobs.
#[derive(Debug, Clone)]
pub struct ListenerConfig {
    /// Enforce global event ordering via `replay_seq` (deterministic
    /// federation replay). Off by default: normal operation lets
    /// connections race like the in-process federation's threads do.
    pub sequenced: bool,
    /// Compact the journal when the live segment exceeds this many
    /// records; `0` disables auto-compaction.
    pub compact_every: u64,
    /// Telemetry plane for fsync latency and frame-size histograms.
    pub telemetry: Telemetry,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig { sequenced: false, compact_every: 8192, telemetry: Telemetry::disabled() }
    }
}

/// Admits sequenced events strictly in order (see module docs).
struct Sequencer {
    next: std::sync::Mutex<u64>,
    cv: std::sync::Condvar,
}

enum Admission {
    /// This event is the cursor: execute and journal it.
    Fresh,
    /// Already applied before (a retry): ack idempotently.
    Stale,
    /// The listener is shutting down: drop the frame.
    Aborted,
}

impl Sequencer {
    fn new(next: u64) -> Sequencer {
        Sequencer { next: std::sync::Mutex::new(next), cv: std::sync::Condvar::new() }
    }

    fn enter(&self, seq: u64, shutdown: &AtomicBool) -> Admission {
        let mut next = self.next.lock().expect("sequencer poisoned");
        while *next < seq {
            if shutdown.load(Ordering::Relaxed) {
                return Admission::Aborted;
            }
            next = self.cv.wait_timeout(next, POLL).expect("sequencer poisoned").0;
        }
        if *next == seq {
            Admission::Fresh
        } else {
            Admission::Stale
        }
    }

    fn exit(&self, seq: u64) {
        let mut next = self.next.lock().expect("sequencer poisoned");
        if *next == seq {
            *next = seq + 1;
        }
        drop(next);
        self.cv.notify_all();
    }
}

struct Shared {
    handle: GrmHandle,
    /// The journal plus its live recovery mirror; one lock so append and
    /// mirror-fold are atomic with respect to compaction.
    journal: Mutex<(DurableJournal, RecoveredState)>,
    sequencer: Option<Sequencer>,
    telemetry: Telemetry,
    shutdown: AtomicBool,
    compact_every: u64,
    /// Frames that passed CRC but did not decode as a request.
    undecodable: AtomicU64,
}

impl Shared {
    /// Append + fold + maybe compact, atomically. Decisions whose id is
    /// already in the mirror window are duplicates and are not
    /// re-journaled. When this returns `Ok` under `FsyncPolicy::EveryOp`
    /// the record is durable.
    fn journal_record(&self, rec: &JournalRecord) -> io::Result<()> {
        let mut guard = self.journal.lock();
        let (journal, mirror) = &mut *guard;
        if let JournalRecord::Decision { id: Some(id), .. } = rec {
            if mirror.dedup.iter().any(|(j, _)| j == id) {
                return Ok(());
            }
        }
        journal.append(rec)?;
        mirror.apply(rec);
        if self.compact_every > 0 && journal.records_in_segment() >= self.compact_every {
            let snap = mirror.snapshot();
            journal.compact(&snap)?;
        }
        Ok(())
    }
}

/// A daemon serving one [`GrmServer`] over a socket, journaling every
/// decision before it is acknowledged. See the module docs.
pub struct GrmListener {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    server: Option<GrmServer>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl GrmListener {
    /// Serve `server` on a Unix-domain socket at `path`. A stale socket
    /// file from a previous (possibly killed) daemon is removed first.
    /// `journal` and `recovered` come from [`DurableJournal::open_or_create`].
    pub fn bind_uds(
        path: &Path,
        server: GrmServer,
        journal: DurableJournal,
        recovered: RecoveredState,
        config: ListenerConfig,
    ) -> io::Result<GrmListener> {
        if path.exists() {
            fs_remove(path)?;
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let mut l = Self::assemble(server, journal, recovered, config);
        l.uds_path = Some(path.to_path_buf());
        let shared = Arc::clone(&l.shared);
        let conns = Arc::clone(&l.conns);
        l.accept = Some(thread::spawn(move || {
            accept_loop(shared, conns, move || match listener.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_read_timeout(Some(POLL))?;
                    Ok(Some(Box::new(s) as Box<dyn Stream>))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            });
        }));
        Ok(l)
    }

    /// Serve `server` on a TCP socket; `addr` may be `"127.0.0.1:0"` to
    /// let the OS pick a port (see [`GrmListener::tcp_addr`]).
    pub fn bind_tcp(
        addr: &str,
        server: GrmServer,
        journal: DurableJournal,
        recovered: RecoveredState,
        config: ListenerConfig,
    ) -> io::Result<GrmListener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let mut l = Self::assemble(server, journal, recovered, config);
        l.tcp_addr = Some(listener.local_addr()?);
        let shared = Arc::clone(&l.shared);
        let conns = Arc::clone(&l.conns);
        l.accept = Some(thread::spawn(move || {
            accept_loop(shared, conns, move || match listener.accept() {
                Ok((s, _)) => {
                    s.set_nodelay(true)?;
                    s.set_read_timeout(Some(POLL))?;
                    Ok(Some(Box::new(s) as Box<dyn Stream>))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            });
        }));
        Ok(l)
    }

    fn assemble(
        server: GrmServer,
        journal: DurableJournal,
        recovered: RecoveredState,
        config: ListenerConfig,
    ) -> GrmListener {
        let sequencer = config.sequenced.then(|| Sequencer::new(recovered.next_seq));
        let shared = Arc::new(Shared {
            handle: server.handle(),
            journal: Mutex::new((journal, recovered)),
            sequencer,
            telemetry: config.telemetry,
            shutdown: AtomicBool::new(false),
            compact_every: config.compact_every,
            undecodable: AtomicU64::new(0),
        });
        GrmListener {
            shared,
            accept: None,
            conns: Arc::new(Mutex::new(Vec::new())),
            server: Some(server),
            tcp_addr: None,
            uds_path: None,
        }
    }

    /// The bound TCP address (None for a UDS listener).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// In-process handle to the served GRM (for harness assertions).
    pub fn handle(&self) -> GrmHandle {
        self.shared.handle.clone()
    }

    /// A clone of the live recovery mirror — the state a crash right now
    /// would recover to.
    pub fn mirror(&self) -> RecoveredState {
        self.shared.journal.lock().1.clone()
    }

    /// Snapshot of the live mirror (compaction/inspection helper).
    pub fn mirror_snapshot(&self) -> Snapshot {
        self.shared.journal.lock().1.snapshot()
    }

    /// Frames that passed CRC but failed request decoding.
    pub fn undecodable_frames(&self) -> u64 {
        self.shared.undecodable.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain connection threads, sync the journal, and
    /// shut the served GRM down.
    pub fn shutdown(mut self) {
        self.stop();
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(j) = self.accept.take() {
            let _ = j.join();
        }
        let joins: Vec<_> = self.conns.lock().drain(..).collect();
        for j in joins {
            let _ = j.join();
        }
        let _ = self.shared.journal.lock().0.sync();
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for GrmListener {
    fn drop(&mut self) {
        self.stop();
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

fn fs_remove(path: &Path) -> io::Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// The two stream types, unified for the connection handler.
trait Stream: Read + Write + Send {}
impl Stream for UnixStream {}
impl Stream for TcpStream {}

fn accept_loop(
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    mut accept: impl FnMut() -> io::Result<Option<Box<dyn Stream>>>,
) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match accept() {
            Ok(Some(stream)) => {
                let shared = Arc::clone(&shared);
                conns.lock().push(thread::spawn(move || serve_conn(stream, &shared)));
            }
            Ok(None) => thread::sleep(Duration::from_millis(2)),
            Err(_) => break,
        }
    }
}

fn serve_conn(mut stream: Box<dyn Stream>, shared: &Shared) {
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                dec.push(&buf[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(payload)) => {
                            shared.telemetry.observe(
                                HistKind::FrameBytes,
                                (payload.len() + FRAME_OVERHEAD) as f64,
                            );
                            if handle_frame(&payload, &mut stream, shared).is_err() {
                                break 'conn;
                            }
                        }
                        Ok(None) => break,
                        // Corrupt frame: the decoder resynced; the lost
                        // request is the sender's retry problem.
                        Err(_) => continue,
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
}

/// Decode, execute, journal (write-ahead), reply. Returns `Err` only
/// when the response cannot be written (dead connection).
fn handle_frame(payload: &[u8], out: &mut impl Write, shared: &Shared) -> io::Result<()> {
    let rf = match RequestFrame::decode(payload) {
        Ok(rf) => rf,
        Err(_) => {
            shared.undecodable.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
    };
    let resp = match (&shared.sequencer, rf.replay_seq) {
        (Some(seq), Some(no)) => match seq.enter(no, &shared.shutdown) {
            Admission::Aborted => return Ok(()),
            Admission::Stale => execute_stale(&rf.req, shared),
            Admission::Fresh => {
                let resp = execute(&rf.req, Some(no), shared);
                seq.exit(no);
                resp
            }
        },
        _ => execute(&rf.req, None, shared),
    };
    send_response(out, shared, ResponseFrame { corr: rf.corr, resp })
}

fn send_response(out: &mut impl Write, shared: &Shared, frame: ResponseFrame) -> io::Result<()> {
    let payload = frame.encode();
    let mut framed = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    encode_frame(&payload, &mut framed)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    shared.telemetry.observe(HistKind::FrameBytes, framed.len() as f64);
    out.write_all(&framed)?;
    out.flush()
}

const JOURNAL_DOWN: GrmError = GrmError::Unsupported("agreement journal unavailable");

/// Is this decision outcome worth journaling? Transport-layer errors
/// (the in-process server died under us) are not decisions.
fn journalable(err: &GrmError) -> bool {
    !matches!(
        err,
        GrmError::Disconnected
            | GrmError::DeadlineExceeded { .. }
            | GrmError::RetriesExhausted { .. }
            | GrmError::ConnectionRefused
            | GrmError::ConnectionReset
    )
}

fn execute(req: &WireRequest, seq: Option<u64>, shared: &Shared) -> WireResponse {
    let h = &shared.handle;
    match req {
        WireRequest::Report { lrm, available } => {
            let res = h.report(*lrm as usize, *available);
            if res.is_ok() {
                let rec = JournalRecord::Report { seq, lrm: *lrm, available: *available };
                if shared.journal_record(&rec).is_err() {
                    return WireResponse::Unit(Err(JOURNAL_DOWN));
                }
            }
            WireResponse::Unit(res)
        }
        WireRequest::Tick { now, lease } => {
            // Lease expiry is soft state, corrected by the next round of
            // re-reports — never journaled.
            WireResponse::Unit(h.tick(*now, *lease))
        }
        WireRequest::Request { lrm, amount, req_id } => {
            let result = match req_id {
                Some(id) => h.request_idempotent(*lrm as usize, *amount, *id),
                None => h.request(*lrm as usize, *amount),
            };
            if result.as_ref().err().is_none_or(journalable) {
                let rec = JournalRecord::Decision {
                    seq,
                    id: *req_id,
                    body: DecisionBody::Grant(result.clone()),
                };
                if shared.journal_record(&rec).is_err() {
                    return WireResponse::Grant(Err(JOURNAL_DOWN));
                }
            }
            WireResponse::Grant(result)
        }
        WireRequest::Release { alloc, req_id } => {
            let draws = alloc.draws.clone();
            let result = match req_id {
                Some(id) => h.release_idempotent(alloc.clone(), *id),
                None => h.release(alloc.clone()),
            };
            if result.as_ref().err().is_none_or(journalable) {
                let rec = JournalRecord::Decision {
                    seq,
                    id: *req_id,
                    body: DecisionBody::Release { draws, result: result.clone() },
                };
                if shared.journal_record(&rec).is_err() {
                    return WireResponse::Unit(Err(JOURNAL_DOWN));
                }
            }
            WireResponse::Unit(result)
        }
        WireRequest::ReplayGrant { req_id, lrm, amount } => {
            let result = h.replay_grant(*req_id, *lrm as usize, *amount);
            if result.as_ref().err().is_none_or(journalable) {
                let rec = JournalRecord::Decision {
                    seq,
                    id: Some(*req_id),
                    body: DecisionBody::Replay {
                        lrm: *lrm,
                        amount: *amount,
                        result: result.clone(),
                    },
                };
                if shared.journal_record(&rec).is_err() {
                    return WireResponse::Unit(Err(JOURNAL_DOWN));
                }
            }
            WireResponse::Unit(result)
        }
        WireRequest::Availability => match h.availability() {
            Ok(v) => WireResponse::Availability(v),
            Err(e) => WireResponse::Unit(Err(e)),
        },
        WireRequest::Stats => match h.stats() {
            Ok(s) => WireResponse::Stats(Box::new(s)),
            Err(e) => WireResponse::Unit(Err(e)),
        },
    }
}

/// An event below the replay cursor: it was applied (and journaled)
/// before a crash or retransmission. Reports are acked without
/// re-applying — re-running them would rewind the pools. Idempotent RPCs
/// are forwarded so the dedup window serves the original decision (the
/// duplicate-id check keeps the journal clean).
fn execute_stale(req: &WireRequest, shared: &Shared) -> WireResponse {
    let h = &shared.handle;
    match req {
        WireRequest::Report { .. } | WireRequest::Tick { .. } => WireResponse::Unit(Ok(())),
        WireRequest::Request { lrm, amount, req_id } => match req_id {
            Some(id) => WireResponse::Grant(h.request_idempotent(*lrm as usize, *amount, *id)),
            // A sequenced request without an id cannot be deduplicated;
            // refuse rather than silently double-grant.
            None => WireResponse::Grant(Err(GrmError::Unsupported(
                "stale sequenced request without an idempotency id",
            ))),
        },
        WireRequest::Release { alloc, req_id } => match req_id {
            Some(id) => WireResponse::Unit(h.release_idempotent(alloc.clone(), *id)),
            None => WireResponse::Unit(Err(GrmError::Unsupported(
                "stale sequenced release without an idempotency id",
            ))),
        },
        WireRequest::ReplayGrant { req_id, lrm, amount } => {
            WireResponse::Unit(h.replay_grant(*req_id, *lrm as usize, *amount))
        }
        WireRequest::Availability => match h.availability() {
            Ok(v) => WireResponse::Availability(v),
            Err(e) => WireResponse::Unit(Err(e)),
        },
        WireRequest::Stats => match h.stats() {
            Ok(s) => WireResponse::Stats(Box::new(s)),
            Err(e) => WireResponse::Unit(Err(e)),
        },
    }
}
