//! Durable, crash-recoverable agreement journal.
//!
//! The in-memory `agreements_grm::AgreementJournal` records agreement
//! mutations so a cold standby can be rebuilt — but it dies with the
//! process. This module puts the journal on disk so a **kill -9** loses
//! nothing a client was told:
//!
//! - **Segments.** The journal is a directory of append-only segment
//!   files `segment-NNNNNN.log`. Every segment *begins with a full
//!   snapshot record* (matrix, availability, dedup window, replay
//!   cursor), so recovery reads exactly one segment: the newest one
//!   whose snapshot is intact. Compaction is therefore just "start a new
//!   segment, then delete the old ones" — no rewrite-in-place, no
//!   window where the only copy of the state is mid-edit.
//! - **Records.** Each record is one CRC-framed blob (the same
//!   [`crate::frame`] envelope the wire uses). A torn tail — the bytes a
//!   crash left half-written — fails CRC or length validation, is
//!   truncated away, and replay resumes from the last complete record.
//!   A record is the unit of atomicity.
//! - **Fsync policy.** [`FsyncPolicy::EveryOp`] syncs before `append`
//!   returns: combined with the listener's write-ahead-of-reply rule, a
//!   decision a client observed is always on disk (at-most-once
//!   settlement survives the crash). [`FsyncPolicy::Batched`] groups
//!   syncs and trades a bounded post-crash loss window for throughput;
//!   replies released before the batch syncs may be re-executed by a
//!   retry after recovery.
//!
//! Recovery invariants (verified by `tests/torn_journal.rs` and the
//! kill-9 harness): truncation only ever removes the final, incomplete
//! record; replaying the surviving prefix yields exactly the state as of
//! the last durable record; `next_seq` equals one past the highest
//! journaled event sequence, so a sequenced federation resumes without
//! re-applying history.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use agreements_flow::AgreementMatrix;
use agreements_grm::{GrmError, GrmServer, RecordedDecision, RequestId};
use agreements_sched::{Allocation, MultiAllocation};
use agreements_telemetry::{HistKind, Telemetry};

use crate::frame::{encode_frame_limited, FrameDecoder};
use crate::wire::{
    decode_decision, encode_decision, get_request_id, put_request_id, Reader, Writer,
};

/// Per-record frame limit in journal segments. Wire frames stay under
/// [`crate::frame::MAX_FRAME_LEN`] (1 MiB), but a snapshot record
/// carries the full n×n agreement matrix — 8n² bytes, past 1 MiB from
/// n ≈ 360 — so segments are framed under this larger cap instead
/// (256 MiB covers n ≈ 5700). The decoder-stall rationale behind the
/// wire cap does not apply to a local file read at recovery.
pub const MAX_JOURNAL_FRAME_LEN: usize = 1 << 28;

/// When appended records reach the platters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` before every `append` returns. With write-ahead-of-reply
    /// this is the at-most-once-across-crash mode: no client ever sees a
    /// decision that is not durable.
    EveryOp,
    /// Group commit: sync once every `max_pending` appends (or at an
    /// explicit [`DurableJournal::sync`] barrier). Bounded post-crash
    /// loss window, much higher append throughput.
    Batched {
        /// Appends allowed to accumulate before a forced sync.
        max_pending: usize,
    },
}

/// A full-state snapshot: the first record of every segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Agreement matrix at snapshot time (hard state).
    pub matrix: AgreementMatrix,
    /// Transitive-closure level the GRM runs at.
    pub level: usize,
    /// Availability view at snapshot time (soft state — best effort,
    /// authoritative again once LRMs re-report).
    pub availability: Vec<f64>,
    /// One past the highest applied event sequence (sequenced mode).
    pub next_seq: u64,
    /// Live dedup-window entries, oldest first.
    pub dedup: Vec<(RequestId, RecordedDecision)>,
}

/// The availability- and books-relevant content of one decision.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionBody {
    /// An allocation decision; `Ok` deducts its draws from the pools.
    Grant(Result<Allocation, GrmError>),
    /// A release; `Ok` returns `draws` to the pools (the draws ride
    /// along because `RecordedDecision::Release` does not carry them).
    Release {
        /// The draw vector being returned.
        draws: Vec<f64>,
        /// The decision served to the client.
        result: Result<(), GrmError>,
    },
    /// A degraded-grant settlement; moves only the books.
    Replay {
        /// Settling LRM.
        lrm: u64,
        /// Settled units.
        amount: f64,
        /// The decision served to the client.
        result: Result<(), GrmError>,
    },
    /// A multi-resource allocation decision. Recovery seeds the dedup
    /// window from it (retries straddling a crash replay the original
    /// decision) but folds no pool effect: the recovery mirror's
    /// availability is single-lane, and multi-lane pools are soft state
    /// rebuilt by the first `ReportMulti` round after a respawn.
    GrantMulti(Result<MultiAllocation, GrmError>),
}

impl DecisionBody {
    /// The dedup-window form of this decision.
    pub fn to_recorded(&self) -> RecordedDecision {
        match self {
            DecisionBody::Grant(r) => RecordedDecision::Grant(r.clone()),
            DecisionBody::Release { result, .. } => RecordedDecision::Release(result.clone()),
            DecisionBody::Replay { result, .. } => RecordedDecision::Replay(result.clone()),
            DecisionBody::GrantMulti(r) => RecordedDecision::GrantMulti(r.clone()),
        }
    }
}

/// One durable journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Full-state snapshot (first record of a segment).
    Snapshot(Snapshot),
    /// `set_agreement(from, to, share)` accepted by the server.
    AgreementSet {
        /// Granting principal.
        from: u64,
        /// Receiving principal.
        to: u64,
        /// New share.
        share: f64,
    },
    /// A principal joined (index = matrix size before growth).
    Join,
    /// A principal left (row/column isolated, availability zeroed).
    Leave {
        /// The departed principal.
        lrm: u64,
    },
    /// An availability report that was applied.
    Report {
        /// Event sequence (sequenced mode), else `None`.
        seq: Option<u64>,
        /// Reporting LRM.
        lrm: u64,
        /// Reported pool.
        available: f64,
    },
    /// A decision that was served (journaled *before* the reply left the
    /// process).
    Decision {
        /// Event sequence (sequenced mode), else `None`.
        seq: Option<u64>,
        /// Idempotency id, when the call carried one.
        id: Option<RequestId>,
        /// The decision and its state effect.
        body: DecisionBody,
    },
}

fn put_matrix(w: &mut Writer, m: &AgreementMatrix) {
    let n = m.n();
    w.u64(n as u64);
    for i in 0..n {
        for j in 0..n {
            w.f64(m.get(i, j));
        }
    }
}

fn get_matrix(r: &mut Reader) -> Result<AgreementMatrix, String> {
    let n = r.u64()? as usize;
    // Guard before the O(n²) read: a corrupt count must not OOM.
    if n > 1 << 16 {
        return Err(format!("implausible matrix dimension {n}"));
    }
    let mut m = AgreementMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            let v = r.f64()?;
            if i != j && v != 0.0 {
                m.set(i, j, v).map_err(|e| format!("invalid journaled share: {e}"))?;
            }
        }
    }
    Ok(m)
}

fn put_unit_res(w: &mut Writer, res: &Result<(), GrmError>) {
    // Route through the decision codec so error encoding stays single-
    // sourced (Release/Replay bodies reuse RecordedDecision's layout).
    let d = RecordedDecision::Release(res.clone());
    let bytes = encode_decision(&d);
    w.u32(bytes.len() as u32);
    for &b in &bytes {
        w.u8(b);
    }
}

fn get_unit_res(r: &mut Reader) -> Result<Result<(), GrmError>, String> {
    let n = r.u32()? as usize;
    let bytes = r.take(n)?;
    match decode_decision(bytes) {
        Ok(RecordedDecision::Release(res)) => Ok(res),
        Ok(_) => Err("wrong decision kind in unit result".into()),
        Err(GrmError::FrameDecode { detail }) => Err(detail),
        Err(e) => Err(e.to_string()),
    }
}

impl JournalRecord {
    /// Encode to a record payload (to be wrapped in one CRC frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            JournalRecord::Snapshot(s) => {
                w.u8(0);
                put_matrix(&mut w, &s.matrix);
                w.u64(s.level as u64);
                w.f64s(&s.availability);
                w.u64(s.next_seq);
                w.u32(s.dedup.len() as u32);
                for (id, d) in &s.dedup {
                    put_request_id(&mut w, id);
                    let bytes = encode_decision(d);
                    w.u32(bytes.len() as u32);
                    for &b in &bytes {
                        w.u8(b);
                    }
                }
            }
            JournalRecord::AgreementSet { from, to, share } => {
                w.u8(1);
                w.u64(*from);
                w.u64(*to);
                w.f64(*share);
            }
            JournalRecord::Join => w.u8(2),
            JournalRecord::Leave { lrm } => {
                w.u8(3);
                w.u64(*lrm);
            }
            JournalRecord::Report { seq, lrm, available } => {
                w.u8(4);
                put_opt_u64(&mut w, seq);
                w.u64(*lrm);
                w.f64(*available);
            }
            JournalRecord::Decision { seq, id, body } => {
                w.u8(5);
                put_opt_u64(&mut w, seq);
                match id {
                    None => w.u8(0),
                    Some(id) => {
                        w.u8(1);
                        put_request_id(&mut w, id);
                    }
                }
                match body {
                    DecisionBody::Grant(res) => {
                        w.u8(0);
                        let bytes = encode_decision(&RecordedDecision::Grant(res.clone()));
                        w.u32(bytes.len() as u32);
                        for &b in &bytes {
                            w.u8(b);
                        }
                    }
                    DecisionBody::Release { draws, result } => {
                        w.u8(1);
                        w.f64s(draws);
                        put_unit_res(&mut w, result);
                    }
                    DecisionBody::GrantMulti(res) => {
                        w.u8(3);
                        let bytes = encode_decision(&RecordedDecision::GrantMulti(res.clone()));
                        w.u32(bytes.len() as u32);
                        for &b in &bytes {
                            w.u8(b);
                        }
                    }
                    DecisionBody::Replay { lrm, amount, result } => {
                        w.u8(2);
                        w.u64(*lrm);
                        w.f64(*amount);
                        put_unit_res(&mut w, result);
                    }
                }
            }
        }
        w.into_bytes()
    }

    /// Decode a record payload.
    pub fn decode(bytes: &[u8]) -> Result<JournalRecord, String> {
        let mut r = Reader::new(bytes);
        let rec = match r.u8()? {
            0 => {
                let matrix = get_matrix(&mut r)?;
                let level = r.u64()? as usize;
                let availability = r.f64s()?;
                let next_seq = r.u64()?;
                let count = r.u32()? as usize;
                let mut dedup = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let id = get_request_id(&mut r)?;
                    let n = r.u32()? as usize;
                    let bytes = r.take(n)?;
                    let d = decode_decision(bytes).map_err(|e| e.to_string())?;
                    dedup.push((id, d));
                }
                JournalRecord::Snapshot(Snapshot { matrix, level, availability, next_seq, dedup })
            }
            1 => JournalRecord::AgreementSet { from: r.u64()?, to: r.u64()?, share: r.f64()? },
            2 => JournalRecord::Join,
            3 => JournalRecord::Leave { lrm: r.u64()? },
            4 => JournalRecord::Report {
                seq: get_opt_u64(&mut r)?,
                lrm: r.u64()?,
                available: r.f64()?,
            },
            5 => {
                let seq = get_opt_u64(&mut r)?;
                let id = match r.u8()? {
                    0 => None,
                    1 => Some(get_request_id(&mut r)?),
                    t => return Err(format!("bad id tag {t}")),
                };
                let body = match r.u8()? {
                    0 => {
                        let n = r.u32()? as usize;
                        let bytes = r.take(n)?;
                        match decode_decision(bytes).map_err(|e| e.to_string())? {
                            RecordedDecision::Grant(res) => DecisionBody::Grant(res),
                            _ => return Err("wrong decision kind for Grant body".into()),
                        }
                    }
                    1 => DecisionBody::Release { draws: r.f64s()?, result: get_unit_res(&mut r)? },
                    2 => DecisionBody::Replay {
                        lrm: r.u64()?,
                        amount: r.f64()?,
                        result: get_unit_res(&mut r)?,
                    },
                    3 => {
                        let n = r.u32()? as usize;
                        let bytes = r.take(n)?;
                        match decode_decision(bytes).map_err(|e| e.to_string())? {
                            RecordedDecision::GrantMulti(res) => DecisionBody::GrantMulti(res),
                            _ => return Err("wrong decision kind for GrantMulti body".into()),
                        }
                    }
                    t => return Err(format!("bad DecisionBody tag {t}")),
                };
                JournalRecord::Decision { seq, id, body }
            }
            t => return Err(format!("bad JournalRecord tag {t}")),
        };
        r.finish()?;
        Ok(rec)
    }
}

fn put_opt_u64(w: &mut Writer, v: &Option<u64>) {
    match v {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.u64(*v);
        }
    }
}

fn get_opt_u64(r: &mut Reader) -> Result<Option<u64>, String> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        t => Err(format!("bad Option<u64> tag {t}")),
    }
}

/// What recovery rebuilt from the journal.
#[derive(Debug, Clone)]
pub struct RecoveredState {
    /// Agreement matrix as of the last durable record.
    pub matrix: AgreementMatrix,
    /// Transitive-closure level.
    pub level: usize,
    /// Availability as of the last durable record (best effort; see
    /// module docs).
    pub availability: Vec<f64>,
    /// One past the highest journaled event sequence.
    pub next_seq: u64,
    /// Dedup entries to seed into the respawned server, oldest first.
    pub dedup: Vec<(RequestId, RecordedDecision)>,
    /// Complete records replayed (including the snapshot).
    pub records: u64,
    /// Bytes of torn tail truncated away (0 on a clean shutdown).
    pub truncated_bytes: u64,
}

impl RecoveredState {
    /// The state a journal holding only `snapshot` recovers to.
    pub fn from_snapshot(snapshot: &Snapshot) -> RecoveredState {
        let mut st = RecoveredState {
            matrix: AgreementMatrix::zeros(0),
            level: 0,
            availability: Vec::new(),
            next_seq: 0,
            dedup: Vec::new(),
            records: 0,
            truncated_bytes: 0,
        };
        st.apply(&JournalRecord::Snapshot(snapshot.clone()));
        st
    }

    /// Apply one record to the in-memory state. Shared by segment replay
    /// and by tests that build expected states by hand.
    pub fn apply(&mut self, rec: &JournalRecord) {
        match rec {
            JournalRecord::Snapshot(s) => {
                self.matrix = s.matrix.clone();
                self.level = s.level;
                self.availability = s.availability.clone();
                self.next_seq = s.next_seq;
                self.dedup = s.dedup.clone();
            }
            JournalRecord::AgreementSet { from, to, share } => {
                // The live server accepted this op before it was
                // journaled, so re-applying cannot fail; ignore defends
                // against a hand-edited journal.
                let _ = self.matrix.set(*from as usize, *to as usize, *share);
            }
            JournalRecord::Join => {
                self.matrix = self.matrix.grown();
                self.availability.push(0.0);
            }
            JournalRecord::Leave { lrm } => {
                let _ = self.matrix.isolate(*lrm as usize);
                if let Some(v) = self.availability.get_mut(*lrm as usize) {
                    *v = 0.0;
                }
            }
            JournalRecord::Report { seq, lrm, available } => {
                if let Some(v) = self.availability.get_mut(*lrm as usize) {
                    *v = *available;
                }
                self.bump_seq(*seq);
            }
            JournalRecord::Decision { seq, id, body } => {
                // A decision whose id is already in the window is a
                // duplicate the server answered from cache: its pool
                // effect already happened and must not be re-applied.
                let duplicate = matches!(id, Some(id) if self.dedup.iter().any(|(j, _)| j == id));
                if !duplicate {
                    match body {
                        DecisionBody::Grant(Ok(alloc)) => {
                            for (v, d) in self.availability.iter_mut().zip(&alloc.draws) {
                                *v = (*v - *d).max(0.0);
                            }
                        }
                        DecisionBody::Release { draws, result: Ok(()) } => {
                            for (v, d) in self.availability.iter_mut().zip(draws) {
                                *v += *d;
                            }
                        }
                        // Denials and replay settlements move no pools.
                        _ => {}
                    }
                }
                if let Some(id) = id {
                    self.dedup.retain(|(j, _)| j != id);
                    self.dedup.push((*id, body.to_recorded()));
                    // Mirror the live window's capacity so snapshots do
                    // not grow without bound across compactions.
                    while self.dedup.len() > agreements_grm::server::DEDUP_WINDOW {
                        self.dedup.remove(0);
                    }
                }
                self.bump_seq(*seq);
            }
        }
        self.records += 1;
    }

    fn bump_seq(&mut self, seq: Option<u64>) {
        if let Some(s) = seq {
            self.next_seq = self.next_seq.max(s + 1);
        }
    }

    /// Boot a standby GRM from the recovered state: spawn on the
    /// recovered matrix, push the recovered availability as synthetic
    /// reports, and seed the dedup window so retries straddling the
    /// crash replay their original decisions.
    pub fn respawn(&self) -> Result<GrmServer, GrmError> {
        self.respawn_with(GrmServer::spawn(self.matrix.clone(), self.level))
    }

    /// Seed an already-spawned server (any decision engine — flat LP or
    /// hierarchical batched) with the recovered soft state: availability
    /// as synthetic reports, dedup window so retries straddling the
    /// crash replay their original decisions. The caller is responsible
    /// for spawning the server on [`RecoveredState::matrix`]; this lets
    /// a daemon choose `spawn_hierarchical` while sharing one recovery
    /// path.
    pub fn respawn_with(&self, server: GrmServer) -> Result<GrmServer, GrmError> {
        let h = server.handle();
        for (i, &v) in self.availability.iter().enumerate() {
            h.report(i, v)?;
        }
        for (id, d) in &self.dedup {
            h.seed_decision(*id, d.clone())?;
        }
        Ok(server)
    }

    /// A snapshot of this state (for compaction).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            matrix: self.matrix.clone(),
            level: self.level,
            availability: self.availability.clone(),
            next_seq: self.next_seq,
            dedup: self.dedup.clone(),
        }
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:06}.log"))
}

fn list_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("segment-") {
            if let Some(num) = rest.strip_suffix(".log") {
                if let Ok(k) = num.parse::<u64>() {
                    out.push(k);
                }
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Fsync the directory itself so freshly created/removed segment files
/// survive a crash (file data syncs do not cover directory entries).
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// The append side of the durable journal. See the module docs for the
/// on-disk format and the recovery story.
pub struct DurableJournal {
    dir: PathBuf,
    file: File,
    segment: u64,
    /// Records appended to the current segment (snapshot included).
    seg_records: u64,
    policy: FsyncPolicy,
    /// Appends not yet covered by an fsync.
    pending: usize,
    /// Log sequence number: total records appended through this handle,
    /// monotone across compactions. A record's LSN names it in the
    /// group-commit protocol ("durable once `synced_lsn() >= lsn`").
    lsn: u64,
    /// Highest LSN known covered by an fsync.
    synced_lsn: u64,
    telemetry: Telemetry,
    /// Total bytes appended by this handle (telemetry/monitoring).
    bytes_written: u64,
}

impl DurableJournal {
    /// True when `dir` already holds journal segments (an `open` will
    /// find state to recover).
    pub fn exists(dir: &Path) -> bool {
        matches!(list_segments(dir), Ok(segs) if !segs.is_empty())
    }

    /// Start a fresh journal: segment 0 holding `snapshot`. Fails if the
    /// directory already holds segments — recovery decides what to do
    /// with an existing journal, not `create`.
    pub fn create(
        dir: &Path,
        snapshot: &Snapshot,
        policy: FsyncPolicy,
        telemetry: Telemetry,
    ) -> io::Result<DurableJournal> {
        fs::create_dir_all(dir)?;
        if DurableJournal::exists(dir) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("journal directory {} already holds segments", dir.display()),
            ));
        }
        let path = segment_path(dir, 0);
        let file = OpenOptions::new().create_new(true).append(true).open(&path)?;
        let mut j = DurableJournal {
            dir: dir.to_path_buf(),
            file,
            segment: 0,
            seg_records: 0,
            policy,
            pending: 0,
            lsn: 0,
            synced_lsn: 0,
            telemetry,
            bytes_written: 0,
        };
        j.append(&JournalRecord::Snapshot(snapshot.clone()))?;
        j.sync()?;
        sync_dir(dir)?;
        Ok(j)
    }

    /// Recover from an existing journal: replay the newest segment with
    /// an intact snapshot, truncate any torn tail, and return the
    /// rebuilt state plus a journal positioned to keep appending.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        telemetry: Telemetry,
    ) -> io::Result<(DurableJournal, RecoveredState)> {
        let segments = list_segments(dir)?;
        if segments.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no journal segments in {}", dir.display()),
            ));
        }
        // Try newest-first: a crash during compaction can leave the
        // newest segment without a complete snapshot; fall back to its
        // predecessor and discard the stillborn segment.
        for (pos, &seg) in segments.iter().enumerate().rev() {
            let path = segment_path(dir, seg);
            if let Some((state, keep_bytes, truncated)) = replay_segment(&path)? {
                let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
                if truncated > 0 {
                    file.set_len(keep_bytes)?;
                    file.sync_all()?;
                }
                file.seek(SeekFrom::End(0))?;
                // Discard any stillborn newer segments.
                for &newer in &segments[pos + 1..] {
                    let _ = fs::remove_file(segment_path(dir, newer));
                }
                sync_dir(dir)?;
                let mut state = state;
                state.truncated_bytes = truncated;
                let j = DurableJournal {
                    dir: dir.to_path_buf(),
                    file,
                    segment: seg,
                    seg_records: state.records,
                    policy,
                    pending: 0,
                    lsn: 0,
                    synced_lsn: 0,
                    telemetry,
                    bytes_written: 0,
                };
                return Ok((j, state));
            }
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("no segment in {} holds an intact snapshot", dir.display()),
        ))
    }

    /// Open an existing journal, or create a fresh one seeded with
    /// `snapshot()` when the directory holds no segments yet. The
    /// one-call boot path for a daemon that may or may not be restarting.
    pub fn open_or_create(
        dir: &Path,
        snapshot: impl FnOnce() -> Snapshot,
        policy: FsyncPolicy,
        telemetry: Telemetry,
    ) -> io::Result<(DurableJournal, RecoveredState)> {
        if DurableJournal::exists(dir) {
            DurableJournal::open(dir, policy, telemetry)
        } else {
            let snap = snapshot();
            let state = RecoveredState::from_snapshot(&snap);
            let j = DurableJournal::create(dir, &snap, policy, telemetry)?;
            Ok((j, state))
        }
    }

    /// Append one record, fsyncing per policy. When this returns under
    /// [`FsyncPolicy::EveryOp`], the record is durable.
    pub fn append(&mut self, rec: &JournalRecord) -> io::Result<()> {
        self.write_record(rec)?;
        match self.policy {
            FsyncPolicy::EveryOp => self.sync()?,
            FsyncPolicy::Batched { max_pending } => {
                if self.pending >= max_pending {
                    self.sync()?;
                }
            }
        }
        Ok(())
    }

    /// Append one record *without* any inline fsync, regardless of
    /// policy, and return its LSN. The group-commit path: a caller
    /// (the listener's syncer thread) later covers the record via
    /// [`DurableJournal::sync_handle`] + [`DurableJournal::note_synced`]
    /// — or an explicit [`DurableJournal::sync`] barrier.
    pub fn append_wal(&mut self, rec: &JournalRecord) -> io::Result<u64> {
        self.write_record(rec)?;
        Ok(self.lsn)
    }

    fn write_record(&mut self, rec: &JournalRecord) -> io::Result<()> {
        let payload = rec.encode();
        let mut framed = Vec::new();
        encode_frame_limited(&payload, &mut framed, MAX_JOURNAL_FRAME_LEN)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        // One `write_all` per record: a kill -9 (which preserves the page
        // cache) can never leave a record half-appended, only a power
        // loss can tear one mid-frame.
        self.file.write_all(&framed)?;
        self.bytes_written += framed.len() as u64;
        self.seg_records += 1;
        self.pending += 1;
        self.lsn += 1;
        Ok(())
    }

    /// Durability barrier: fsync anything appended since the last sync.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.pending == 0 {
            return Ok(());
        }
        let span = self.telemetry.start();
        self.file.sync_data()?;
        self.telemetry.stop(HistKind::JournalFsyncSeconds, span);
        self.pending = 0;
        self.synced_lsn = self.lsn;
        Ok(())
    }

    /// LSN of the most recently appended record (0 before any append
    /// through this handle).
    pub fn appended_lsn(&self) -> u64 {
        self.lsn
    }

    /// Highest LSN known durable.
    pub fn synced_lsn(&self) -> u64 {
        self.synced_lsn
    }

    /// A duplicate handle to the current segment file, for fsyncing
    /// *outside* whatever lock guards the journal. Safe with compaction:
    /// [`DurableJournal::compact`] syncs everything before rolling
    /// segments, so any record not in the current file is already
    /// durable — fsyncing a clone taken together with
    /// [`DurableJournal::appended_lsn`] therefore covers every record up
    /// to that LSN.
    pub fn sync_handle(&self) -> io::Result<File> {
        self.file.try_clone()
    }

    /// Record that an out-of-lock fsync (on a clone from
    /// [`DurableJournal::sync_handle`]) covered everything up to `lsn`.
    pub fn note_synced(&mut self, lsn: u64) {
        self.synced_lsn = self.synced_lsn.max(lsn.min(self.lsn));
        self.pending = (self.lsn - self.synced_lsn) as usize;
    }

    /// Roll to a new segment seeded with `snapshot`, then delete every
    /// older segment. The new segment is durable (file and directory
    /// synced) *before* anything is deleted, so a crash at any point
    /// leaves at least one recoverable segment.
    pub fn compact(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        self.sync()?;
        let next = self.segment + 1;
        let path = segment_path(&self.dir, next);
        let file = OpenOptions::new().create_new(true).append(true).open(&path)?;
        let old_segment = self.segment;
        self.file = file;
        self.segment = next;
        self.seg_records = 0;
        self.append(&JournalRecord::Snapshot(snapshot.clone()))?;
        self.sync()?;
        sync_dir(&self.dir)?;
        for seg in list_segments(&self.dir)? {
            if seg <= old_segment {
                let _ = fs::remove_file(segment_path(&self.dir, seg));
            }
        }
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// The fsync policy this journal was opened with.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Records appended to the current segment (snapshot included).
    pub fn records_in_segment(&self) -> u64 {
        self.seg_records
    }

    /// Index of the segment currently being appended to.
    pub fn segment_index(&self) -> u64 {
        self.segment
    }

    /// Total bytes appended through this handle.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

/// Replay one segment file. Returns `None` when the segment's first
/// record is not an intact snapshot (stillborn segment); otherwise the
/// state, the byte offset of the end of the last complete record, and
/// how many tail bytes must be truncated.
fn replay_segment(path: &Path) -> io::Result<Option<(RecoveredState, u64, u64)>> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let mut dec = FrameDecoder::limited(MAX_JOURNAL_FRAME_LEN);
    dec.push(&bytes);
    let mut state: Option<RecoveredState> = None;
    let mut good_offset = 0u64;
    loop {
        match dec.next_frame() {
            Ok(Some(payload)) => {
                let rec = match JournalRecord::decode(&payload) {
                    Ok(rec) => rec,
                    // A framed-but-undecodable record: treat everything
                    // from here on as tail damage.
                    Err(_) => break,
                };
                match (&mut state, rec) {
                    (None, JournalRecord::Snapshot(s)) => {
                        let mut st = RecoveredState {
                            matrix: AgreementMatrix::zeros(0),
                            level: 0,
                            availability: Vec::new(),
                            next_seq: 0,
                            dedup: Vec::new(),
                            records: 0,
                            truncated_bytes: 0,
                        };
                        st.apply(&JournalRecord::Snapshot(s));
                        state = Some(st);
                    }
                    // A segment must open with a snapshot.
                    (None, _) => return Ok(None),
                    (Some(st), rec) => st.apply(&rec),
                }
                good_offset += (crate::frame::FRAME_OVERHEAD + payload.len()) as u64;
            }
            // Incomplete frame at the tail: torn write.
            Ok(None) => break,
            // Corrupt frame: torn or damaged tail. Everything after the
            // last complete record is discarded.
            Err(_) => break,
        }
    }
    match state {
        None => Ok(None),
        Some(st) => {
            let truncated = bytes.len() as u64 - good_offset;
            Ok(Some((st, good_offset, truncated)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize, share: f64) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.set(i, j, share).unwrap();
                }
            }
        }
        s
    }

    fn snap(n: usize) -> Snapshot {
        Snapshot {
            matrix: complete(n, 0.5),
            level: 1,
            availability: vec![1.0; n],
            next_seq: 0,
            dedup: Vec::new(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("agreements-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn record_round_trips() {
        let recs = vec![
            JournalRecord::Snapshot(Snapshot {
                matrix: complete(3, 0.25),
                level: 2,
                availability: vec![1.0, 2.0, 3.0],
                next_seq: 17,
                dedup: vec![(RequestId { client: 1, seq: 2 }, RecordedDecision::Release(Ok(())))],
            }),
            JournalRecord::AgreementSet { from: 0, to: 1, share: 0.75 },
            JournalRecord::Join,
            JournalRecord::Leave { lrm: 2 },
            JournalRecord::Report { seq: Some(5), lrm: 1, available: 4.5 },
            JournalRecord::Report { seq: None, lrm: 0, available: 0.0 },
            JournalRecord::Decision {
                seq: Some(6),
                id: Some(RequestId { client: 3, seq: 4 }),
                body: DecisionBody::Grant(Ok(Allocation {
                    requester: 0,
                    amount: 1.0,
                    draws: vec![0.5, 0.5],
                    theta: 0.5,
                })),
            },
            JournalRecord::Decision {
                seq: None,
                id: None,
                body: DecisionBody::Release { draws: vec![1.0, 0.0], result: Ok(()) },
            },
            JournalRecord::Decision {
                seq: Some(9),
                id: Some(RequestId { client: 0, seq: 0 }),
                body: DecisionBody::Replay {
                    lrm: 1,
                    amount: 2.0,
                    result: Err(GrmError::UnknownLrm(9)),
                },
            },
        ];
        for rec in recs {
            let bytes = rec.encode();
            assert_eq!(JournalRecord::decode(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn create_append_reopen_replays_state() {
        let dir = tmpdir("reopen");
        let mut j =
            DurableJournal::create(&dir, &snap(2), FsyncPolicy::EveryOp, Telemetry::disabled())
                .unwrap();
        j.append(&JournalRecord::Report { seq: Some(0), lrm: 0, available: 5.0 }).unwrap();
        j.append(&JournalRecord::Report { seq: Some(1), lrm: 1, available: 7.0 }).unwrap();
        j.append(&JournalRecord::Decision {
            seq: Some(2),
            id: Some(RequestId { client: 1, seq: 0 }),
            body: DecisionBody::Grant(Ok(Allocation {
                requester: 0,
                amount: 3.0,
                draws: vec![3.0, 0.0],
                theta: 0.0,
            })),
        })
        .unwrap();
        j.append(&JournalRecord::AgreementSet { from: 0, to: 1, share: 0.9 }).unwrap();
        drop(j);

        let (j2, state) =
            DurableJournal::open(&dir, FsyncPolicy::EveryOp, Telemetry::disabled()).unwrap();
        assert_eq!(state.records, 5, "snapshot + 4 appends");
        assert_eq!(state.truncated_bytes, 0);
        assert_eq!(state.next_seq, 3);
        assert!((state.availability[0] - 2.0).abs() < 1e-12);
        assert!((state.availability[1] - 7.0).abs() < 1e-12);
        assert!((state.matrix.get(0, 1) - 0.9).abs() < 1e-12);
        assert_eq!(state.dedup.len(), 1);
        assert_eq!(j2.segment_index(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let dir = tmpdir("torn");
        let mut j =
            DurableJournal::create(&dir, &snap(2), FsyncPolicy::EveryOp, Telemetry::disabled())
                .unwrap();
        j.append(&JournalRecord::Report { seq: Some(0), lrm: 0, available: 5.0 }).unwrap();
        j.append(&JournalRecord::Report { seq: Some(1), lrm: 1, available: 9.0 }).unwrap();
        drop(j);
        // Tear the final record: chop 3 bytes off the file.
        let path = segment_path(&dir, 0);
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (mut j2, state) =
            DurableJournal::open(&dir, FsyncPolicy::EveryOp, Telemetry::disabled()).unwrap();
        assert_eq!(state.records, 2, "snapshot + first report survive");
        assert!(state.truncated_bytes > 0);
        assert!((state.availability[1] - 1.0).abs() < 1e-12, "torn report not applied");
        assert_eq!(state.next_seq, 1, "cursor stops at the last durable event");
        // The journal keeps working where the truncation left off.
        j2.append(&JournalRecord::Report { seq: Some(1), lrm: 1, available: 9.0 }).unwrap();
        drop(j2);
        let (_, state2) =
            DurableJournal::open(&dir, FsyncPolicy::EveryOp, Telemetry::disabled()).unwrap();
        assert_eq!(state2.records, 3);
        assert_eq!(state2.truncated_bytes, 0);
        assert!((state2.availability[1] - 9.0).abs() < 1e-12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rolls_segment_and_deletes_old() {
        let dir = tmpdir("compact");
        let mut j =
            DurableJournal::create(&dir, &snap(2), FsyncPolicy::EveryOp, Telemetry::disabled())
                .unwrap();
        for k in 0..10 {
            j.append(&JournalRecord::Report { seq: Some(k), lrm: 0, available: k as f64 }).unwrap();
        }
        let compacted = Snapshot {
            matrix: complete(2, 0.5),
            level: 1,
            availability: vec![9.0, 1.0],
            next_seq: 10,
            dedup: Vec::new(),
        };
        j.compact(&compacted).unwrap();
        assert_eq!(j.segment_index(), 1);
        assert_eq!(j.records_in_segment(), 1, "fresh segment holds only the snapshot");
        assert!(!segment_path(&dir, 0).exists(), "old segment deleted");
        j.append(&JournalRecord::Report { seq: Some(10), lrm: 1, available: 4.0 }).unwrap();
        drop(j);
        let (_, state) =
            DurableJournal::open(&dir, FsyncPolicy::EveryOp, Telemetry::disabled()).unwrap();
        assert_eq!(state.next_seq, 11);
        assert!((state.availability[0] - 9.0).abs() < 1e-12);
        assert!((state.availability[1] - 4.0).abs() < 1e-12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_policy_defers_fsync_until_barrier() {
        let dir = tmpdir("batched");
        let mut j = DurableJournal::create(
            &dir,
            &snap(2),
            FsyncPolicy::Batched { max_pending: 64 },
            Telemetry::disabled(),
        )
        .unwrap();
        for k in 0..10 {
            j.append(&JournalRecord::Report { seq: Some(k), lrm: 0, available: 1.0 }).unwrap();
        }
        // No assertion on physical durability is possible portably; the
        // barrier must at least leave the journal consistent.
        j.sync().unwrap();
        drop(j);
        let (_, state) =
            DurableJournal::open(&dir, FsyncPolicy::EveryOp, Telemetry::disabled()).unwrap();
        assert_eq!(state.records, 11);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn respawned_server_carries_recovered_state() {
        let dir = tmpdir("respawn");
        let mut j =
            DurableJournal::create(&dir, &snap(2), FsyncPolicy::EveryOp, Telemetry::disabled())
                .unwrap();
        j.append(&JournalRecord::Report { seq: None, lrm: 0, available: 0.0 }).unwrap();
        j.append(&JournalRecord::Report { seq: None, lrm: 1, available: 8.0 }).unwrap();
        let id = RequestId { client: 5, seq: 0 };
        let alloc = Allocation { requester: 0, amount: 2.0, draws: vec![0.0, 2.0], theta: 2.0 };
        j.append(&JournalRecord::Decision {
            seq: None,
            id: Some(id),
            body: DecisionBody::Grant(Ok(alloc.clone())),
        })
        .unwrap();
        drop(j);

        let (_, state) =
            DurableJournal::open(&dir, FsyncPolicy::EveryOp, Telemetry::disabled()).unwrap();
        let server = state.respawn().unwrap();
        let h = server.handle();
        // Duplicate of the pre-crash request replays the original grant.
        let again = h.request_idempotent(0, 2.0, id).unwrap();
        assert_eq!(again.draws, alloc.draws);
        // Pool conservation: the recovered view already reflects the
        // grant, and the dedup hit does not deduct twice.
        let avail = h.availability().unwrap();
        assert!((avail.iter().sum::<f64>() - 6.0).abs() < 1e-9);
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }
}
