//! Binary encoding of the GRM protocol messages.
//!
//! Everything the channel transport moved as Rust values — requests,
//! decisions, the full error taxonomy — is given a fixed, versionless
//! little-endian byte layout here, hand-rolled so the wire needs no
//! serialization dependency. `f64`s travel as their IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), so a decoded decision is
//! *bit-identical* to the encoded one — the property the federation's
//! decision-sequence comparison and the journal's recovery both rest on.
//!
//! Layout conventions: enums are a `u8` tag followed by that variant's
//! fields; integers are fixed-width LE (`usize` travels as `u64`);
//! strings and vectors are a `u32` count followed by their elements;
//! `Option<T>` is a presence byte then `T`; `Result<T, E>` is `0` + `T`
//! or `1` + `E`.
//!
//! A decode failure yields [`GrmError::FrameDecode`] — deterministic,
//! and therefore never retryable (see `GrmError::is_retryable`).

use agreements_flow::FlowError;
use agreements_grm::{GrmError, GrmStats, RecordedDecision, RequestId};
use agreements_lp::LpError;
use agreements_sched::{Allocation, MultiAllocation, SchedError};

/// One client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Fire-and-forget availability report.
    Report {
        /// Reporting LRM index.
        lrm: u64,
        /// Its current pool.
        available: f64,
    },
    /// Lease-clock tick.
    Tick {
        /// Logical now.
        now: u64,
        /// Lease length in ticks.
        lease: u64,
    },
    /// Allocation request.
    Request {
        /// Requesting LRM.
        lrm: u64,
        /// Requested units.
        amount: f64,
        /// Idempotency id, if the call may be retried.
        req_id: Option<RequestId>,
    },
    /// Return of a previous allocation's draws.
    Release {
        /// The allocation being returned.
        alloc: Allocation,
        /// Idempotency id.
        req_id: Option<RequestId>,
    },
    /// Degraded-mode grant settlement (see `Lrm::reconcile`).
    ReplayGrant {
        /// The id the degraded grant was journaled under.
        req_id: RequestId,
        /// Granting LRM.
        lrm: u64,
        /// Settled units.
        amount: f64,
    },
    /// Snapshot of the availability view.
    Availability,
    /// Operational counters.
    Stats,
    /// Multi-resource allocation request: one amount per lane, admitted
    /// lane-conjunctively by a multi-engine server.
    RequestMulti {
        /// Requesting LRM.
        lrm: u64,
        /// Requested units, one per resource lane.
        amounts: Vec<f64>,
        /// Idempotency id, if the call may be retried.
        req_id: Option<RequestId>,
    },
    /// Fire-and-forget multi-resource availability report (all lanes of
    /// one LRM move atomically).
    ReportMulti {
        /// Reporting LRM index.
        lrm: u64,
        /// Its current pool, one entry per resource lane.
        available: Vec<f64>,
    },
    /// Snapshot of the per-lane availability view.
    AvailabilityMulti,
}

/// One server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Decision for a `Request`.
    Grant(Result<Allocation, GrmError>),
    /// Ack for `Release`/`ReplayGrant`, and for `Report`/`Tick` (the
    /// channel transport fire-and-forgets those; the socket transport
    /// acks everything so a sequenced replay can wait for application).
    Unit(Result<(), GrmError>),
    /// Reply to `Availability`.
    Availability(Vec<f64>),
    /// Reply to `Stats`.
    Stats(Box<GrmStats>),
    /// Decision for a `RequestMulti`.
    GrantMulti(Result<MultiAllocation, GrmError>),
    /// Reply to `AvailabilityMulti`: `[lane][principal]` pools.
    AvailabilityMulti(Vec<Vec<f64>>),
}

/// A framed request: correlation id for the client's demux, an optional
/// global replay sequence number (sequenced-federation mode; see
/// `listener`), and the request body.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub corr: u64,
    /// Global event sequence for deterministic federation replay;
    /// `None` outside sequenced mode.
    pub replay_seq: Option<u64>,
    /// The request body.
    pub req: WireRequest,
}

/// A framed response.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// Echo of the request's correlation id.
    pub corr: u64,
    /// The response body.
    pub resp: WireResponse,
}

// ---------------------------------------------------------------------
// Byte writer / reader
// ---------------------------------------------------------------------

/// Append-only byte writer (thin Vec wrapper; named methods keep the
/// codec bodies readable).
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn f64s(&mut self, vs: &[f64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.f64(v);
        }
    }
}

/// Cursor-based reader; every accessor bounds-checks and reports a
/// human-readable detail string on failure.
pub(crate) struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

type WireResult<T> = Result<T, String>;

impl<'a> Reader<'a> {
    pub(crate) fn new(b: &'a [u8]) -> Self {
        Reader { b, pos: 0 }
    }

    /// All bytes consumed? Trailing garbage means a codec mismatch.
    pub(crate) fn finish(self) -> WireResult<()> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after message", self.b.len() - self.pos))
        }
    }

    pub(crate) fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.pos + n > self.b.len() {
            return Err(format!(
                "message truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.b.len() - self.pos
            ));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> WireResult<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub(crate) fn u64(&mut self) -> WireResult<u64> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    pub(crate) fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> WireResult<String> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }

    pub(crate) fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    pub(crate) fn f64s(&mut self) -> WireResult<Vec<f64>> {
        let n = self.u32()? as usize;
        // Guard before allocating: a corrupt count must not OOM.
        if n * 8 > self.b.len() - self.pos {
            return Err(format!("vector count {n} exceeds remaining bytes"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Leaf codecs
// ---------------------------------------------------------------------

pub(crate) fn put_request_id(w: &mut Writer, id: &RequestId) {
    w.u64(id.client);
    w.u64(id.seq);
}

pub(crate) fn get_request_id(r: &mut Reader) -> WireResult<RequestId> {
    Ok(RequestId { client: r.u64()?, seq: r.u64()? })
}

fn put_opt_request_id(w: &mut Writer, id: &Option<RequestId>) {
    match id {
        None => w.u8(0),
        Some(id) => {
            w.u8(1);
            put_request_id(w, id);
        }
    }
}

fn get_opt_request_id(r: &mut Reader) -> WireResult<Option<RequestId>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_request_id(r)?)),
        t => Err(format!("bad Option tag {t}")),
    }
}

pub(crate) fn put_allocation(w: &mut Writer, a: &Allocation) {
    w.u64(a.requester as u64);
    w.f64(a.amount);
    w.f64s(&a.draws);
    w.f64(a.theta);
}

pub(crate) fn get_allocation(r: &mut Reader) -> WireResult<Allocation> {
    Ok(Allocation {
        requester: r.u64()? as usize,
        amount: r.f64()?,
        draws: r.f64s()?,
        theta: r.f64()?,
    })
}

fn put_multi_allocation(w: &mut Writer, a: &MultiAllocation) {
    w.u32(a.lanes.len() as u32);
    for lane in &a.lanes {
        put_allocation(w, lane);
    }
}

fn get_multi_allocation(r: &mut Reader) -> WireResult<MultiAllocation> {
    let n = r.u32()? as usize;
    // Every lane allocation is ≥ 33 bytes; bound before allocating.
    if n * 33 > r.remaining() {
        return Err(format!("lane count {n} exceeds remaining bytes"));
    }
    let mut lanes = Vec::with_capacity(n);
    for _ in 0..n {
        lanes.push(get_allocation(r)?);
    }
    Ok(MultiAllocation { lanes })
}

fn put_lp_error(w: &mut Writer, e: &LpError) {
    match e {
        LpError::Infeasible { residual } => {
            w.u8(0);
            w.f64(*residual);
        }
        LpError::Unbounded { column } => {
            w.u8(1);
            w.u64(*column as u64);
        }
        LpError::IterationLimit { limit } => {
            w.u8(2);
            w.u64(*limit as u64);
        }
        LpError::InvalidModel(s) => {
            w.u8(3);
            w.str(s);
        }
    }
}

fn get_lp_error(r: &mut Reader) -> WireResult<LpError> {
    Ok(match r.u8()? {
        0 => LpError::Infeasible { residual: r.f64()? },
        1 => LpError::Unbounded { column: r.u64()? as usize },
        2 => LpError::IterationLimit { limit: r.u64()? as usize },
        3 => LpError::InvalidModel(r.str()?),
        t => return Err(format!("bad LpError tag {t}")),
    })
}

/// `&'static str` payloads (rare, error-path only) are restored via
/// `Box::leak`; the handful of distinct diagnostic strings a process can
/// ever decode makes the leak bounded in practice.
fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

fn put_flow_error(w: &mut Writer, e: &FlowError) {
    match e {
        FlowError::OutOfRange { index, n } => {
            w.u8(0);
            w.u64(*index as u64);
            w.u64(*n as u64);
        }
        FlowError::InvalidShare { value } => {
            w.u8(1);
            w.f64(*value);
        }
        FlowError::DiagonalShare { index } => {
            w.u8(2);
            w.u64(*index as u64);
        }
        FlowError::RowSumExceeded { row, sum } => {
            w.u8(3);
            w.u64(*row as u64);
            w.f64(*sum);
        }
        FlowError::InvalidPartition { reason } => {
            w.u8(4);
            w.str(reason);
        }
    }
}

fn get_flow_error(r: &mut Reader) -> WireResult<FlowError> {
    Ok(match r.u8()? {
        0 => FlowError::OutOfRange { index: r.u64()? as usize, n: r.u64()? as usize },
        1 => FlowError::InvalidShare { value: r.f64()? },
        2 => FlowError::DiagonalShare { index: r.u64()? as usize },
        3 => FlowError::RowSumExceeded { row: r.u64()? as usize, sum: r.f64()? },
        4 => FlowError::InvalidPartition { reason: leak(r.str()?) },
        t => return Err(format!("bad FlowError tag {t}")),
    })
}

fn put_sched_error(w: &mut Writer, e: &SchedError) {
    match e {
        SchedError::InsufficientCapacity { requester, capacity, requested, resource } => {
            w.u8(0);
            w.u64(*requester as u64);
            w.f64(*capacity);
            w.f64(*requested);
            // Binding-resource tag: presence byte then the name, so
            // single-resource payloads stay distinguishable from a
            // multi-resource rejection naming its binding lane.
            match resource {
                Some(name) => {
                    w.u8(1);
                    w.str(name);
                }
                None => w.u8(0),
            }
        }
        SchedError::UnknownPrincipal { index, n } => {
            w.u8(1);
            w.u64(*index as u64);
            w.u64(*n as u64);
        }
        SchedError::InvalidRequest { amount } => {
            w.u8(2);
            w.f64(*amount);
        }
        SchedError::Lp(e) => {
            w.u8(3);
            put_lp_error(w, e);
        }
        SchedError::DimensionMismatch { expected, got } => {
            w.u8(4);
            w.u64(*expected as u64);
            w.u64(*got as u64);
        }
        SchedError::EmptyGroup { group } => {
            w.u8(5);
            w.u64(*group as u64);
        }
        SchedError::Flow(e) => {
            w.u8(6);
            put_flow_error(w, e);
        }
    }
}

fn get_sched_error(r: &mut Reader) -> WireResult<SchedError> {
    Ok(match r.u8()? {
        0 => SchedError::InsufficientCapacity {
            requester: r.u64()? as usize,
            capacity: r.f64()?,
            requested: r.f64()?,
            resource: match r.u8()? {
                0 => None,
                1 => Some(leak(r.str()?)),
                t => return Err(format!("bad resource presence byte {t}")),
            },
        },
        1 => SchedError::UnknownPrincipal { index: r.u64()? as usize, n: r.u64()? as usize },
        2 => SchedError::InvalidRequest { amount: r.f64()? },
        3 => SchedError::Lp(get_lp_error(r)?),
        4 => SchedError::DimensionMismatch { expected: r.u64()? as usize, got: r.u64()? as usize },
        5 => SchedError::EmptyGroup { group: r.u64()? as usize },
        6 => SchedError::Flow(get_flow_error(r)?),
        t => return Err(format!("bad SchedError tag {t}")),
    })
}

fn put_grm_error(w: &mut Writer, e: &GrmError) {
    match e {
        GrmError::Sched(e) => {
            w.u8(0);
            put_sched_error(w, e);
        }
        GrmError::Flow(e) => {
            w.u8(1);
            put_flow_error(w, e);
        }
        GrmError::UnknownLrm(i) => {
            w.u8(2);
            w.u64(*i as u64);
        }
        GrmError::Disconnected => w.u8(3),
        GrmError::DeadlineExceeded { millis } => {
            w.u8(4);
            w.u64(*millis);
        }
        GrmError::RetriesExhausted { attempts } => {
            w.u8(5);
            w.u64(*attempts as u64);
        }
        GrmError::Unsupported(what) => {
            w.u8(6);
            w.str(what);
        }
        GrmError::ConnectionRefused => w.u8(7),
        GrmError::ConnectionReset => w.u8(8),
        GrmError::FrameDecode { detail } => {
            w.u8(9);
            w.str(detail);
        }
        GrmError::BadEndpoint { detail } => {
            w.u8(10);
            w.str(detail);
        }
    }
}

fn get_grm_error(r: &mut Reader) -> WireResult<GrmError> {
    Ok(match r.u8()? {
        0 => GrmError::Sched(get_sched_error(r)?),
        1 => GrmError::Flow(get_flow_error(r)?),
        2 => GrmError::UnknownLrm(r.u64()? as usize),
        3 => GrmError::Disconnected,
        4 => GrmError::DeadlineExceeded { millis: r.u64()? },
        5 => GrmError::RetriesExhausted { attempts: r.u64()? as usize },
        6 => GrmError::Unsupported(leak(r.str()?)),
        7 => GrmError::ConnectionRefused,
        8 => GrmError::ConnectionReset,
        9 => GrmError::FrameDecode { detail: r.str()? },
        10 => GrmError::BadEndpoint { detail: r.str()? },
        t => return Err(format!("bad GrmError tag {t}")),
    })
}

fn put_grant_result(w: &mut Writer, res: &Result<Allocation, GrmError>) {
    match res {
        Ok(a) => {
            w.u8(0);
            put_allocation(w, a);
        }
        Err(e) => {
            w.u8(1);
            put_grm_error(w, e);
        }
    }
}

fn get_grant_result(r: &mut Reader) -> WireResult<Result<Allocation, GrmError>> {
    match r.u8()? {
        0 => Ok(Ok(get_allocation(r)?)),
        1 => Ok(Err(get_grm_error(r)?)),
        t => Err(format!("bad Result tag {t}")),
    }
}

fn put_grant_multi_result(w: &mut Writer, res: &Result<MultiAllocation, GrmError>) {
    match res {
        Ok(a) => {
            w.u8(0);
            put_multi_allocation(w, a);
        }
        Err(e) => {
            w.u8(1);
            put_grm_error(w, e);
        }
    }
}

fn get_grant_multi_result(r: &mut Reader) -> WireResult<Result<MultiAllocation, GrmError>> {
    match r.u8()? {
        0 => Ok(Ok(get_multi_allocation(r)?)),
        1 => Ok(Err(get_grm_error(r)?)),
        t => Err(format!("bad Result tag {t}")),
    }
}

fn put_unit_result(w: &mut Writer, res: &Result<(), GrmError>) {
    match res {
        Ok(()) => w.u8(0),
        Err(e) => {
            w.u8(1);
            put_grm_error(w, e);
        }
    }
}

fn get_unit_result(r: &mut Reader) -> WireResult<Result<(), GrmError>> {
    match r.u8()? {
        0 => Ok(Ok(())),
        1 => Ok(Err(get_grm_error(r)?)),
        t => Err(format!("bad Result tag {t}")),
    }
}

fn put_stats(w: &mut Writer, s: &GrmStats) {
    w.u64(s.requests);
    w.u64(s.granted);
    w.u64(s.rejected_capacity);
    w.f64(s.granted_units);
    w.u64(s.agreement_updates);
    w.u64(s.reports);
    w.u64(s.duplicate_requests);
    w.u64(s.partial_fulfils);
    w.f64(s.fulfil_shortfall_units);
    w.u64(s.journaled_grants);
    w.f64(s.journaled_units);
    w.u64(s.coalesced_reports);
    w.u64(s.fast_rejects);
    w.u64(s.flow_rows_recomputed);
    w.u64(s.batched_allocations);
    w.u64(s.executor_fallbacks_sequential);
}

fn get_stats(r: &mut Reader) -> WireResult<GrmStats> {
    Ok(GrmStats {
        requests: r.u64()?,
        granted: r.u64()?,
        rejected_capacity: r.u64()?,
        granted_units: r.f64()?,
        agreement_updates: r.u64()?,
        reports: r.u64()?,
        duplicate_requests: r.u64()?,
        partial_fulfils: r.u64()?,
        fulfil_shortfall_units: r.f64()?,
        journaled_grants: r.u64()?,
        journaled_units: r.f64()?,
        coalesced_reports: r.u64()?,
        fast_rejects: r.u64()?,
        flow_rows_recomputed: r.u64()?,
        batched_allocations: r.u64()?,
        executor_fallbacks_sequential: r.u64()?,
    })
}

// ---------------------------------------------------------------------
// Top-level messages
// ---------------------------------------------------------------------

impl RequestFrame {
    /// Encode to a payload (to be wrapped in one wire frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.corr);
        match self.replay_seq {
            None => w.u8(0),
            Some(s) => {
                w.u8(1);
                w.u64(s);
            }
        }
        match &self.req {
            WireRequest::Report { lrm, available } => {
                w.u8(0);
                w.u64(*lrm);
                w.f64(*available);
            }
            WireRequest::Tick { now, lease } => {
                w.u8(1);
                w.u64(*now);
                w.u64(*lease);
            }
            WireRequest::Request { lrm, amount, req_id } => {
                w.u8(2);
                w.u64(*lrm);
                w.f64(*amount);
                put_opt_request_id(&mut w, req_id);
            }
            WireRequest::Release { alloc, req_id } => {
                w.u8(3);
                put_allocation(&mut w, alloc);
                put_opt_request_id(&mut w, req_id);
            }
            WireRequest::ReplayGrant { req_id, lrm, amount } => {
                w.u8(4);
                put_request_id(&mut w, req_id);
                w.u64(*lrm);
                w.f64(*amount);
            }
            WireRequest::Availability => w.u8(5),
            WireRequest::Stats => w.u8(6),
            WireRequest::RequestMulti { lrm, amounts, req_id } => {
                w.u8(7);
                w.u64(*lrm);
                w.f64s(amounts);
                put_opt_request_id(&mut w, req_id);
            }
            WireRequest::ReportMulti { lrm, available } => {
                w.u8(8);
                w.u64(*lrm);
                w.f64s(available);
            }
            WireRequest::AvailabilityMulti => w.u8(9),
        }
        w.into_bytes()
    }

    /// Decode a payload; failures surface as [`GrmError::FrameDecode`].
    pub fn decode(bytes: &[u8]) -> Result<RequestFrame, GrmError> {
        decode_request(bytes).map_err(|detail| GrmError::FrameDecode { detail })
    }
}

fn decode_request(bytes: &[u8]) -> WireResult<RequestFrame> {
    let mut r = Reader::new(bytes);
    let corr = r.u64()?;
    let replay_seq = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        t => return Err(format!("bad replay_seq tag {t}")),
    };
    let req = match r.u8()? {
        0 => WireRequest::Report { lrm: r.u64()?, available: r.f64()? },
        1 => WireRequest::Tick { now: r.u64()?, lease: r.u64()? },
        2 => WireRequest::Request {
            lrm: r.u64()?,
            amount: r.f64()?,
            req_id: get_opt_request_id(&mut r)?,
        },
        3 => WireRequest::Release {
            alloc: get_allocation(&mut r)?,
            req_id: get_opt_request_id(&mut r)?,
        },
        4 => WireRequest::ReplayGrant {
            req_id: get_request_id(&mut r)?,
            lrm: r.u64()?,
            amount: r.f64()?,
        },
        5 => WireRequest::Availability,
        6 => WireRequest::Stats,
        7 => WireRequest::RequestMulti {
            lrm: r.u64()?,
            amounts: r.f64s()?,
            req_id: get_opt_request_id(&mut r)?,
        },
        8 => WireRequest::ReportMulti { lrm: r.u64()?, available: r.f64s()? },
        9 => WireRequest::AvailabilityMulti,
        t => return Err(format!("bad WireRequest tag {t}")),
    };
    r.finish()?;
    Ok(RequestFrame { corr, replay_seq, req })
}

impl ResponseFrame {
    /// Encode to a payload (to be wrapped in one wire frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.corr);
        match &self.resp {
            WireResponse::Grant(res) => {
                w.u8(0);
                put_grant_result(&mut w, res);
            }
            WireResponse::Unit(res) => {
                w.u8(1);
                put_unit_result(&mut w, res);
            }
            WireResponse::Availability(vs) => {
                w.u8(2);
                w.f64s(vs);
            }
            WireResponse::Stats(s) => {
                w.u8(3);
                put_stats(&mut w, s);
            }
            WireResponse::GrantMulti(res) => {
                w.u8(4);
                put_grant_multi_result(&mut w, res);
            }
            WireResponse::AvailabilityMulti(lanes) => {
                w.u8(5);
                w.u32(lanes.len() as u32);
                for lane in lanes {
                    w.f64s(lane);
                }
            }
        }
        w.into_bytes()
    }

    /// Decode a payload; failures surface as [`GrmError::FrameDecode`].
    pub fn decode(bytes: &[u8]) -> Result<ResponseFrame, GrmError> {
        decode_response(bytes).map_err(|detail| GrmError::FrameDecode { detail })
    }
}

fn decode_response(bytes: &[u8]) -> WireResult<ResponseFrame> {
    let mut r = Reader::new(bytes);
    let corr = r.u64()?;
    let resp = match r.u8()? {
        0 => WireResponse::Grant(get_grant_result(&mut r)?),
        1 => WireResponse::Unit(get_unit_result(&mut r)?),
        2 => WireResponse::Availability(r.f64s()?),
        3 => WireResponse::Stats(Box::new(get_stats(&mut r)?)),
        4 => WireResponse::GrantMulti(get_grant_multi_result(&mut r)?),
        5 => {
            let n = r.u32()? as usize;
            // Each lane is at least a 4-byte count; bound before allocating.
            if n * 4 > r.remaining() {
                return Err(format!("lane count {n} exceeds remaining bytes"));
            }
            let mut lanes = Vec::with_capacity(n);
            for _ in 0..n {
                lanes.push(r.f64s()?);
            }
            WireResponse::AvailabilityMulti(lanes)
        }
        t => return Err(format!("bad WireResponse tag {t}")),
    };
    r.finish()?;
    Ok(ResponseFrame { corr, resp })
}

/// Encode a journaled decision (shared with the durable journal, so a
/// recovered decision is bit-identical to the one that was served).
pub fn encode_decision(d: &RecordedDecision) -> Vec<u8> {
    let mut w = Writer::new();
    match d {
        RecordedDecision::Grant(res) => {
            w.u8(0);
            put_grant_result(&mut w, res);
        }
        RecordedDecision::Release(res) => {
            w.u8(1);
            put_unit_result(&mut w, res);
        }
        RecordedDecision::Replay(res) => {
            w.u8(2);
            put_unit_result(&mut w, res);
        }
        RecordedDecision::GrantMulti(res) => {
            w.u8(3);
            put_grant_multi_result(&mut w, res);
        }
    }
    w.into_bytes()
}

/// Decode a journaled decision.
pub fn decode_decision(bytes: &[u8]) -> Result<RecordedDecision, GrmError> {
    let inner = |bytes: &[u8]| -> WireResult<RecordedDecision> {
        let mut r = Reader::new(bytes);
        let d = match r.u8()? {
            0 => RecordedDecision::Grant(get_grant_result(&mut r)?),
            1 => RecordedDecision::Release(get_unit_result(&mut r)?),
            2 => RecordedDecision::Replay(get_unit_result(&mut r)?),
            3 => RecordedDecision::GrantMulti(get_grant_multi_result(&mut r)?),
            t => return Err(format!("bad RecordedDecision tag {t}")),
        };
        r.finish()?;
        Ok(d)
    };
    inner(bytes).map_err(|detail| GrmError::FrameDecode { detail })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> Allocation {
        Allocation { requester: 3, amount: 2.5, draws: vec![0.0, 1.25, 1.25, -0.0], theta: 0.125 }
    }

    #[test]
    fn request_round_trips() {
        let frames = vec![
            RequestFrame {
                corr: 1,
                replay_seq: None,
                req: WireRequest::Report { lrm: 4, available: 7.5 },
            },
            RequestFrame {
                corr: 2,
                replay_seq: Some(99),
                req: WireRequest::Tick { now: 10, lease: 3 },
            },
            RequestFrame {
                corr: u64::MAX,
                replay_seq: None,
                req: WireRequest::Request {
                    lrm: 0,
                    amount: f64::MIN_POSITIVE,
                    req_id: Some(RequestId { client: 7, seq: 9 }),
                },
            },
            RequestFrame {
                corr: 3,
                replay_seq: Some(0),
                req: WireRequest::Release { alloc: alloc(), req_id: None },
            },
            RequestFrame {
                corr: 4,
                replay_seq: None,
                req: WireRequest::ReplayGrant {
                    req_id: RequestId { client: 1, seq: 2 },
                    lrm: 5,
                    amount: 0.5,
                },
            },
            RequestFrame { corr: 5, replay_seq: None, req: WireRequest::Availability },
            RequestFrame { corr: 6, replay_seq: None, req: WireRequest::Stats },
        ];
        for f in frames {
            let bytes = f.encode();
            assert_eq!(RequestFrame::decode(&bytes).unwrap(), f);
        }
    }

    #[test]
    fn response_round_trips_full_error_taxonomy() {
        let errors = vec![
            GrmError::Sched(SchedError::InsufficientCapacity {
                requester: 1,
                capacity: 2.0,
                requested: 3.0,
                resource: None,
            }),
            GrmError::Sched(SchedError::InsufficientCapacity {
                requester: 1,
                capacity: 2.0,
                requested: 3.0,
                resource: Some("bandwidth"),
            }),
            GrmError::Sched(SchedError::Lp(LpError::Infeasible { residual: 1e-6 })),
            GrmError::Sched(SchedError::Lp(LpError::InvalidModel("nan coeff".into()))),
            GrmError::Sched(SchedError::Flow(FlowError::RowSumExceeded { row: 2, sum: 1.5 })),
            GrmError::Flow(FlowError::InvalidPartition { reason: "empty" }),
            GrmError::UnknownLrm(42),
            GrmError::Disconnected,
            GrmError::DeadlineExceeded { millis: 250 },
            GrmError::RetriesExhausted { attempts: 4 },
            GrmError::Unsupported("leave"),
            GrmError::ConnectionRefused,
            GrmError::ConnectionReset,
            GrmError::FrameDecode { detail: "bad tag".into() },
            GrmError::BadEndpoint { detail: "path too long".into() },
        ];
        for e in errors {
            let f = ResponseFrame { corr: 9, resp: WireResponse::Grant(Err(e.clone())) };
            let bytes = f.encode();
            let back = ResponseFrame::decode(&bytes).unwrap();
            assert_eq!(back, f, "error {e:?}");
        }
        let ok = ResponseFrame { corr: 1, resp: WireResponse::Grant(Ok(alloc())) };
        assert_eq!(ResponseFrame::decode(&ok.encode()).unwrap(), ok);
        let unit = ResponseFrame { corr: 2, resp: WireResponse::Unit(Ok(())) };
        assert_eq!(ResponseFrame::decode(&unit.encode()).unwrap(), unit);
        let avail =
            ResponseFrame { corr: 3, resp: WireResponse::Availability(vec![1.0, 0.0, 5.5]) };
        assert_eq!(ResponseFrame::decode(&avail.encode()).unwrap(), avail);
        let stats = ResponseFrame {
            corr: 4,
            resp: WireResponse::Stats(Box::new(GrmStats {
                requests: 10,
                granted: 8,
                granted_units: 12.25,
                ..GrmStats::default()
            })),
        };
        assert_eq!(ResponseFrame::decode(&stats.encode()).unwrap(), stats);
    }

    #[test]
    fn multi_messages_round_trip() {
        let frames = vec![
            RequestFrame {
                corr: 7,
                replay_seq: Some(12),
                req: WireRequest::RequestMulti {
                    lrm: 2,
                    amounts: vec![1.0, 0.5, -0.0],
                    req_id: Some(RequestId { client: 3, seq: 4 }),
                },
            },
            RequestFrame {
                corr: 8,
                replay_seq: None,
                req: WireRequest::ReportMulti { lrm: 1, available: vec![10.0, 6.0, 0.0] },
            },
            RequestFrame { corr: 9, replay_seq: None, req: WireRequest::AvailabilityMulti },
        ];
        for f in frames {
            assert_eq!(RequestFrame::decode(&f.encode()).unwrap(), f);
        }

        let multi = MultiAllocation { lanes: vec![alloc(), alloc()] };
        let grant = ResponseFrame { corr: 1, resp: WireResponse::GrantMulti(Ok(multi)) };
        assert_eq!(ResponseFrame::decode(&grant.encode()).unwrap(), grant);
        let rejected = ResponseFrame {
            corr: 2,
            resp: WireResponse::GrantMulti(Err(GrmError::Sched(
                SchedError::InsufficientCapacity {
                    requester: 1,
                    capacity: 0.25,
                    requested: 2.0,
                    resource: Some("bandwidth"),
                },
            ))),
        };
        assert_eq!(ResponseFrame::decode(&rejected.encode()).unwrap(), rejected);
        let lanes = ResponseFrame {
            corr: 3,
            resp: WireResponse::AvailabilityMulti(vec![vec![1.0, 2.0], vec![0.0, 0.5], vec![]]),
        };
        assert_eq!(ResponseFrame::decode(&lanes.encode()).unwrap(), lanes);
    }

    #[test]
    fn corrupt_multi_counts_do_not_allocate() {
        // A GrantMulti Ok whose lane count claims far more lanes than the
        // payload holds must fail the pre-allocation bound, not OOM.
        let mut w = Writer::new();
        w.u64(1); // corr
        w.u8(4); // GrantMulti
        w.u8(0); // Ok
        w.u32(u32::MAX); // absurd lane count
        assert!(matches!(
            ResponseFrame::decode(&w.into_bytes()),
            Err(GrmError::FrameDecode { .. })
        ));
    }

    #[test]
    fn decision_round_trips() {
        let ds = vec![
            RecordedDecision::Grant(Ok(alloc())),
            RecordedDecision::Grant(Err(GrmError::UnknownLrm(3))),
            RecordedDecision::Release(Ok(())),
            RecordedDecision::Replay(Err(GrmError::Sched(SchedError::InvalidRequest {
                amount: -1.0,
            }))),
            RecordedDecision::GrantMulti(Ok(MultiAllocation { lanes: vec![alloc()] })),
            RecordedDecision::GrantMulti(Err(GrmError::Unsupported("single-engine server"))),
        ];
        for d in ds {
            assert_eq!(decode_decision(&encode_decision(&d)).unwrap(), d);
        }
    }

    #[test]
    fn nan_and_signed_zero_survive_bit_identically() {
        let a = Allocation {
            requester: 0,
            amount: f64::NAN,
            draws: vec![-0.0, f64::INFINITY, f64::NEG_INFINITY],
            theta: f64::from_bits(0x7FF8_0000_0000_1234), // a payloaded NaN
        };
        let f = ResponseFrame { corr: 0, resp: WireResponse::Grant(Ok(a.clone())) };
        let back = ResponseFrame::decode(&f.encode()).unwrap();
        let WireResponse::Grant(Ok(b)) = back.resp else { panic!("wrong variant") };
        assert_eq!(b.amount.to_bits(), a.amount.to_bits());
        assert_eq!(b.theta.to_bits(), a.theta.to_bits());
        for (x, y) in b.draws.iter().zip(&a.draws) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn truncated_and_trailing_bytes_are_decode_errors() {
        let f = RequestFrame {
            corr: 1,
            replay_seq: None,
            req: WireRequest::Request { lrm: 0, amount: 1.0, req_id: None },
        };
        let bytes = f.encode();
        assert!(matches!(
            RequestFrame::decode(&bytes[..bytes.len() - 1]),
            Err(GrmError::FrameDecode { .. })
        ));
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(RequestFrame::decode(&extended), Err(GrmError::FrameDecode { .. })));
        assert!(matches!(RequestFrame::decode(&[]), Err(GrmError::FrameDecode { .. })));
    }
}
