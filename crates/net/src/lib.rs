//! Networked GRM federation: real sockets, durable state.
//!
//! The `agreements-grm` runtime speaks over in-process channels; this
//! crate puts the same protocol on a byte stream and the same agreement
//! state on disk, turning the thread federation into a service that
//! survives process death (ROADMAP open item 2):
//!
//! - [`frame`]: length-prefixed, CRC-checked binary framing with a
//!   resyncing streaming decoder — one corrupted frame costs one error,
//!   not the connection.
//! - [`wire`]: fixed little-endian codecs for every protocol message,
//!   carrying [`agreements_grm::RequestId`]s on the wire so the server's
//!   dedup window keeps working when "retry" means "resend bytes".
//! - [`journal`]: the durable agreement journal — append-only segment
//!   files with per-record CRC framing, configurable fsync policy,
//!   snapshot + compaction, and recovery that truncates a torn tail and
//!   rebuilds matrix, availability, dedup window, and replay cursor.
//! - [`listener`]: a daemon serving a `GrmServer` over Unix-domain or
//!   TCP sockets, journaling every decision *before* the reply leaves
//!   the process (write-ahead-of-reply: a crash can lose a decision only
//!   if no client ever saw it).
//! - [`client`]: [`client::NetGrmClient`], a socket transport
//!   implementing [`agreements_grm::GrmClient`] — the retry, backoff,
//!   and rebind machinery of `ResilientGrmClient` runs over it
//!   unchanged.
//! - [`proxy`]: a socket-level fault proxy driving the same seeded
//!   `FaultSchedule` as the in-process chaos plane, so drop / duplicate
//!   / delay / partition happen to real frames on a real connection.
//!
//! DESIGN.md §13 documents the wire format, the durability model, and
//! the recovery invariants; `tests/net_federation.rs` and the
//! `federation` binary in `agreements-experiments` exercise the whole
//! stack as separate processes, including kill-9 crash-recovery.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod journal;
pub mod listener;
pub mod proxy;
pub mod wire;

pub use client::NetGrmClient;
pub use frame::{FrameDecoder, FrameError, MAX_FRAME_LEN};
pub use journal::{
    DecisionBody, DurableJournal, FsyncPolicy, JournalRecord, RecoveredState, Snapshot,
    MAX_JOURNAL_FRAME_LEN,
};
pub use listener::{GrmListener, ListenerConfig};
pub use proxy::{FaultProxy, ProxyStats, ProxyUpstream};
pub use wire::{RequestFrame, ResponseFrame, WireRequest, WireResponse};

/// Usable bytes in `sockaddr_un.sun_path` (108 on Linux, minus the NUL).
/// Paths past this bind with an opaque `EINVAL`/`ENAMETOOLONG`; we check
/// up front and name the path and the limit instead.
pub const MAX_UDS_PATH: usize = 107;

/// Reject a Unix-socket path that exceeds the kernel's `sun_path` limit
/// with an error naming the path and the limit — nested tmp dirs in CI
/// hit this constantly and the raw bind error doesn't say why.
pub(crate) fn uds_path_check(path: &std::path::Path) -> std::io::Result<()> {
    let len = path.as_os_str().len();
    if len > MAX_UDS_PATH {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "unix socket path {} is {len} bytes, over the sun_path limit of {MAX_UDS_PATH}",
                path.display()
            ),
        ));
    }
    Ok(())
}
