//! Property coverage for the chaos plane the proxy draws from: fate
//! streams (including the Delay fate's microsecond parameter) are a
//! pure function of `(seed, link, mix)`, pure latency never reorders,
//! and the pump's hold/release order — the part that *can* reorder — is
//! identical across reruns of the same schedule.
//!
//! The simulation here mirrors `faulted_pump`'s structure exactly: one
//! fate per frame, hold via `HoldBuffer`, releases drained after every
//! arrival, final drain at connection close. The federation's
//! bit-for-bit replay check is the end-to-end version of the same
//! claim; this pins the primitive.

use agreements_faults::{Fate, FaultMix, FaultSchedule, HoldBuffer};
use proptest::prelude::*;

/// Replay the pump's delivery decisions for `len` frames and return the
/// delivered frame ids in order (duplicates appear twice, drops not at
/// all, holds where the buffer releases them).
fn pump_order(seed: u64, link: &str, mix: FaultMix, len: u64) -> Vec<u64> {
    let mut sched = FaultSchedule::new(seed, link, mix);
    let mut held: HoldBuffer<u64> = HoldBuffer::new();
    let mut out = Vec::new();
    for seq in 0..len {
        match sched.next_fate() {
            Fate::Drop => {}
            Fate::Duplicate => {
                out.push(seq);
                out.push(seq);
            }
            Fate::Hold { distance } => held.hold(seq, distance, seq),
            // Delay stalls the head of the line but forwards in place.
            Fate::Delay { .. } | Fate::Deliver => out.push(seq),
        }
        while let Some(m) = held.release_due(seq) {
            out.push(m);
        }
    }
    out.extend(held.drain());
    out
}

fn arb_mix() -> impl Strategy<Value = FaultMix> {
    (0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.3, 1u64..5, 0.0f64..0.5, 1u64..5_000).prop_map(
        |(drop, dup, hold, max_hold, delay, max_delay_us)| FaultMix {
            drop,
            dup,
            hold,
            max_hold,
            delay,
            max_delay_us,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same (seed, link, mix) ⇒ the same fate for every frame, down to
    /// the Delay fate's exact microsecond stall.
    #[test]
    fn fate_streams_are_a_pure_function_of_seed_link_and_mix(
        seed in any::<u64>(),
        mix in arb_mix(),
        len in 1usize..300,
    ) {
        let mut a = FaultSchedule::new(seed, "fed", mix);
        let mut b = FaultSchedule::new(seed, "fed", mix);
        for k in 0..len {
            prop_assert_eq!(a.next_fate(), b.next_fate(), "fate diverged at frame {}", k);
        }
    }

    /// A mix with `delay: 0.0` is bit-identical to the pre-Delay
    /// schedule regardless of `max_delay_us` — adding the knob cannot
    /// shift any existing seeded run.
    #[test]
    fn delay_probability_zero_never_shifts_the_schedule(
        seed in any::<u64>(),
        drop in 0.0f64..0.3,
        dup in 0.0f64..0.3,
        hold in 0.0f64..0.3,
        max_delay_us in 0u64..10_000,
        len in 1usize..300,
    ) {
        let base = FaultMix { drop, dup, hold, max_hold: 3, delay: 0.0, max_delay_us: 0 };
        let with_knob = FaultMix { max_delay_us, ..base };
        let mut a = FaultSchedule::new(seed, "fed", base);
        let mut b = FaultSchedule::new(seed, "fed", with_knob);
        for k in 0..len {
            prop_assert_eq!(a.next_fate(), b.next_fate(), "schedule shifted at frame {}", k);
        }
    }

    /// Pure injected latency is delivery-transparent: every frame
    /// arrives exactly once, in order — jitter without reordering.
    #[test]
    fn pure_latency_never_drops_duplicates_or_reorders(
        seed in any::<u64>(),
        max_delay_us in 1u64..10_000,
        len in 1u64..300,
    ) {
        let order = pump_order(seed, "lat", FaultMix::latency(max_delay_us), len);
        let want: Vec<u64> = (0..len).collect();
        prop_assert_eq!(order, want);
    }

    /// The pump's full delivery order — including where held groups
    /// release and how ties break — is identical across reruns, and a
    /// hostile mix still loses only what it explicitly dropped.
    #[test]
    fn held_groups_release_identically_across_reruns(
        seed in any::<u64>(),
        mix in arb_mix(),
        len in 1u64..300,
    ) {
        let first = pump_order(seed, "fed", mix, len);
        let second = pump_order(seed, "fed", mix, len);
        prop_assert_eq!(&first, &second, "rerun delivered a different order");
        // Every non-dropped frame is delivered (holds flush at close).
        let mut sched = FaultSchedule::new(seed, "fed", mix);
        let mut expected: Vec<u64> = Vec::new();
        for seq in 0..len {
            match sched.next_fate() {
                Fate::Drop => {}
                Fate::Duplicate => { expected.push(seq); expected.push(seq); }
                _ => expected.push(seq),
            }
        }
        let mut sorted = first;
        sorted.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(sorted, expected, "hold lost or invented a frame");
    }
}
