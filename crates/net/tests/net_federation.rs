//! End-to-end socket federation: a real `GrmListener` daemon on a
//! Unix-domain socket, driven by `NetGrmClient` — directly, through
//! `ResilientGrmClient`'s retry machinery, and through the seeded
//! chaos proxy — plus the restart-with-duplicate-RPC regression the
//! durable dedup window exists for.

use std::path::{Path, PathBuf};

use agreements_faults::FaultMix;
use agreements_flow::AgreementMatrix;
use agreements_grm::{GrmClient, GrmError, GrmServer, RequestId, ResilientGrmClient, RetryPolicy};
use agreements_net::journal::{DurableJournal, FsyncPolicy, Snapshot};
use agreements_net::listener::{GrmListener, ListenerConfig};
use agreements_net::proxy::FaultProxy;
use agreements_net::NetGrmClient;
use agreements_sched::Allocation;
use agreements_telemetry::Telemetry;

fn complete(n: usize, share: f64) -> AgreementMatrix {
    let mut m = AgreementMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                m.set(i, j, share).unwrap();
            }
        }
    }
    m
}

/// Scratch space under target/ — keeps sockets and journals inside the
/// repo tree (and UDS paths short).
fn scratch(tag: &str) -> PathBuf {
    let d =
        PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn fresh_snapshot(n: usize, pool: f64) -> Snapshot {
    Snapshot {
        matrix: complete(n, 0.5),
        level: 1,
        availability: vec![pool; n],
        next_seq: 0,
        dedup: Vec::new(),
    }
}

fn spawn_daemon(dir: &Path, sock: &Path, n: usize, pool: f64, sequenced: bool) -> GrmListener {
    let (journal, state) = DurableJournal::open_or_create(
        &dir.join("journal"),
        || fresh_snapshot(n, pool),
        FsyncPolicy::EveryOp,
        Telemetry::disabled(),
    )
    .unwrap();
    let server = state.respawn().unwrap();
    GrmListener::bind_uds(
        sock,
        server,
        journal,
        state,
        ListenerConfig { sequenced, compact_every: 0, ..ListenerConfig::default() },
    )
    .unwrap()
}

/// A deterministic interleaving of reports and requests: the same event
/// stream is driven through the in-process handle and through the
/// socket, and every decision must match bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Granted { amount_bits: u64, draw_bits: Vec<u64> },
    Denied(String),
}

fn workload(n: usize, events: usize) -> Vec<(usize, f64, bool)> {
    // (lrm, value, is_request); a small LCG keeps it dependency-free
    // and identical across both runs.
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(events);
    for k in 0..events {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let lrm = (x >> 33) as usize % n;
        let is_request = k % 3 != 0;
        let value = if is_request {
            1.0 + ((x >> 17) & 0x7) as f64 * 0.5
        } else {
            20.0 + ((x >> 21) & 0xF) as f64
        };
        out.push((lrm, value, is_request));
    }
    out
}

#[test]
fn socket_replay_matches_in_process_decisions() {
    let n = 4;
    let events = workload(n, 48);

    // --- In-process reference run ------------------------------------
    let reference = {
        let server = GrmServer::spawn(complete(n, 0.5), 1);
        let h = server.handle();
        for i in 0..n {
            h.report(i, 30.0).unwrap();
        }
        let mut outcomes = Vec::new();
        for (k, (lrm, value, is_request)) in events.iter().enumerate() {
            if *is_request {
                let id = RequestId { client: 1, seq: k as u64 };
                match h.request_idempotent(*lrm, *value, id) {
                    Ok(a) => outcomes.push(Outcome::Granted {
                        amount_bits: a.amount.to_bits(),
                        draw_bits: a.draws.iter().map(|d| d.to_bits()).collect(),
                    }),
                    Err(e) => outcomes.push(Outcome::Denied(e.to_string())),
                }
            } else {
                h.report(*lrm, *value).unwrap();
            }
        }
        let avail = h.availability().unwrap();
        server.shutdown();
        (outcomes, avail)
    };

    // --- Socket run, sequenced ---------------------------------------
    let dir = scratch("parity");
    let sock = dir.join("grm.sock");
    let daemon = spawn_daemon(&dir, &sock, n, 0.0, true);
    let client = NetGrmClient::uds(&sock);
    let mut seq = 0u64;
    for i in 0..n {
        client.report_seq(seq, i, 30.0).unwrap();
        seq += 1;
    }
    let mut outcomes = Vec::new();
    for (k, (lrm, value, is_request)) in events.iter().enumerate() {
        if *is_request {
            let id = RequestId { client: 1, seq: k as u64 };
            match client.request_seq(seq, *lrm, *value, id) {
                Ok(a) => outcomes.push(Outcome::Granted {
                    amount_bits: a.amount.to_bits(),
                    draw_bits: a.draws.iter().map(|d| d.to_bits()).collect(),
                }),
                Err(e) => outcomes.push(Outcome::Denied(e.to_string())),
            }
        } else {
            client.report_seq(seq, *lrm, *value).unwrap();
        }
        seq += 1;
    }
    let avail = client.availability().unwrap();
    daemon.shutdown();

    assert_eq!(outcomes, reference.0, "admit/deny + draws must match the in-process run");
    assert_eq!(
        avail.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        reference.1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "final availability must match bit-for-bit"
    );
}

#[test]
fn chaos_proxy_retries_never_double_grant() {
    let n = 2;
    let dir = scratch("chaos");
    let sock = dir.join("grm.sock");
    let daemon = spawn_daemon(&dir, &sock, n, 100.0, false);

    let proxy_sock = dir.join("proxy.sock");
    let proxy =
        FaultProxy::spawn_uds(&proxy_sock, &sock, 0xC4A05, "lrm0->grm", FaultMix::mixed()).unwrap();

    let net = NetGrmClient::uds(&proxy_sock);
    let resilient = ResilientGrmClient::new(net, 9, RetryPolicy::aggressive());

    let mut granted_units = 0.0f64;
    let mut granted_calls = 0u64;
    for _ in 0..40 {
        match resilient.request(0, 1.0) {
            Ok(a) => {
                granted_units += a.amount;
                granted_calls += 1;
            }
            Err(GrmError::RetriesExhausted { .. }) => {}
            Err(e) => panic!("unexpected terminal error under chaos: {e}"),
        }
    }
    // Quiesce: a blocking call on a direct connection drains everything
    // the proxy already let through.
    let direct = NetGrmClient::uds(&sock);
    let stats = direct.stats().unwrap();
    let avail = direct.availability().unwrap();

    // At-most-once: every unit the server handed out is accounted for by
    // pool conservation, regardless of drops, duplicates, or reorders.
    assert!(
        (avail.iter().sum::<f64>() - (2.0 * 100.0 - stats.granted_units)).abs() < 1e-6,
        "pool conservation under chaos: avail={avail:?} granted={}",
        stats.granted_units
    );
    // The client never observed more units than the server granted.
    assert!(granted_units <= stats.granted_units + 1e-9);
    assert!(granted_calls <= stats.granted, "more client grants than server executions");
    // The journal mirror tracked the server exactly.
    let mirror = daemon.mirror();
    for (m, s) in mirror.availability.iter().zip(&avail) {
        assert!((m - s).abs() < 1e-9, "journal mirror drifted from live availability");
    }
    let pstats = proxy.stats();
    assert!(pstats.delivered > 0, "proxy forwarded nothing — test is vacuous");
    proxy.shutdown();
    daemon.shutdown();
}

#[test]
fn duplicate_rpc_straddling_restart_replays_original_decision() {
    let n = 2;
    let dir = scratch("restart");
    let sock = dir.join("grm.sock");

    // --- First daemon lifetime: one grant, then a shutdown -----------
    let daemon = spawn_daemon(&dir, &sock, n, 50.0, false);
    let client = NetGrmClient::uds(&sock);
    let id = RequestId { client: 3, seq: 1 };
    let rx =
        client.issue_request(0, 4.0, Some(id)).map_err(|e| panic!("issue failed: {e}")).unwrap();
    let original: Allocation = rx.recv().unwrap().unwrap();
    let avail_before = client.availability().unwrap();
    daemon.shutdown();

    // --- Second daemon lifetime: same journal dir, same socket -------
    let daemon = spawn_daemon(&dir, &sock, n, 0.0, false);
    // The old connection died with the old daemon; the client
    // reconnects on demand. Resend the *same* RPC — a retry that
    // straddled the restart.
    client.disconnect();
    let rx = client.issue_request(0, 4.0, Some(id)).unwrap();
    let replayed = rx.recv().unwrap().unwrap();

    assert_eq!(replayed.amount.to_bits(), original.amount.to_bits());
    assert_eq!(
        replayed.draws.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        original.draws.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        "replayed decision must be bit-identical to the original"
    );
    let stats = daemon.handle().stats().unwrap();
    assert_eq!(stats.duplicate_requests, 1, "the retry must hit the recovered dedup window");
    assert_eq!(stats.granted, 0, "the retry must not execute a second grant");
    let avail_after = client.availability().unwrap();
    assert_eq!(
        avail_after.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        avail_before.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "pools must carry across the restart untouched by the replay"
    );
    daemon.shutdown();
}

#[test]
fn connection_errors_map_to_the_retry_taxonomy() {
    let dir = scratch("refused");
    let sock = dir.join("grm.sock");

    // No daemon: connect must refuse, retryably, until attempts run out.
    let net = NetGrmClient::uds(&sock);
    let resilient = ResilientGrmClient::new(net, 5, RetryPolicy::aggressive());
    match resilient.request(0, 1.0) {
        Err(GrmError::RetriesExhausted { attempts }) => {
            assert_eq!(attempts, RetryPolicy::aggressive().max_attempts);
        }
        other => panic!("expected RetriesExhausted against a dead daemon, got {other:?}"),
    }

    // Daemon comes up: the same client recovers with no rebind (connect
    // on demand), exactly like a channel client after a respawn.
    let daemon = spawn_daemon(&dir, &sock, 2, 10.0, false);
    let alloc = resilient.request(0, 1.0).unwrap();
    assert!(alloc.amount > 0.0);
    daemon.shutdown();
}

#[test]
fn partitioned_proxy_stalls_then_heals() {
    let n = 2;
    let dir = scratch("partition");
    let sock = dir.join("grm.sock");
    let daemon = spawn_daemon(&dir, &sock, n, 30.0, false);
    let proxy_sock = dir.join("proxy.sock");
    let proxy =
        FaultProxy::spawn_uds(&proxy_sock, &sock, 1, "lrm0->grm", FaultMix::none()).unwrap();
    let net = NetGrmClient::uds(&proxy_sock);
    let resilient = ResilientGrmClient::new(net, 2, RetryPolicy::aggressive());

    // Clean link: a request goes through.
    resilient.request(0, 1.0).unwrap();

    // Partitioned: every attempt times out; the call exhausts.
    proxy.partition();
    match resilient.request(0, 1.0) {
        Err(GrmError::RetriesExhausted { .. }) => {}
        other => panic!("expected exhaustion across a partition, got {other:?}"),
    }

    // Healed: traffic resumes on the same connection.
    proxy.heal_partition();
    resilient.request(0, 1.0).unwrap();
    assert!(proxy.stats().partitioned > 0, "partition swallowed nothing — test is vacuous");
    proxy.shutdown();
    daemon.shutdown();
}

/// A multi-resource daemon: a lane-per-resource snapshot with no
/// single-lane availability (multi pools are soft state the listener
/// never journals), respawned onto a `spawn_multi` engine.
fn spawn_multi_daemon(dir: &Path, sock: &Path) -> GrmListener {
    let snapshot = || Snapshot {
        matrix: complete(2, 0.5),
        level: 1,
        availability: Vec::new(),
        next_seq: 0,
        dedup: Vec::new(),
    };
    let (journal, state) = DurableJournal::open_or_create(
        &dir.join("journal"),
        snapshot,
        FsyncPolicy::EveryOp,
        Telemetry::disabled(),
    )
    .unwrap();
    let server = state
        .respawn_with(GrmServer::spawn_multi(
            vec!["cpu", "bandwidth"],
            state.matrix.clone(),
            state.level,
        ))
        .unwrap();
    GrmListener::bind_uds(
        sock,
        server,
        journal,
        state,
        ListenerConfig { sequenced: false, compact_every: 0, ..ListenerConfig::default() },
    )
    .unwrap()
}

/// End-to-end multi-resource enforcement over a real socket: grants
/// commit every lane, a bandwidth-bound rejection names bandwidth on
/// the client side of the wire, single-resource calls are refused, and
/// a retry straddling a daemon restart replays the journaled decision
/// bit-for-bit instead of double-granting.
#[test]
fn multi_resource_rpcs_over_the_socket_and_across_a_restart() {
    use agreements_sched::SchedError;

    let dir = scratch("multi");
    let sock = dir.join("grm.sock");
    let daemon = spawn_multi_daemon(&dir, &sock);
    let net = NetGrmClient::uds(&sock);

    net.report_multi(0, vec![10.0, 3.0]).unwrap();
    net.report_multi(1, vec![10.0, 3.0]).unwrap();
    let id = RequestId { client: 42, seq: 0 };
    let granted = net.request_multi_idempotent(0, &[2.0, 1.0], id).unwrap();
    assert_eq!(granted.lanes.len(), 2);
    assert!((granted.total() - 3.0).abs() < 1e-9);
    let lanes = net.availability_multi().unwrap();
    assert!((lanes[0].iter().sum::<f64>() - 18.0).abs() < 1e-9, "cpu pool down by 2");
    assert!((lanes[1].iter().sum::<f64>() - 5.0).abs() < 1e-9, "bandwidth pool down by 1");

    // The binding resource survives the wire round-trip by name.
    match net.request_multi(0, &[1.0, 50.0]) {
        Err(GrmError::Sched(SchedError::InsufficientCapacity { resource: Some(name), .. })) => {
            assert_eq!(name, "bandwidth")
        }
        other => panic!("expected a bandwidth-bound rejection, got {other:?}"),
    }
    // Cross-engine guard holds across the socket too.
    match net.issue_request(0, 1.0, None).unwrap().recv().unwrap() {
        Err(GrmError::Unsupported(_)) => {}
        other => panic!("expected Unsupported for a single-resource call, got {other:?}"),
    }

    daemon.shutdown();

    // Restart from the journal: the grant decision was journaled
    // write-ahead, so the recovered dedup window replays it for the
    // retry even though the fresh engine's pools are empty (multi
    // reports are soft state and deliberately not journaled).
    let daemon = spawn_multi_daemon(&dir, &sock);
    net.disconnect();
    let replayed = net.request_multi_idempotent(0, &[2.0, 1.0], id).unwrap();
    for (a, b) in replayed.lanes.iter().zip(&granted.lanes) {
        assert_eq!(a.amount.to_bits(), b.amount.to_bits(), "replay must be bit-identical");
        for (x, y) in a.draws.iter().zip(&b.draws) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    let lanes = net.availability_multi().unwrap();
    assert!(
        lanes.iter().all(|lane| lane.iter().all(|&v| v == 0.0)),
        "the replayed grant must not touch the fresh pools: {lanes:?}"
    );
    daemon.shutdown();
}
