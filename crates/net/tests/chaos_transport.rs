//! The hostile-transport battery: RPC deadlines against a stalled-open
//! peer, a full in-flight window whose replies all vanish, and a TCP
//! daemon restart behind the address-file-resolving fault proxy.
//!
//! These are the client-side halves of the chaos story: the federation
//! harness proves end-to-end settlement under a hostile link, and these
//! tests pin the primitives it leans on — a pending RPC must *fail
//! retryably* (deadline sweep or connection teardown), never block
//! forever, and a proxy fronting a respawned TCP daemon must re-resolve
//! its published address instead of dialing a dead port.

use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use agreements_faults::FaultMix;
use agreements_flow::AgreementMatrix;
use agreements_grm::{GrmClient, GrmError, RequestId, ResilientGrmClient, RetryPolicy};
use agreements_net::journal::{DurableJournal, FsyncPolicy, Snapshot};
use agreements_net::listener::{GrmListener, ListenerConfig};
use agreements_net::{FaultProxy, NetGrmClient, ProxyUpstream};
use agreements_telemetry::Telemetry;

fn complete(n: usize, share: f64) -> AgreementMatrix {
    let mut m = AgreementMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                m.set(i, j, share).unwrap();
            }
        }
    }
    m
}

fn scratch(tag: &str) -> PathBuf {
    let d =
        PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn fresh_snapshot(n: usize, pool: f64) -> Snapshot {
    Snapshot {
        matrix: complete(n, 0.5),
        level: 1,
        availability: vec![pool; n],
        next_seq: 0,
        dedup: Vec::new(),
    }
}

fn spawn_uds_daemon(dir: &Path, sock: &Path, n: usize, pool: f64) -> GrmListener {
    let (journal, state) = DurableJournal::open_or_create(
        &dir.join("journal"),
        move || fresh_snapshot(n, pool),
        FsyncPolicy::EveryOp,
        Telemetry::disabled(),
    )
    .unwrap();
    let server = state.respawn().unwrap();
    GrmListener::bind_uds(sock, server, journal, state, ListenerConfig::default()).unwrap()
}

/// Bind a TCP daemon on an ephemeral port and publish the address the
/// way the federation harness does: tmp + rename, so the proxy's
/// per-connection re-read never sees a half-written file.
fn spawn_tcp_daemon(dir: &Path, n: usize, pool: f64) -> GrmListener {
    let (journal, state) = DurableJournal::open_or_create(
        &dir.join("journal"),
        move || fresh_snapshot(n, pool),
        FsyncPolicy::EveryOp,
        Telemetry::disabled(),
    )
    .unwrap();
    let server = state.respawn().unwrap();
    let l = GrmListener::bind_tcp("127.0.0.1:0", server, journal, state, ListenerConfig::default())
        .unwrap();
    let addr = l.tcp_addr().unwrap();
    let tmp = dir.join("daemon.addr.tmp");
    fs::write(&tmp, addr.to_string()).unwrap();
    fs::rename(&tmp, dir.join("daemon.addr")).unwrap();
    l
}

/// Regression for the stalled-open-peer hang: a peer that accepts the
/// connection and reads requests but never replies used to park the
/// RPC forever (no socket timeouts, no pending deadline). Now the
/// client's sweeper must fail the call with a retryable
/// `DeadlineExceeded` shortly after the configured deadline.
#[test]
fn stalling_peer_hits_the_rpc_deadline_instead_of_hanging() {
    let dir = scratch("stall");
    let sock = dir.join("stall.sock");
    let listener = std::os::unix::net::UnixListener::bind(&sock).unwrap();
    let stall = std::thread::spawn(move || {
        if let Ok((mut conn, _)) = listener.accept() {
            conn.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
            let mut buf = [0u8; 4096];
            let deadline = Instant::now() + Duration::from_secs(10);
            while Instant::now() < deadline {
                match conn.read(&mut buf) {
                    Ok(0) => break, // client hung up: done stalling
                    Ok(_) => {}     // swallow the request, never reply
                    Err(_) => {}    // poll timeout: keep the line open
                }
            }
        }
    });

    let client = NetGrmClient::uds(&sock).with_rpc_deadline(Duration::from_millis(200));
    let start = Instant::now();
    let err = client.availability().expect_err("a stalled peer must not produce a decision");
    let elapsed = start.elapsed();
    assert!(
        matches!(err, GrmError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded from the sweeper, got {err:?}"
    );
    assert!(err.is_retryable(), "a deadline is a transport failure, not a settlement");
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline fired far too late ({elapsed:?}) — the sweeper is not running"
    );
    client.disconnect();
    stall.join().unwrap();
}

/// A full window of pending async replies, every reply eaten by the
/// proxy: each pending must resolve retryably via the deadline sweep
/// (not block), a pending issued just before a generation bump must die
/// with the connection, and after the link heals the same `RequestId`s
/// must settle exactly once via dedup replay.
#[test]
fn full_window_of_pending_replies_errors_out_under_reply_loss() {
    let n = 2;
    let dir = scratch("reply-loss");
    let sock = dir.join("grm.sock");
    let daemon = spawn_uds_daemon(&dir, &sock, n, 100.0);
    let proxy_sock = dir.join("proxy.sock");
    // Forward direction clean — the daemon executes everything — but
    // every reply frame vanishes.
    let reply_black_hole = FaultMix { drop: 1.0, ..FaultMix::none() };
    let proxy = FaultProxy::spawn_uds_bidir(
        &proxy_sock,
        &sock,
        42,
        "storm",
        FaultMix::none(),
        reply_black_hole,
    )
    .unwrap();

    let client = NetGrmClient::uds(&proxy_sock).with_rpc_deadline(Duration::from_millis(150));
    let window = 8u64;
    let rxs: Vec<_> = (0..window)
        .map(|k| client.issue_request(0, 0.5, Some(RequestId { client: 9, seq: k })).unwrap())
        .collect();
    let start = Instant::now();
    for (k, rx) in rxs.iter().enumerate() {
        let r = rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap_or_else(|_| panic!("pending {k} blocked past its deadline"));
        let e = r.expect_err("the reply was dropped; the pending must fail, not settle");
        assert!(e.is_retryable(), "pending {k} failed non-retryably: {e}");
    }
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "the sweep took {:?} for a {window}-deep window of 150ms deadlines",
        start.elapsed()
    );

    // Generation bump mid-window: a freshly issued pending must error
    // out with the torn-down connection, well before its deadline.
    let rx = client.issue_request(0, 0.5, Some(RequestId { client: 9, seq: 99 })).unwrap();
    client.disconnect();
    let e = rx
        .recv_timeout(Duration::from_secs(1))
        .expect("teardown must fail the pending, not strand it")
        .expect_err("the connection died; the pending cannot have settled");
    assert!(e.is_retryable(), "teardown error must be retryable: {e}");

    // The link heals; the same ids retry and settle exactly once each.
    proxy.heal();
    for k in 0..window {
        let rx = client.issue_request(0, 0.5, Some(RequestId { client: 9, seq: k })).unwrap();
        rx.recv().unwrap().unwrap_or_else(|e| panic!("healed retry {k} failed: {e}"));
    }
    let rx = client.issue_request(0, 0.5, Some(RequestId { client: 9, seq: 99 })).unwrap();
    rx.recv().unwrap().unwrap();

    let direct = NetGrmClient::uds(&sock);
    let stats = direct.stats().unwrap();
    let avail = direct.availability().unwrap();
    assert_eq!(stats.granted, 9, "nine distinct ids, each granted exactly once");
    assert!(
        stats.duplicate_requests >= window,
        "the healed retries must replay from the dedup window, got {}",
        stats.duplicate_requests
    );
    assert!(
        (avail.iter().sum::<f64>() - (2.0 * 100.0 - stats.granted_units)).abs() < 1e-6,
        "pool conservation under reply loss: avail={avail:?} granted={}",
        stats.granted_units
    );
    proxy.shutdown();
    daemon.shutdown();
}

/// Chaotic TCP end to end, plus the respawn story: the daemon restarts
/// on a *different* ephemeral port, republished via the address file,
/// and the proxy's per-connection re-resolution carries the same client
/// across the restart with at-most-once settlement intact.
#[test]
fn tcp_chaos_survives_a_daemon_restart_behind_the_address_file() {
    let n = 2;
    let dir = scratch("tcp-chaos");
    let daemon = spawn_tcp_daemon(&dir, n, 100.0);
    let first_addr = daemon.tcp_addr().unwrap();
    let fwd = FaultMix { drop: 0.1, dup: 0.1, hold: 0.1, max_hold: 2, ..FaultMix::none() }
        .with_latency(0.3, 300);
    let rep = FaultMix { drop: 0.08, dup: 0.08, hold: 0.08, max_hold: 2, ..FaultMix::none() }
        .with_latency(0.3, 300);
    let proxy = FaultProxy::spawn_tcp(
        "127.0.0.1:0",
        ProxyUpstream::TcpAddrFile(dir.join("daemon.addr")),
        0xFEED,
        "tcp-chaos",
        fwd,
        rep,
    )
    .unwrap();
    let proxy_addr = proxy.local_addr().unwrap().to_string();
    let net = NetGrmClient::tcp(&proxy_addr).with_rpc_deadline(Duration::from_millis(150));
    let resilient = ResilientGrmClient::new(net, 13, RetryPolicy::aggressive());

    let mut client_granted = 0.0f64;
    let mut drive = |calls: usize| {
        for _ in 0..calls {
            match resilient.request(0, 1.0) {
                Ok(a) => client_granted += a.amount,
                Err(GrmError::RetriesExhausted { .. }) => {}
                Err(e) => panic!("unexpected terminal error under TCP chaos: {e}"),
            }
        }
    };
    drive(20);

    // Restart: new port, same journal, address file republished.
    daemon.shutdown();
    let daemon = spawn_tcp_daemon(&dir, n, 0.0);
    assert_ne!(
        daemon.tcp_addr().unwrap(),
        first_addr,
        "the respawn must land on a fresh ephemeral port for re-resolution to be exercised"
    );
    drive(20);

    // Quiesce the chaos, then audit through the daemon's *new* address.
    proxy.heal();
    let direct = NetGrmClient::tcp(&daemon.tcp_addr().unwrap().to_string());
    let avail = direct.availability().unwrap();
    // The client never observed more units than the pools gave up
    // (grants it never saw the reply for are the server's to keep).
    assert!(
        avail.iter().sum::<f64>() <= 2.0 * 100.0 - client_granted + 1e-6,
        "client observed more grants than the pools lost: avail={avail:?} \
         client_granted={client_granted}"
    );
    // The journal mirror tracked the live state across chaos + restart.
    let mirror = daemon.mirror();
    for (m, s) in mirror.availability.iter().zip(&avail) {
        assert!((m - s).abs() < 1e-9, "journal mirror drifted from live availability");
    }
    let pstats = proxy.stats();
    assert!(pstats.delivered > 0, "proxy forwarded nothing — test is vacuous");
    assert!(
        pstats.dropped + pstats.duplicated + pstats.held + pstats.delayed > 0,
        "chaos injected nothing — test is vacuous"
    );
    proxy.shutdown();
    daemon.shutdown();
}
