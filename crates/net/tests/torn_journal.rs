//! Exhaustive torn-write recovery: truncate the journal at **every byte
//! offset** of its final record and prove recovery always lands on
//! exactly the surviving prefix — never a crash, never a phantom
//! operation, never a lost one.
//!
//! This is the property the write-ahead-of-reply rule leans on: a crash
//! mid-append can leave any prefix of the final record's bytes on disk,
//! and whatever that prefix is, recovery must behave as if the append
//! never started. The final record here is a successful grant — the
//! worst case, because replaying a half-written grant (or inventing one
//! from torn bytes) would corrupt the pools *and* the dedup window.

use std::fs;
use std::path::{Path, PathBuf};

use agreements_faults::{Fate, FaultMix, FaultSchedule};
use agreements_flow::AgreementMatrix;
use agreements_grm::RequestId;
use agreements_net::frame::FRAME_OVERHEAD;
use agreements_net::journal::{
    DecisionBody, DurableJournal, FsyncPolicy, JournalRecord, RecoveredState, Snapshot,
};
use agreements_sched::Allocation;
use agreements_telemetry::Telemetry;
use proptest::prelude::*;

fn complete(n: usize, share: f64) -> AgreementMatrix {
    let mut m = AgreementMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                m.set(i, j, share).unwrap();
            }
        }
    }
    m
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("agreements-torn-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Field-by-field equality that treats the matrix structurally and the
/// floats exactly (both sides fold the identical op sequence, so even
/// rounding must agree bit-for-bit).
fn assert_states_equal(got: &RecoveredState, want: &RecoveredState, ctx: &str) {
    assert_eq!(got.matrix.n(), want.matrix.n(), "{ctx}: matrix size");
    for i in 0..want.matrix.n() {
        for j in 0..want.matrix.n() {
            assert_eq!(
                got.matrix.get(i, j).to_bits(),
                want.matrix.get(i, j).to_bits(),
                "{ctx}: matrix[{i}][{j}]"
            );
        }
    }
    assert_eq!(got.availability.len(), want.availability.len(), "{ctx}: availability len");
    for (k, (g, w)) in got.availability.iter().zip(&want.availability).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: availability[{k}]");
    }
    assert_eq!(got.next_seq, want.next_seq, "{ctx}: next_seq");
    assert_eq!(got.dedup, want.dedup, "{ctx}: dedup window");
    assert_eq!(got.records, want.records, "{ctx}: record count");
}

#[test]
fn recovery_from_every_byte_offset_of_the_final_record() {
    // --- Build a reference journal -----------------------------------
    let snap = Snapshot {
        matrix: complete(3, 0.4),
        level: 1,
        availability: vec![10.0, 10.0, 10.0],
        next_seq: 0,
        dedup: Vec::new(),
    };
    let records: Vec<JournalRecord> = vec![
        JournalRecord::Report { seq: Some(0), lrm: 0, available: 6.0 },
        JournalRecord::AgreementSet { from: 0, to: 1, share: 0.8 },
        JournalRecord::Decision {
            seq: Some(1),
            id: Some(RequestId { client: 7, seq: 1 }),
            body: DecisionBody::Release { draws: vec![0.0, 1.5, 0.0], result: Ok(()) },
        },
        // The final record, the one the tear hits: a successful grant.
        JournalRecord::Decision {
            seq: Some(2),
            id: Some(RequestId { client: 7, seq: 2 }),
            body: DecisionBody::Grant(Ok(Allocation {
                requester: 1,
                amount: 4.0,
                draws: vec![1.0, 2.0, 1.0],
                theta: 0.75,
            })),
        },
    ];
    let master = scratch("master");
    let mut j = DurableJournal::create(&master, &snap, FsyncPolicy::EveryOp, Telemetry::disabled())
        .unwrap();
    for rec in &records {
        j.append(rec).unwrap();
    }
    drop(j);

    let seg = master.join("segment-000000.log");
    let full = fs::read(&seg).unwrap();
    let final_len = FRAME_OVERHEAD + records.last().unwrap().encode().len();
    let prefix_end = full.len() - final_len;

    // The state recovery must produce for any tear inside the final
    // record: snapshot + all records but the last.
    let mut want_prefix = RecoveredState::from_snapshot(&snap);
    for rec in &records[..records.len() - 1] {
        want_prefix.apply(rec);
    }
    // And for the untorn file: everything.
    let mut want_full = want_prefix.clone();
    want_full.apply(records.last().unwrap());

    // --- Tear at every byte offset of the final record ---------------
    let dir = scratch("cut");
    for cut in prefix_end..=full.len() {
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("segment-000000.log"), &full[..cut]).unwrap();

        let (mut journal, state) =
            DurableJournal::open(&dir, FsyncPolicy::EveryOp, Telemetry::disabled())
                .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let torn = cut < full.len();
        let want = if torn { &want_prefix } else { &want_full };
        assert_states_equal(&state, want, &format!("cut at byte {cut}"));
        assert_eq!(
            state.truncated_bytes,
            (cut - prefix_end) as u64 * torn as u64,
            "cut at byte {cut}: truncated tail size"
        );

        // The journal must keep working where the truncation left off:
        // re-append the lost record and recover the full state.
        if torn {
            journal.append(records.last().unwrap()).unwrap();
            drop(journal);
            let (_, healed) =
                DurableJournal::open(&dir, FsyncPolicy::EveryOp, Telemetry::disabled()).unwrap();
            assert_states_equal(&healed, &want_full, &format!("re-append after cut {cut}"));
        }
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&master);
}

#[test]
fn recovery_never_invents_a_decision_from_torn_bytes() {
    // A torn grant must not reach the dedup window: a client retrying
    // the granted request after recovery must see a *fresh* execution,
    // not a replay of a half-written record.
    let snap = Snapshot {
        matrix: complete(2, 0.5),
        level: 1,
        availability: vec![8.0, 8.0],
        next_seq: 0,
        dedup: Vec::new(),
    };
    let id = RequestId { client: 3, seq: 9 };
    let grant = JournalRecord::Decision {
        seq: None,
        id: Some(id),
        body: DecisionBody::Grant(Ok(Allocation {
            requester: 0,
            amount: 2.0,
            draws: vec![2.0, 0.0],
            theta: 1.0,
        })),
    };
    let dir = scratch("phantom");
    let mut j =
        DurableJournal::create(&dir, &snap, FsyncPolicy::EveryOp, Telemetry::disabled()).unwrap();
    j.append(&grant).unwrap();
    drop(j);

    // Tear off the grant's last byte, recover, respawn.
    let seg = dir.join("segment-000000.log");
    let full = fs::read(&seg).unwrap();
    fs::write(&seg, &full[..full.len() - 1]).unwrap();
    let (_, state) =
        DurableJournal::open(&dir, FsyncPolicy::EveryOp, Telemetry::disabled()).unwrap();
    assert!(state.dedup.is_empty(), "torn grant must not seed the dedup window");
    let server = state.respawn().unwrap();
    let h = server.handle();
    // The retry executes fresh (it was never acknowledged), drawing real
    // units from the recovered pools.
    let alloc = h.request_idempotent(0, 2.0, id).unwrap();
    assert!((alloc.amount - 2.0).abs() < 1e-12);
    let avail = h.availability().unwrap();
    assert!(
        (avail.iter().sum::<f64>() - (16.0 - alloc.amount)).abs() < 1e-9,
        "pool conservation: 16 total minus the one real grant"
    );
    let stats = h.stats().unwrap();
    assert_eq!(stats.duplicate_requests, 0, "fresh execution, not a dedup replay");
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Group commit (FsyncPolicy::Batched + append_wal)
// ---------------------------------------------------------------------

/// Kill-9 (as opposed to power loss) preserves the page cache, so the
/// whole appended tail survives — including records whose covering
/// fsync had not yet run, and whose replies were therefore never
/// released. Those *unacked* decisions must still rebuild the dedup
/// window: the client never saw the reply and will retry the same
/// `RequestId`, and the retry must replay the original decision instead
/// of double-granting.
#[test]
fn unacked_group_commit_records_rebuild_the_dedup_window() {
    let snap = Snapshot {
        matrix: complete(2, 0.5),
        level: 1,
        availability: vec![8.0, 8.0],
        next_seq: 0,
        dedup: Vec::new(),
    };
    let id = RequestId { client: 11, seq: 1 };
    let grant = JournalRecord::Decision {
        seq: None,
        id: Some(id),
        body: DecisionBody::Grant(Ok(Allocation {
            requester: 0,
            amount: 3.0,
            draws: vec![3.0, 0.0],
            theta: 1.0,
        })),
    };
    let dir = scratch("unacked");
    let mut j = DurableJournal::create(
        &dir,
        &snap,
        FsyncPolicy::Batched { max_pending: 64 },
        Telemetry::disabled(),
    )
    .unwrap();
    // Write-ahead append, NO covering sync: the decision is appended
    // but its reply is still gated when the kill lands.
    let lsn = j.append_wal(&grant).unwrap();
    assert!(j.synced_lsn() < lsn, "covering fsync must still be outstanding");
    drop(j); // kill-9: the file content (page cache) survives as written

    let (_, state) =
        DurableJournal::open(&dir, FsyncPolicy::Batched { max_pending: 64 }, Telemetry::disabled())
            .unwrap();
    assert_eq!(state.dedup.len(), 1, "unacked decision must seed the dedup window");
    let server = state.respawn().unwrap();
    let h = server.handle();
    // The client retry replays the original decision — same draws, no
    // second debit.
    let alloc = h.request_idempotent(0, 3.0, id).unwrap();
    assert_eq!(alloc.amount.to_bits(), 3.0f64.to_bits());
    let avail = h.availability().unwrap();
    assert_eq!(avail[0].to_bits(), 5.0f64.to_bits(), "pool debited exactly once");
    assert_eq!(h.stats().unwrap().duplicate_requests, 1, "retry answered from the window");
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Build `total` grant decisions, group-commit style: every record goes
/// in via `append_wal`, with one explicit `sync()` barrier after the
/// first `synced` records (the covering fsync of the first group).
/// Returns the segment bytes plus the file length after each record.
fn grouped_journal(dir: &Path, snap: &Snapshot, ids: &[RequestId], synced: usize) -> Vec<u64> {
    let mut j = DurableJournal::create(
        dir,
        snap,
        FsyncPolicy::Batched { max_pending: usize::MAX },
        Telemetry::disabled(),
    )
    .unwrap();
    let seg = dir.join("segment-000000.log");
    // The snapshot written by `create` consumed the first LSN; WAL
    // records count densely from there.
    let base = j.appended_lsn();
    let mut len_after = Vec::with_capacity(ids.len() + 1);
    len_after.push(fs::metadata(&seg).unwrap().len());
    for (i, id) in ids.iter().enumerate() {
        let rec = JournalRecord::Decision {
            seq: None,
            id: Some(*id),
            body: DecisionBody::Grant(Ok(Allocation {
                requester: 0,
                amount: 0.25,
                draws: vec![0.25, 0.0, 0.0],
                theta: 1.0,
            })),
        };
        let lsn = j.append_wal(&rec).unwrap();
        assert_eq!(lsn, base + i as u64 + 1, "append_wal LSNs are dense");
        if i + 1 == synced {
            j.sync().unwrap();
            assert_eq!(j.synced_lsn(), lsn, "sync advances the watermark");
        }
        len_after.push(fs::metadata(&seg).unwrap().len());
    }
    assert_eq!(j.appended_lsn(), base + ids.len() as u64);
    len_after
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Power loss at an arbitrary point between append and covering
    /// fsync: any byte cut at or beyond the synced prefix must (a) lose
    /// at most the unsynced loss window — never a synced record — and
    /// (b) never double-grant: every surviving decision replays from
    /// the dedup window on retry, every lost one re-executes freshly,
    /// and the pools balance either way.
    #[test]
    fn group_commit_loss_window_is_bounded_and_grants_never_double(
        total in 1usize..14,
        synced_frac in 0.0f64..=1.0,
        cut_frac in 0.0f64..=1.0,
    ) {
        let synced = (synced_frac * total as f64).round() as usize;
        let snap = Snapshot {
            matrix: complete(3, 0.5),
            level: 1,
            availability: vec![16.0, 16.0, 16.0],
            next_seq: 0,
            dedup: Vec::new(),
        };
        let ids: Vec<RequestId> =
            (0..total).map(|i| RequestId { client: 21, seq: i as u64 }).collect();
        let dir = scratch(&format!("group-{total}-{synced}"));
        let len_after = grouped_journal(&dir, &snap, &ids, synced);

        // The kill can truncate anywhere at or after the synced prefix
        // (fsync'd bytes are stable by definition).
        let seg = dir.join("segment-000000.log");
        let lo = len_after[synced];
        let hi = len_after[total];
        let cut = lo + ((hi - lo) as f64 * cut_frac) as u64;
        let full = fs::read(&seg).unwrap();
        fs::write(&seg, &full[..cut as usize]).unwrap();

        let (_, state) = DurableJournal::open(
            &dir,
            FsyncPolicy::Batched { max_pending: usize::MAX },
            Telemetry::disabled(),
        )
        .unwrap();
        // (a) Bounded loss: exactly the complete records within the cut
        // survive — at least the synced prefix, never a phantom.
        let survived = len_after.iter().filter(|&&l| l <= cut).count() - 1;
        prop_assert!(survived >= synced, "synced prefix lost: {survived} < {synced}");
        prop_assert!(survived <= total);
        prop_assert_eq!(state.dedup.len(), survived, "dedup window == surviving decisions");

        // (b) Never double-grant: retry every id against the respawned
        // server.
        let server = state.respawn().unwrap();
        let h = server.handle();
        for id in &ids {
            let alloc = h.request_idempotent(0, 0.25, *id).unwrap();
            prop_assert_eq!(alloc.amount.to_bits(), 0.25f64.to_bits());
        }
        let stats = h.stats().unwrap();
        prop_assert_eq!(stats.duplicate_requests, survived as u64, "survivors replay");
        let avail = h.availability().unwrap();
        let want = 48.0 - 0.25 * total as f64;
        prop_assert!(
            (avail.iter().sum::<f64>() - want).abs() < 1e-9,
            "each grant debited exactly once: {} vs {}",
            avail.iter().sum::<f64>(),
            want
        );
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    /// The same loss bound on the latency-injected batched-fsync path:
    /// under a jittered link the hold timer — not the group fill —
    /// paces the syncer, so covering fsyncs land at arrival-jitter-
    /// determined points scattered through the stream rather than at
    /// one clean barrier. Derive those sync points from a seeded Delay
    /// schedule (a frame stalling past half the latency cap models the
    /// hold timer firing), and prove that wherever they land, a cut at
    /// or beyond the *last* synced byte loses at most the tail behind
    /// it — and retries still never double-grant.
    #[test]
    fn latency_jittered_sync_points_keep_the_loss_window_bounded(
        total in 1usize..14,
        seed in proptest::prelude::any::<u64>(),
        cut_frac in 0.0f64..=1.0,
    ) {
        let mut jitter =
            FaultSchedule::new(seed, "fsync-jitter", FaultMix::none().with_latency(0.6, 1_000));
        let sync_after: Vec<bool> = (0..total)
            .map(|_| matches!(jitter.next_fate(), Fate::Delay { micros } if micros > 500))
            .collect();

        let snap = Snapshot {
            matrix: complete(3, 0.5),
            level: 1,
            availability: vec![16.0, 16.0, 16.0],
            next_seq: 0,
            dedup: Vec::new(),
        };
        let ids: Vec<RequestId> =
            (0..total).map(|i| RequestId { client: 23, seq: i as u64 }).collect();
        let dir = scratch(&format!("jitter-{total}"));
        let _ = fs::remove_dir_all(&dir);
        let mut j = DurableJournal::create(
            &dir,
            &snap,
            FsyncPolicy::Batched { max_pending: usize::MAX },
            Telemetry::disabled(),
        )
        .unwrap();
        let seg = dir.join("segment-000000.log");
        let mut len_after = vec![fs::metadata(&seg).unwrap().len()];
        let mut last_synced = 0usize;
        for (i, id) in ids.iter().enumerate() {
            let rec = JournalRecord::Decision {
                seq: None,
                id: Some(*id),
                body: DecisionBody::Grant(Ok(Allocation {
                    requester: 0,
                    amount: 0.25,
                    draws: vec![0.25, 0.0, 0.0],
                    theta: 1.0,
                })),
            };
            let lsn = j.append_wal(&rec).unwrap();
            if sync_after[i] {
                j.sync().unwrap();
                prop_assert_eq!(j.synced_lsn(), lsn, "sync advances the watermark");
                last_synced = i + 1;
            }
            len_after.push(fs::metadata(&seg).unwrap().len());
        }
        drop(j);

        // Cut anywhere at or beyond the last jitter-driven fsync.
        let lo = len_after[last_synced];
        let hi = len_after[total];
        let cut = lo + ((hi - lo) as f64 * cut_frac) as u64;
        let full = fs::read(&seg).unwrap();
        fs::write(&seg, &full[..cut as usize]).unwrap();

        let (_, state) = DurableJournal::open(
            &dir,
            FsyncPolicy::Batched { max_pending: usize::MAX },
            Telemetry::disabled(),
        )
        .unwrap();
        let survived = len_after.iter().filter(|&&l| l <= cut).count() - 1;
        prop_assert!(
            survived >= last_synced,
            "a jitter-paced fsync was lost: {survived} < {last_synced}"
        );
        prop_assert_eq!(state.dedup.len(), survived, "dedup window == surviving decisions");

        let server = state.respawn().unwrap();
        let h = server.handle();
        for id in &ids {
            let alloc = h.request_idempotent(0, 0.25, *id).unwrap();
            prop_assert_eq!(alloc.amount.to_bits(), 0.25f64.to_bits());
        }
        let stats = h.stats().unwrap();
        prop_assert_eq!(stats.duplicate_requests, survived as u64, "survivors replay");
        let avail = h.availability().unwrap();
        let want = 48.0 - 0.25 * total as f64;
        prop_assert!(
            (avail.iter().sum::<f64>() - want).abs() < 1e-9,
            "each grant debited exactly once: {} vs {}",
            avail.iter().sum::<f64>(),
            want
        );
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }
}
