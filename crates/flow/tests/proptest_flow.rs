//! Property tests on transitive-flow and capacity invariants.

// Index-based loops keep the matrix algebra legible in these tests.
#![allow(clippy::needless_range_loop)]

use agreements_flow::{capacities, AgreementMatrix, TransitiveFlow, TransitiveOptions};
use proptest::prelude::*;

/// Random agreement matrix with row sums ≤ 1 (basic model).
fn arb_matrix() -> impl Strategy<Value = AgreementMatrix> {
    (2usize..=6).prop_flat_map(|n| {
        proptest::collection::vec(0u32..=30, n * n).prop_map(move |raw| {
            let mut s = AgreementMatrix::zeros(n);
            for i in 0..n {
                let row = &raw[i * n..(i + 1) * n];
                let total: u32 =
                    row.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &v)| v).sum();
                if total == 0 {
                    continue;
                }
                // Normalize into [0, 0.95] total.
                let scale = 0.95 / total.max(30) as f64;
                for j in 0..n {
                    if i != j && row[j] > 0 {
                        s.set(i, j, row[j] as f64 * scale).unwrap();
                    }
                }
            }
            s
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Coefficients are monotone non-decreasing in the level cap.
    #[test]
    fn levels_are_monotone(s in arb_matrix()) {
        let n = s.n();
        let mut prev = TransitiveFlow::compute_with(
            &s, &TransitiveOptions { max_level: 1, clamp: false, min_product: 0.0 });
        for level in 2..n {
            let cur = TransitiveFlow::compute_with(
                &s, &TransitiveOptions { max_level: level, clamp: false, min_product: 0.0 });
            for i in 0..n {
                for j in 0..n {
                    prop_assert!(cur.coefficient(i, j) >= prev.coefficient(i, j) - 1e-15);
                }
            }
            prev = cur;
        }
    }

    /// With row sums ≤ 1, every *pairwise* coefficient stays ≤ 1 even
    /// unclamped: the first hops out of `i` partition its value and each
    /// continuation forwards at most 100%. (Total outflow Σ_j T[i][j] CAN
    /// exceed 1 — sharing promises the same units to several parties;
    /// that is what allocation-time enforcement resolves.)
    #[test]
    fn pairwise_coefficient_bounded_without_overdraft(s in arb_matrix()) {
        let n = s.n();
        let t = TransitiveFlow::compute_with(
            &s, &TransitiveOptions { max_level: n - 1, clamp: false, min_product: 0.0 });
        for i in 0..n {
            for j in 0..n {
                prop_assert!(t.coefficient(i, j) <= 1.0 + 1e-9,
                    "T[{i}][{j}] = {} exceeds 1 without overdraft", t.coefficient(i, j));
            }
        }
    }

    /// Diagonal is always zero and all coefficients non-negative.
    #[test]
    fn coefficients_well_formed(s in arb_matrix(), level in 1usize..6) {
        let n = s.n();
        let t = TransitiveFlow::compute_with(
            &s, &TransitiveOptions { max_level: level, clamp: true, min_product: 0.0 });
        for i in 0..n {
            prop_assert_eq!(t.coefficient(i, i), 0.0);
            for j in 0..n {
                let c = t.coefficient(i, j);
                prop_assert!((0.0..=1.0).contains(&c), "clamped coeff {c}");
            }
        }
    }

    /// Capacity is at least own availability, and with row sums ≤ 1 the
    /// sum of capacities never exceeds n × total value (each unit usable
    /// by at most all n principals via sharing).
    #[test]
    fn capacity_bounds(s in arb_matrix(), avail in proptest::collection::vec(0u32..=100, 6)) {
        let n = s.n();
        let v: Vec<f64> = avail[..n].iter().map(|&x| x as f64).collect();
        let t = TransitiveFlow::compute(&s, n - 1);
        let r = capacities(&t, None, &v);
        let total: f64 = v.iter().sum();
        for i in 0..n {
            prop_assert!(r.capacity(i) >= v[i] - 1e-12);
            prop_assert!(r.capacity(i) <= 2.0 * total + 1e-9,
                "capacity {} exceeds total value {} (+inflows ≤ total)", r.capacity(i), total);
        }
        // Each individual inflow is saturated at the owner's availability.
        for k in 0..n {
            for i in 0..n {
                prop_assert!(r.inflow(k, i) <= v[k] + 1e-12);
            }
        }
    }

    /// Clamping only ever reduces coefficients.
    #[test]
    fn clamp_is_a_reduction(s in arb_matrix(), level in 1usize..6) {
        let n = s.n();
        let raw = TransitiveFlow::compute_with(
            &s, &TransitiveOptions { max_level: level, clamp: false, min_product: 0.0 });
        let clamped = TransitiveFlow::compute_with(
            &s, &TransitiveOptions { max_level: level, clamp: true, min_product: 0.0 });
        for i in 0..n {
            for j in 0..n {
                prop_assert!(clamped.coefficient(i, j) <= raw.coefficient(i, j) + 1e-15);
                prop_assert!(clamped.coefficient(i, j) <= 1.0);
            }
        }
    }
}
