//! Property tests for chain enumeration: the decomposition must agree
//! with the aggregate transitive coefficients on random graphs.

use agreements_flow::paths::coefficient_from_chains;
use agreements_flow::{chains_between, AgreementMatrix, TransitiveFlow, TransitiveOptions};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = AgreementMatrix> {
    (3usize..=6).prop_flat_map(|n| {
        proptest::collection::vec(0u32..=20, n * n).prop_map(move |raw| {
            let mut s = AgreementMatrix::zeros(n);
            for i in 0..n {
                for j in 0..n {
                    if i != j && raw[i * n + j] > 10 {
                        s.set(i, j, (raw[i * n + j] - 10) as f64 / 20.0).unwrap();
                    }
                }
            }
            s
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Chain products sum to the unclamped coefficient at every level for
    /// every ordered pair.
    #[test]
    fn chains_decompose_coefficients(s in arb_matrix(), level in 1usize..=5) {
        let n = s.n();
        let level = level.min(n - 1);
        let t = TransitiveFlow::compute_with(
            &s,
            &TransitiveOptions { max_level: level, clamp: false, min_product: 0.0 },
        );
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let chains = chains_between(&s, i, j, level);
                let sum = coefficient_from_chains(&chains);
                prop_assert!(
                    (sum - t.coefficient(i, j)).abs() < 1e-12,
                    "({i},{j}) level {level}: chains {sum} vs {}",
                    t.coefficient(i, j)
                );
            }
        }
    }

    /// Every enumerated chain is simple (no repeated nodes), within the
    /// level cap, respects edge existence, and the list is sorted by
    /// descending product.
    #[test]
    fn chains_are_simple_and_sorted(s in arb_matrix(), level in 1usize..=5) {
        let n = s.n();
        let level = level.min(n - 1);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let chains = chains_between(&s, i, j, level);
                let mut prev = f64::INFINITY;
                for c in &chains {
                    prop_assert!(c.hops() <= level);
                    prop_assert_eq!(*c.nodes.first().unwrap(), i);
                    prop_assert_eq!(*c.nodes.last().unwrap(), j);
                    let unique: std::collections::HashSet<_> =
                        c.nodes.iter().collect();
                    prop_assert_eq!(unique.len(), c.nodes.len(), "simple path");
                    let mut prod = 1.0;
                    for w in c.nodes.windows(2) {
                        let share = s.get(w[0], w[1]);
                        prop_assert!(share > 0.0, "edge {:?} exists", w);
                        prod *= share;
                    }
                    prop_assert!((prod - c.product).abs() < 1e-12);
                    prop_assert!(c.product <= prev + 1e-15, "sorted descending");
                    prev = c.product;
                }
            }
        }
    }
}
