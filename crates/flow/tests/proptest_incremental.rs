//! Property test: [`IncrementalFlow`] stays **bit-identical** to a
//! from-scratch [`TransitiveFlow::compute`] across randomized
//! interleavings of `set`, `grow`, and `isolate`.
//!
//! Bit-identity (compared via `f64::to_bits`, not an epsilon) is the
//! whole contract: the GRM swaps full recomputes for incremental
//! repairs only because the grant decisions downstream cannot move by
//! even one ulp.

// Index-based loops keep the matrix algebra legible in these tests.
#![allow(clippy::needless_range_loop)]

use agreements_flow::{AgreementMatrix, IncrementalFlow, TransitiveFlow};
use proptest::prelude::*;

/// One mutation in the interleaving. Indices and shares are raw; they
/// are folded modulo the current `n` when applied (membership changes
/// shift `n` mid-sequence, so concrete indices cannot be fixed at
/// generation time).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `set(from % n, to % n, share)` with `share` scaled into [0, 0.3]
    /// (kept small so dense row sums stay within the basic model).
    Set { from: usize, to: usize, share_milli: u32 },
    /// Admit a principal (full-recompute path).
    Grow,
    /// `isolate(i % n)` (full-recompute path).
    Isolate { i: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Weighted mix: 8/10 set, 1/10 grow, 1/10 isolate (the vendored
    // proptest's `prop_oneof!` has no weight syntax, so the selector is
    // drawn explicitly).
    (0usize..10, 0usize..64, 0usize..64, 0u32..=300).prop_map(|(pick, from, to, share_milli)| {
        match pick {
            8 => Op::Grow,
            9 => Op::Isolate { i: from },
            _ => Op::Set { from, to, share_milli },
        }
    })
}

/// Initial matrix (n in 2..=8) plus ≥ 64 mutations. Growth is capped by
/// the op mix (about one grow per ten ops), keeping n ≤ 16 as specified.
fn arb_scenario() -> impl Strategy<Value = (AgreementMatrix, Vec<Op>, usize)> {
    (2usize..=8, 1usize..=7).prop_flat_map(|(n, level)| {
        (proptest::collection::vec(0u32..=300, n * n), proptest::collection::vec(arb_op(), 64..=96))
            .prop_map(move |(raw, ops)| {
                let mut s = AgreementMatrix::zeros(n);
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            s.set(i, j, raw[i * n + j] as f64 / 1000.0).unwrap();
                        }
                    }
                }
                (s, ops, level)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_matches_full_compute_bit_for_bit(
        (s, ops, level) in arb_scenario()
    ) {
        let max_grows = 8; // keeps n within 16 even on grow-heavy draws
        let mut grows = 0;
        let mut inc = IncrementalFlow::new(s.clone(), level);
        let mut reference = s;
        for op in ops {
            match op {
                Op::Set { from, to, share_milli } => {
                    let n = reference.n();
                    let (from, to) = (from % n, to % n);
                    let share = share_milli as f64 / 1000.0;
                    let expect = reference.set(from, to, share);
                    let got = inc.set(from, to, share);
                    prop_assert_eq!(expect.is_ok(), got.is_ok(),
                        "set({}, {}, {}) acceptance diverged", from, to, share);
                }
                Op::Grow => {
                    if grows == max_grows {
                        continue;
                    }
                    grows += 1;
                    reference = reference.grown();
                    inc.grow();
                }
                Op::Isolate { i } => {
                    let i = i % reference.n();
                    reference.isolate(i).unwrap();
                    inc.isolate(i).unwrap();
                }
            }
            let n = reference.n();
            prop_assert!(n <= 16, "scenario must stay small");
            prop_assert_eq!(inc.n(), n);
            let full = TransitiveFlow::compute(&reference, level);
            prop_assert_eq!(inc.level(), full.level());
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(
                        inc.coefficient(i, j).to_bits(),
                        full.coefficient(i, j).to_bits(),
                        "coefficient ({}, {}) diverged after {:?}", i, j, op
                    );
                }
            }
            // The snapshot publishes the same bits.
            let snap = inc.snapshot();
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(
                        snap.coefficient(i, j).to_bits(),
                        full.coefficient(i, j).to_bits()
                    );
                }
            }
        }
    }
}
