//! Relative (`S`) and absolute (`A`) agreement matrices.

use crate::error::FlowError;
use serde::{Deserialize, Serialize};

/// Relative agreement matrix `S`: `S[i][j]` is the fraction of `i`'s
/// available resources shared with `j` (paper §3.1).
///
/// Invariants enforced at mutation time: `S[i][i] = 0`, `0 ≤ S[i][j] ≤ 1`.
/// The row-sum restriction `Σ_k S[i][k] ≤ 1` is *checked on demand* via
/// [`AgreementMatrix::validate_row_sums`] because §3.2 explicitly lifts it
/// ("overdraft") and compensates with clamping in the transitive flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgreementMatrix {
    n: usize,
    data: Vec<f64>, // row-major
}

impl AgreementMatrix {
    /// All-zero matrix over `n` principals (no agreements).
    pub fn zeros(n: usize) -> Self {
        AgreementMatrix { n, data: vec![0.0; n * n] }
    }

    /// Number of principals.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Share `S[i][j]`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Set `S[i][j] = share`.
    pub fn set(&mut self, i: usize, j: usize, share: f64) -> Result<(), FlowError> {
        if i >= self.n || j >= self.n {
            return Err(FlowError::OutOfRange { index: i.max(j), n: self.n });
        }
        if i == j {
            return Err(FlowError::DiagonalShare { index: i });
        }
        if !share.is_finite() || !(0.0..=1.0).contains(&share) {
            return Err(FlowError::InvalidShare { value: share });
        }
        self.data[i * self.n + j] = share;
        Ok(())
    }

    /// Total share promised by principal `i`.
    pub fn row_sum(&self, i: usize) -> f64 {
        self.data[i * self.n..(i + 1) * self.n].iter().sum()
    }

    /// Check the basic-model restriction `Σ_k S[i][k] ≤ 1` for all rows;
    /// returns the first violating row. Call this when overdraft is not
    /// intended.
    pub fn validate_row_sums(&self) -> Result<(), FlowError> {
        for i in 0..self.n {
            let sum = self.row_sum(i);
            if sum > 1.0 + 1e-12 {
                return Err(FlowError::RowSumExceeded { row: i, sum });
            }
        }
        Ok(())
    }

    /// Is any row overdrawn (promising more than 100%)?
    pub fn is_overdrawn(&self) -> bool {
        self.validate_row_sums().is_err()
    }

    /// Iterate over non-zero agreements `(i, j, share)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.n).filter_map(move |j| {
                let s = self.get(i, j);
                (s > 0.0).then_some((i, j, s))
            })
        })
    }

    /// Number of non-zero agreements.
    pub fn num_edges(&self) -> usize {
        self.data.iter().filter(|&&s| s > 0.0).count()
    }

    /// Out-neighbours of `i` (targets it shares with), ascending.
    pub fn neighbours(&self, i: usize) -> Vec<usize> {
        (0..self.n).filter(|&j| self.get(i, j) > 0.0).collect()
    }

    /// A copy extended by one principal (index `n`), holding no
    /// agreements yet — dynamic membership, paper §1 ("dynamically
    /// changing user set").
    pub fn grown(&self) -> AgreementMatrix {
        let n = self.n + 1;
        let mut out = AgreementMatrix::zeros(n);
        for i in 0..self.n {
            for j in 0..self.n {
                out.data[i * n + j] = self.data[i * self.n + j];
            }
        }
        out
    }

    /// Remove every agreement involving `i` (both directions), modelling a
    /// principal leaving the federation while keeping indices stable.
    pub fn isolate(&mut self, i: usize) -> Result<(), FlowError> {
        if i >= self.n {
            return Err(FlowError::OutOfRange { index: i, n: self.n });
        }
        for j in 0..self.n {
            self.data[i * self.n + j] = 0.0;
            self.data[j * self.n + i] = 0.0;
        }
        Ok(())
    }
}

/// Absolute agreement matrix `A`: `A[i][j]` is a fixed resource quantity
/// that `i` makes available to `j` regardless of `i`'s fluctuations
/// (paper §3.2). Entries are non-negative finite quantities in resource
/// units; the diagonal stays zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbsoluteMatrix {
    n: usize,
    data: Vec<f64>,
}

impl AbsoluteMatrix {
    /// All-zero matrix over `n` principals.
    pub fn zeros(n: usize) -> Self {
        AbsoluteMatrix { n, data: vec![0.0; n * n] }
    }

    /// Number of principals.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Quantity `A[i][j]`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Set `A[i][j] = amount` (resource units).
    pub fn set(&mut self, i: usize, j: usize, amount: f64) -> Result<(), FlowError> {
        if i >= self.n || j >= self.n {
            return Err(FlowError::OutOfRange { index: i.max(j), n: self.n });
        }
        if i == j {
            return Err(FlowError::DiagonalShare { index: i });
        }
        if !amount.is_finite() || amount < 0.0 {
            return Err(FlowError::InvalidShare { value: amount });
        }
        self.data[i * self.n + j] = amount;
        Ok(())
    }

    /// Is the matrix entirely zero?
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut s = AgreementMatrix::zeros(3);
        s.set(0, 1, 0.3).unwrap();
        assert_eq!(s.get(0, 1), 0.3);
        assert_eq!(s.get(1, 0), 0.0);
        assert_eq!(s.n(), 3);
    }

    #[test]
    fn diagonal_rejected() {
        let mut s = AgreementMatrix::zeros(2);
        assert_eq!(s.set(1, 1, 0.1), Err(FlowError::DiagonalShare { index: 1 }));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = AgreementMatrix::zeros(2);
        assert!(matches!(s.set(0, 5, 0.1), Err(FlowError::OutOfRange { .. })));
    }

    #[test]
    fn invalid_shares_rejected() {
        let mut s = AgreementMatrix::zeros(2);
        assert!(s.set(0, 1, -0.1).is_err());
        assert!(s.set(0, 1, 1.5).is_err());
        assert!(s.set(0, 1, f64::NAN).is_err());
        assert!(s.set(0, 1, 1.0).is_ok());
        assert!(s.set(0, 1, 0.0).is_ok());
    }

    #[test]
    fn row_sum_validation() {
        let mut s = AgreementMatrix::zeros(3);
        s.set(0, 1, 0.6).unwrap();
        s.set(0, 2, 0.3).unwrap();
        assert!(s.validate_row_sums().is_ok());
        assert!(!s.is_overdrawn());
        s.set(0, 2, 0.6).unwrap();
        assert_eq!(s.validate_row_sums(), Err(FlowError::RowSumExceeded { row: 0, sum: 1.2 }));
        assert!(s.is_overdrawn());
    }

    #[test]
    fn edges_iterates_nonzero() {
        let mut s = AgreementMatrix::zeros(3);
        s.set(0, 1, 0.5).unwrap();
        s.set(2, 0, 0.25).unwrap();
        let edges: Vec<_> = s.edges().collect();
        assert_eq!(edges, vec![(0, 1, 0.5), (2, 0, 0.25)]);
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.neighbours(0), vec![1]);
        assert_eq!(s.neighbours(1), Vec::<usize>::new());
    }

    #[test]
    fn grown_preserves_and_extends() {
        let mut s = AgreementMatrix::zeros(2);
        s.set(0, 1, 0.4).unwrap();
        let g = s.grown();
        assert_eq!(g.n(), 3);
        assert_eq!(g.get(0, 1), 0.4);
        assert_eq!(g.get(0, 2), 0.0);
        assert_eq!(g.get(2, 0), 0.0);
        // The new principal can take on agreements.
        let mut g = g;
        g.set(2, 0, 0.3).unwrap();
        assert_eq!(g.get(2, 0), 0.3);
    }

    #[test]
    fn isolate_cuts_both_directions() {
        let mut s = AgreementMatrix::zeros(3);
        s.set(0, 1, 0.4).unwrap();
        s.set(1, 0, 0.2).unwrap();
        s.set(1, 2, 0.1).unwrap();
        s.isolate(1).unwrap();
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.get(1, 0), 0.0);
        assert_eq!(s.get(1, 2), 0.0);
        assert!(s.isolate(7).is_err());
    }

    #[test]
    fn absolute_matrix_allows_large_amounts() {
        let mut a = AbsoluteMatrix::zeros(2);
        a.set(0, 1, 1234.5).unwrap();
        assert_eq!(a.get(0, 1), 1234.5);
        assert!(!a.is_zero());
        assert!(a.set(0, 1, -1.0).is_err());
        assert!(a.set(1, 1, 1.0).is_err());
    }

    #[test]
    fn zero_matrices_report_zero() {
        assert!(AbsoluteMatrix::zeros(4).is_zero());
        assert_eq!(AgreementMatrix::zeros(4).num_edges(), 0);
    }
}
