//! Per-principal capacities `C_i` from availability and transitive flow.

use crate::matrix::AbsoluteMatrix;
use crate::transitive::TransitiveFlow;

/// Capacity report: how much each principal can reach, and the per-pair
/// saturated inflows it is built from.
#[derive(Debug, Clone)]
pub struct CapacityReport {
    capacity: Vec<f64>,
    /// `u[k][i]`: amount principal `i` can draw from owner `k`
    /// (saturated at `V_k`).
    u: Vec<Vec<f64>>,
}

impl CapacityReport {
    /// Total resources reachable by principal `i`:
    /// `C_i = V_i + Σ_{k≠i} U[k][i]`.
    #[inline]
    pub fn capacity(&self, i: usize) -> f64 {
        self.capacity[i]
    }

    /// Saturated inflow `U[k][i]` available to `i` from owner `k`.
    #[inline]
    pub fn inflow(&self, k: usize, i: usize) -> f64 {
        self.u[k][i]
    }

    /// All capacities, indexed by principal.
    pub fn capacities(&self) -> &[f64] {
        &self.capacity
    }
}

/// Compute `U[k][i] = min(I[k][i] + A[k][i], V_k)` where
/// `I[k][i] = V_k · T[k][i]` (paper §3.2). With no absolute matrix this
/// reduces to the clamped relative flow.
pub fn saturated_inflow(
    t: &TransitiveFlow,
    a: Option<&AbsoluteMatrix>,
    v: &[f64],
    k: usize,
    i: usize,
) -> f64 {
    let rel = t.inflow(k, i, v[k]);
    let abs = a.map_or(0.0, |m| m.get(k, i));
    (rel + abs).min(v[k])
}

/// Compute the full capacity report: `C_i = V_i + Σ_{k≠i} U[k][i]`.
///
/// # Panics
///
/// Panics if `v.len()` differs from the flow table's dimension or, when
/// provided, the absolute matrix's.
pub fn capacities(t: &TransitiveFlow, a: Option<&AbsoluteMatrix>, v: &[f64]) -> CapacityReport {
    let n = t.n();
    assert_eq!(v.len(), n, "availability vector dimension mismatch");
    if let Some(m) = a {
        assert_eq!(m.n(), n, "absolute matrix dimension mismatch");
    }
    let mut u = vec![vec![0.0; n]; n];
    for k in 0..n {
        for i in 0..n {
            if i != k {
                u[k][i] = saturated_inflow(t, a, v, k, i);
            }
        }
    }
    let capacity: Vec<f64> =
        (0..n).map(|i| v[i] + (0..n).filter(|&k| k != i).map(|k| u[k][i]).sum::<f64>()).collect();
    CapacityReport { capacity, u }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::AgreementMatrix;
    use crate::transitive::TransitiveFlow;

    const EPS: f64 = 1e-9;

    #[test]
    fn capacity_includes_own_and_inflows() {
        let mut s = AgreementMatrix::zeros(3);
        s.set(0, 1, 0.5).unwrap();
        s.set(1, 2, 0.4).unwrap();
        let t = TransitiveFlow::compute(&s, 2);
        let v = [10.0, 20.0, 5.0];
        let r = capacities(&t, None, &v);
        assert!((r.capacity(0) - 10.0).abs() < EPS, "0 receives nothing");
        assert!((r.capacity(1) - 25.0).abs() < EPS, "20 + 0.5*10");
        // 2 gets 0.4*20 from 1 plus 0.5*0.4*10 from 0 transitively.
        assert!((r.capacity(2) - (5.0 + 8.0 + 2.0)).abs() < EPS);
        assert!((r.inflow(0, 2) - 2.0).abs() < EPS);
    }

    #[test]
    fn saturation_limits_inflow_to_owner_availability() {
        // Overdraft: 0 promises 60% to each of 1 and 2; 1 passes 100% on.
        let mut s = AgreementMatrix::zeros(3);
        s.set(0, 1, 0.6).unwrap();
        s.set(0, 2, 0.6).unwrap();
        s.set(1, 2, 1.0).unwrap();
        let t = TransitiveFlow::compute(&s, 2);
        let v = [10.0, 0.0, 0.0];
        let r = capacities(&t, None, &v);
        // Clamped coefficient keeps 2's draw on 0 at V_0 = 10, not 12.
        assert!((r.capacity(2) - 10.0).abs() < EPS);
    }

    #[test]
    fn absolute_agreements_add_but_saturate() {
        let s = AgreementMatrix::zeros(2);
        let t = TransitiveFlow::compute(&s, 1);
        let mut a = AbsoluteMatrix::zeros(2);
        a.set(0, 1, 7.0).unwrap();
        let v = [10.0, 1.0];
        let r = capacities(&t, Some(&a), &v);
        assert!((r.capacity(1) - 8.0).abs() < EPS, "1 + min(7, 10)");
        // When the owner has less than promised, the inflow saturates.
        let v = [4.0, 1.0];
        let r = capacities(&t, Some(&a), &v);
        assert!((r.capacity(1) - 5.0).abs() < EPS, "1 + min(7, 4)");
    }

    #[test]
    fn absolute_plus_relative_saturate_together() {
        let mut s = AgreementMatrix::zeros(2);
        s.set(0, 1, 0.5).unwrap();
        let t = TransitiveFlow::compute(&s, 1);
        let mut a = AbsoluteMatrix::zeros(2);
        a.set(0, 1, 6.0).unwrap();
        let v = [10.0, 0.0];
        // I = 5, A = 6, I + A = 11 > V_0 = 10 -> U = 10.
        assert!((saturated_inflow(&t, Some(&a), &v, 0, 1) - 10.0).abs() < EPS);
        let r = capacities(&t, Some(&a), &v);
        assert!((r.capacity(1) - 10.0).abs() < EPS);
    }

    #[test]
    fn zero_availability_contributes_nothing_relative() {
        let mut s = AgreementMatrix::zeros(2);
        s.set(0, 1, 0.9).unwrap();
        let t = TransitiveFlow::compute(&s, 1);
        let r = capacities(&t, None, &[0.0, 3.0]);
        assert!((r.capacity(1) - 3.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let s = AgreementMatrix::zeros(2);
        let t = TransitiveFlow::compute(&s, 1);
        let _ = capacities(&t, None, &[1.0, 2.0, 3.0]);
    }
}
