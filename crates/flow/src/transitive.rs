//! Transitive flow coefficients `T^(m)` by simple-path enumeration.
//!
//! The paper's recurrence (§3.1) sums, over all *cycle-free* chains of
//! agreements from `i` to `j` with at most `m` hops, the product of the
//! shares along the chain. We enumerate these simple paths directly with a
//! depth-first search from each source, which is exact and — for the
//! evaluation-scale graphs (n ≈ 10) — takes milliseconds even for the full
//! closure `m = n − 1`. For larger graphs an optional product-pruning
//! threshold trades a documented underestimate for tractability (the paper
//! itself notes the exponential decay of value along long chains).

use crate::matrix::AgreementMatrix;
use agreements_lp::Matrix;

/// Options for the transitive-flow computation.
#[derive(Debug, Clone)]
pub struct TransitiveOptions {
    /// Maximum number of hops (agreement levels). Level 1 = direct
    /// agreements only. The full closure needs `n − 1`.
    pub max_level: usize,
    /// Apply the §3.2 overdraft clamp `K = min(T, 1)` to the result.
    pub clamp: bool,
    /// Abandon DFS branches whose accumulated share product falls below
    /// this threshold. `0.0` (default) is exact.
    pub min_product: f64,
}

impl TransitiveOptions {
    /// Exact, clamped computation at the given level — the configuration
    /// the scheduler uses.
    pub fn exact(max_level: usize) -> Self {
        TransitiveOptions { max_level, clamp: true, min_product: 0.0 }
    }
}

/// Precomputed transitive flow coefficients for one agreement structure.
#[derive(Debug, Clone)]
pub struct TransitiveFlow {
    t: Matrix,
    level: usize,
    clamped: bool,
}

impl TransitiveFlow {
    /// Compute `K^(m) = min(T^(m), 1)` (clamped, exact) — the standard
    /// scheduler input.
    pub fn compute(s: &AgreementMatrix, max_level: usize) -> Self {
        Self::compute_with(s, &TransitiveOptions::exact(max_level))
    }

    /// Compute with explicit options.
    pub fn compute_with(s: &AgreementMatrix, opts: &TransitiveOptions) -> Self {
        let n = s.n();
        let level = opts.max_level.min(n.saturating_sub(1)).max(1);
        let adj = adjacency(s);
        let mut t = Matrix::zeros(n, n);
        let mut visited = vec![false; n];
        for src in 0..n {
            let mut row = vec![0.0; n];
            visited[src] = true;
            dfs(src, 1.0, level, opts.min_product, &adj, &mut visited, &mut row);
            visited[src] = false;
            t.row_mut(src).copy_from_slice(&row);
        }
        clamp_matrix(&mut t, opts.clamp);
        TransitiveFlow { t, level, clamped: opts.clamp }
    }

    /// Parallel variant of [`TransitiveFlow::compute_with`]: the
    /// per-source DFS walks are independent, so the result rows are
    /// split into disjoint contiguous chunks handed to scoped workers —
    /// each row is written exactly once by exactly one worker, so no
    /// locks are involved. Produces bit-identical results to the
    /// sequential computation (per-source accumulation is deterministic
    /// and rows don't interact). Worth it from roughly `n ≥ 10` at full
    /// closure — the `substrates` bench quantifies the crossover.
    pub fn compute_parallel(s: &AgreementMatrix, opts: &TransitiveOptions, threads: usize) -> Self {
        let n = s.n();
        let level = opts.max_level.min(n.saturating_sub(1)).max(1);
        let threads = threads.clamp(1, n.max(1));
        if threads <= 1 || n <= 1 {
            return Self::compute_with(s, opts);
        }
        let adj = adjacency(s);
        let min_product = opts.min_product;
        let mut t = Matrix::zeros(n, n);
        let chunk_rows = n.div_ceil(threads);
        let chunks: Vec<(usize, &mut [f64])> =
            t.as_mut_slice().chunks_mut(chunk_rows * n).enumerate().collect();
        agreements_util::par_map(chunks, |(c, chunk)| {
            let mut visited = vec![false; n];
            for (r, row) in chunk.chunks_mut(n).enumerate() {
                let src = c * chunk_rows + r;
                visited[src] = true;
                dfs(src, 1.0, level, min_product, &adj, &mut visited, row);
                visited[src] = false;
            }
        });
        clamp_matrix(&mut t, opts.clamp);
        TransitiveFlow { t, level, clamped: opts.clamp }
    }

    /// `T[i][j]` (or `K[i][j]` when clamped): the fraction of `i`'s
    /// availability reachable by `j` within the level cap.
    #[inline]
    pub fn coefficient(&self, i: usize, j: usize) -> f64 {
        self.t[(i, j)]
    }

    /// Flow `I[i][j] = V_i · T[i][j]` for availability `v`.
    #[inline]
    pub fn inflow(&self, i: usize, j: usize, v_i: f64) -> f64 {
        v_i * self.coefficient(i, j)
    }

    /// Number of principals.
    #[inline]
    pub fn n(&self) -> usize {
        self.t.rows()
    }

    /// The level cap this table was computed at.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Whether the overdraft clamp was applied.
    #[inline]
    pub fn clamped(&self) -> bool {
        self.clamped
    }

    /// Borrow the underlying coefficient matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.t
    }

    /// Assemble a flow table from an already-computed coefficient
    /// matrix — the escape hatch [`crate::incremental`] uses to publish
    /// its incrementally maintained rows without another full DFS.
    pub(crate) fn from_parts(t: Matrix, level: usize, clamped: bool) -> Self {
        TransitiveFlow { t, level, clamped }
    }
}

/// Build the adjacency list of positive shares (targets ascending — the
/// DFS visit order every computation in this crate must share for
/// bit-identical accumulation).
pub(crate) fn adjacency(s: &AgreementMatrix) -> Vec<Vec<(usize, f64)>> {
    let n = s.n();
    (0..n)
        .map(|i| {
            (0..n)
                .filter_map(|j| {
                    let w = s.get(i, j);
                    (w > 0.0).then_some((j, w))
                })
                .collect()
        })
        .collect()
}

/// Apply the §3.2 overdraft clamp in place when requested.
fn clamp_matrix(t: &mut Matrix, clamp: bool) {
    if !clamp {
        return;
    }
    let (rows, cols) = (t.rows(), t.cols());
    for i in 0..rows {
        for j in 0..cols {
            if t[(i, j)] > 1.0 {
                t[(i, j)] = 1.0;
            }
        }
    }
}

/// DFS over simple paths from one source: on arriving at `node` with
/// accumulated product `prod` (excluding the final hop), extend along
/// every unvisited edge, accumulating into the source's `row`.
fn dfs(
    node: usize,
    prod: f64,
    levels_left: usize,
    min_product: f64,
    adj: &[Vec<(usize, f64)>],
    visited: &mut Vec<bool>,
    row: &mut [f64],
) {
    if levels_left == 0 {
        return;
    }
    for &(next, w) in &adj[node] {
        if visited[next] {
            continue;
        }
        let p = prod * w;
        if p <= min_product {
            continue;
        }
        row[next] += p;
        visited[next] = true;
        dfs(next, p, levels_left - 1, min_product, adj, visited, row);
        visited[next] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn chain3() -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(3);
        s.set(0, 1, 0.5).unwrap();
        s.set(1, 2, 0.4).unwrap();
        s
    }

    #[test]
    fn level1_is_direct_agreements() {
        let s = chain3();
        let t = TransitiveFlow::compute(&s, 1);
        assert!((t.coefficient(0, 1) - 0.5).abs() < EPS);
        assert!((t.coefficient(1, 2) - 0.4).abs() < EPS);
        assert_eq!(t.coefficient(0, 2), 0.0, "no transitive flow at level 1");
        assert_eq!(t.level(), 1);
    }

    #[test]
    fn level2_adds_chain_product() {
        let s = chain3();
        let t = TransitiveFlow::compute(&s, 2);
        assert!((t.coefficient(0, 2) - 0.2).abs() < EPS, "0.5 * 0.4");
        // Direct coefficients unchanged.
        assert!((t.coefficient(0, 1) - 0.5).abs() < EPS);
    }

    #[test]
    fn level_cap_never_exceeds_n_minus_1() {
        let s = chain3();
        let t = TransitiveFlow::compute(&s, 99);
        assert_eq!(t.level(), 2);
    }

    #[test]
    fn cycles_do_not_loop() {
        // 0 <-> 1 mutual 50%; a cycle must not inflate coefficients.
        let mut s = AgreementMatrix::zeros(2);
        s.set(0, 1, 0.5).unwrap();
        s.set(1, 0, 0.5).unwrap();
        let t = TransitiveFlow::compute(&s, 1);
        assert!((t.coefficient(0, 1) - 0.5).abs() < EPS);
        assert!((t.coefficient(1, 0) - 0.5).abs() < EPS);
        assert_eq!(t.coefficient(0, 0), 0.0, "no self flow");
    }

    #[test]
    fn paper_overdraft_example_clamps() {
        // §3.2: A (0) shares 60% with B (1) and 60% with C (2); B shares
        // 100% with C. Unclamped T[0][2] = 0.6 + 0.6 = 1.2; clamped 1.0.
        let mut s = AgreementMatrix::zeros(3);
        s.set(0, 1, 0.6).unwrap();
        s.set(0, 2, 0.6).unwrap();
        s.set(1, 2, 1.0).unwrap();
        let raw = TransitiveFlow::compute_with(
            &s,
            &TransitiveOptions { max_level: 2, clamp: false, min_product: 0.0 },
        );
        assert!((raw.coefficient(0, 2) - 1.2).abs() < EPS);
        assert!(!raw.clamped());
        let k = TransitiveFlow::compute(&s, 2);
        assert!((k.coefficient(0, 2) - 1.0).abs() < EPS);
        assert!(k.clamped());
        // With V_0 = 10, C can obtain at most 10, not 12 (paper's numbers).
        assert!((k.inflow(0, 2, 10.0) - 10.0).abs() < EPS);
        assert!((raw.inflow(0, 2, 10.0) - 12.0).abs() < EPS);
    }

    #[test]
    fn complete_graph_closure_matches_hand_count() {
        // Complete graph on 3 nodes, every share 0.1.
        let mut s = AgreementMatrix::zeros(3);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    s.set(i, j, 0.1).unwrap();
                }
            }
        }
        let t = TransitiveFlow::compute(&s, 2);
        // Paths 0 -> 1: direct 0.1, via 2: 0.1 * 0.1 = 0.01.
        assert!((t.coefficient(0, 1) - 0.11).abs() < EPS);
    }

    #[test]
    fn pruning_underestimates_monotonically() {
        let mut s = AgreementMatrix::zeros(4);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    s.set(i, j, 0.3).unwrap();
                }
            }
        }
        let exact = TransitiveFlow::compute_with(
            &s,
            &TransitiveOptions { max_level: 3, clamp: false, min_product: 0.0 },
        );
        let pruned = TransitiveFlow::compute_with(
            &s,
            &TransitiveOptions { max_level: 3, clamp: false, min_product: 0.05 },
        );
        for i in 0..4 {
            for j in 0..4 {
                assert!(pruned.coefficient(i, j) <= exact.coefficient(i, j) + EPS);
            }
        }
    }

    #[test]
    fn empty_matrix_yields_zero_flow() {
        let s = AgreementMatrix::zeros(5);
        let t = TransitiveFlow::compute(&s, 4);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(t.coefficient(i, j), 0.0);
            }
        }
        assert_eq!(t.n(), 5);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut s = AgreementMatrix::zeros(9);
        for i in 0..9 {
            for j in 0..9 {
                if i != j {
                    s.set(i, j, 0.02 + 0.01 * ((i * 3 + j) % 7) as f64).unwrap();
                }
            }
        }
        for level in [1usize, 3, 8] {
            let opts = TransitiveOptions { max_level: level, clamp: true, min_product: 0.0 };
            let seq = TransitiveFlow::compute_with(&s, &opts);
            for threads in [1usize, 2, 4, 16] {
                let par = TransitiveFlow::compute_parallel(&s, &opts, threads);
                for i in 0..9 {
                    for j in 0..9 {
                        assert_eq!(
                            seq.coefficient(i, j),
                            par.coefficient(i, j),
                            "level {level}, {threads} threads, pair ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_handles_degenerate_sizes() {
        let s = AgreementMatrix::zeros(1);
        let opts = TransitiveOptions::exact(1);
        let t = TransitiveFlow::compute_parallel(&s, &opts, 8);
        assert_eq!(t.n(), 1);
        let s = AgreementMatrix::zeros(0);
        let t = TransitiveFlow::compute_parallel(&s, &opts, 8);
        assert_eq!(t.n(), 0);
    }

    #[test]
    fn loop_structure_chains_shares() {
        // Ring 0 -> 1 -> 2 -> 3 -> 0 at 80%.
        let mut s = AgreementMatrix::zeros(4);
        for i in 0..4 {
            s.set(i, (i + 1) % 4, 0.8).unwrap();
        }
        let t = TransitiveFlow::compute(&s, 3);
        assert!((t.coefficient(0, 1) - 0.8).abs() < EPS);
        assert!((t.coefficient(0, 2) - 0.64).abs() < EPS);
        assert!((t.coefficient(0, 3) - 0.512).abs() < EPS);
        // Level 1 only reaches the direct neighbour.
        let t1 = TransitiveFlow::compute(&s, 1);
        assert_eq!(t1.coefficient(0, 2), 0.0);
    }
}
