//! Generators for the agreement-graph shapes the paper studies (§2.2
//! taxonomy and §4.2 experiment configurations).

use crate::error::FlowError;
use crate::matrix::AgreementMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Named agreement-graph structures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Structure {
    /// Every principal shares `share` with every other (paper Figures 6–8,
    /// 12: complete graph, 10% each).
    Complete {
        /// Number of principals.
        n: usize,
        /// Share each principal gives every other.
        share: f64,
    },
    /// Ring: each principal shares `share` with the principal `skip`
    /// positions ahead (paper Figures 9–11: 80% with one neighbour, skip
    /// controlling the time-zone distance).
    Loop {
        /// Number of principals.
        n: usize,
        /// Share given to the single partner.
        share: f64,
        /// How many positions ahead the partner sits (0 normalizes to 1).
        skip: usize,
    },
    /// Each ordered pair holds an agreement with probability `p`; present
    /// agreements all carry `share`. Models the paper's "sparse" taxonomy
    /// entry.
    SparseRandom {
        /// Number of principals.
        n: usize,
        /// Share carried by each present agreement.
        share: f64,
        /// Probability an ordered pair holds an agreement.
        p: f64,
        /// RNG seed (construction is deterministic given this).
        seed: u64,
    },
    /// Principals in groups of `group_size` share `intra` completely
    /// within the group; each group's representative (first member) shares
    /// `inter` with the next group's representative. Models the paper's
    /// "hierarchical" taxonomy entry.
    Hierarchical {
        /// Number of principals.
        n: usize,
        /// Members per group (last group may be smaller).
        group_size: usize,
        /// Share between every pair inside a group.
        intra: f64,
        /// Share between consecutive group representatives.
        inter: f64,
    },
    /// Complete graph with shares decaying by circular distance:
    /// `rates[d-1]` for distance `d`, `default` beyond the table. The
    /// paper's Figure 13 configuration is
    /// `rates = [0.20, 0.10, 0.05], default = 0.03`.
    DistanceDecay {
        /// Number of principals.
        n: usize,
        /// Share by circular distance (`rates[d-1]` for distance `d`).
        rates: Vec<f64>,
        /// Share beyond the table's reach.
        default: f64,
    },
}

impl Structure {
    /// The Figure 13 configuration: 20% one hour away, 10% two hours, 5%
    /// three hours, 3% further.
    pub fn figure13(n: usize) -> Self {
        Structure::DistanceDecay { n, rates: vec![0.20, 0.10, 0.05], default: 0.03 }
    }

    /// Materialize the structure as an agreement matrix.
    pub fn build(&self) -> Result<AgreementMatrix, FlowError> {
        match *self {
            Structure::Complete { n, share } => {
                let mut s = AgreementMatrix::zeros(n);
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            s.set(i, j, share)?;
                        }
                    }
                }
                Ok(s)
            }
            Structure::Loop { n, share, skip } => {
                let mut s = AgreementMatrix::zeros(n);
                if n > 1 {
                    let skip = skip % n;
                    let skip = if skip == 0 { 1 } else { skip };
                    for i in 0..n {
                        let j = (i + skip) % n;
                        if j != i {
                            s.set(i, j, share)?;
                        }
                    }
                }
                Ok(s)
            }
            Structure::SparseRandom { n, share, p, seed } => {
                if !(0.0..=1.0).contains(&p) {
                    return Err(FlowError::InvalidShare { value: p });
                }
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut s = AgreementMatrix::zeros(n);
                for i in 0..n {
                    for j in 0..n {
                        if i != j && rng.gen::<f64>() < p {
                            s.set(i, j, share)?;
                        }
                    }
                }
                Ok(s)
            }
            Structure::Hierarchical { n, group_size, intra, inter } => {
                if group_size == 0 {
                    return Err(FlowError::OutOfRange { index: 0, n });
                }
                let mut s = AgreementMatrix::zeros(n);
                let groups = n.div_ceil(group_size);
                for g in 0..groups {
                    let start = g * group_size;
                    let end = (start + group_size).min(n);
                    for i in start..end {
                        for j in start..end {
                            if i != j {
                                s.set(i, j, intra)?;
                            }
                        }
                    }
                }
                // Chain the groups through their representatives.
                if groups > 1 {
                    for g in 0..groups {
                        let rep = g * group_size;
                        let next_rep = ((g + 1) % groups) * group_size;
                        if rep != next_rep {
                            s.set(rep, next_rep, inter)?;
                        }
                    }
                }
                Ok(s)
            }
            Structure::DistanceDecay { n, ref rates, default } => {
                let mut s = AgreementMatrix::zeros(n);
                for i in 0..n {
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let fwd = (j + n - i) % n;
                        let d = fwd.min(n - fwd); // circular distance
                        let share = rates.get(d - 1).copied().unwrap_or(default);
                        s.set(i, j, share)?;
                    }
                }
                Ok(s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_structure_has_all_edges() {
        let s = Structure::Complete { n: 4, share: 0.1 }.build().unwrap();
        assert_eq!(s.num_edges(), 12);
        assert_eq!(s.get(1, 3), 0.1);
        assert_eq!(s.get(2, 2), 0.0);
    }

    #[test]
    fn loop_skip_one_is_a_ring() {
        let s = Structure::Loop { n: 5, share: 0.8, skip: 1 }.build().unwrap();
        assert_eq!(s.num_edges(), 5);
        for i in 0..5 {
            assert_eq!(s.get(i, (i + 1) % 5), 0.8);
        }
    }

    #[test]
    fn loop_skip_three_jumps() {
        let s = Structure::Loop { n: 10, share: 0.8, skip: 3 }.build().unwrap();
        assert_eq!(s.num_edges(), 10);
        assert_eq!(s.get(0, 3), 0.8);
        assert_eq!(s.get(9, 2), 0.8);
        assert_eq!(s.get(0, 1), 0.0);
    }

    #[test]
    fn loop_skip_zero_normalizes_to_one() {
        let s = Structure::Loop { n: 4, share: 0.5, skip: 0 }.build().unwrap();
        assert_eq!(s.get(0, 1), 0.5);
    }

    #[test]
    fn loop_on_single_node_is_empty() {
        let s = Structure::Loop { n: 1, share: 0.5, skip: 1 }.build().unwrap();
        assert_eq!(s.num_edges(), 0);
    }

    #[test]
    fn sparse_random_is_deterministic_per_seed() {
        let a = Structure::SparseRandom { n: 8, share: 0.2, p: 0.3, seed: 7 }.build().unwrap();
        let b = Structure::SparseRandom { n: 8, share: 0.2, p: 0.3, seed: 7 }.build().unwrap();
        assert_eq!(a, b);
        let c = Structure::SparseRandom { n: 8, share: 0.2, p: 0.3, seed: 8 }.build().unwrap();
        assert_ne!(a, c, "different seed should (almost surely) differ");
    }

    #[test]
    fn sparse_random_rejects_bad_probability() {
        assert!(Structure::SparseRandom { n: 4, share: 0.2, p: 1.5, seed: 0 }.build().is_err());
    }

    #[test]
    fn hierarchical_groups_are_complete_inside() {
        let s = Structure::Hierarchical { n: 6, group_size: 3, intra: 0.3, inter: 0.1 }
            .build()
            .unwrap();
        // Within group 0: 0,1,2 fully connected.
        assert_eq!(s.get(0, 1), 0.3);
        assert_eq!(s.get(2, 0), 0.3);
        // Across groups only reps 0 and 3 connect.
        assert_eq!(s.get(0, 3), 0.1);
        assert_eq!(s.get(3, 0), 0.1, "ring of two groups closes back");
        assert_eq!(s.get(1, 4), 0.0);
    }

    #[test]
    fn figure13_distance_decay_rates() {
        let s = Structure::figure13(10).build().unwrap();
        // Distance 1 neighbours (circular).
        assert_eq!(s.get(0, 1), 0.20);
        assert_eq!(s.get(0, 9), 0.20);
        assert_eq!(s.get(0, 2), 0.10);
        assert_eq!(s.get(0, 3), 0.05);
        assert_eq!(s.get(0, 4), 0.03);
        assert_eq!(s.get(0, 5), 0.03, "max circular distance on 10 nodes");
        // Symmetric by construction.
        assert_eq!(s.get(7, 0), s.get(0, 7));
    }

    #[test]
    fn figure13_row_sums_within_unity() {
        let s = Structure::figure13(10).build().unwrap();
        // 2*0.20 + 2*0.10 + 2*0.05 + 2*0.03 + 1*0.03 = 0.79 <= 1.
        s.validate_row_sums().unwrap();
        assert!((s.row_sum(0) - 0.79).abs() < 1e-12);
    }
}
