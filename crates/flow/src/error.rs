//! Error type for agreement-matrix construction.

use std::fmt;

/// Errors from building agreement matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// An index was outside the matrix dimension.
    OutOfRange {
        /// The offending index.
        index: usize,
        /// The matrix dimension.
        n: usize,
    },
    /// A share must lie in `[0, 1]` (relative) or be a non-negative finite
    /// quantity (absolute).
    InvalidShare {
        /// The rejected value.
        value: f64,
    },
    /// Diagonal entries must stay zero: a principal does not share with
    /// itself.
    DiagonalShare {
        /// The principal attempting to share with itself.
        index: usize,
    },
    /// The per-row share sum exceeded 1 while overdraft was disallowed.
    RowSumExceeded {
        /// The violating row (sharing principal).
        row: usize,
        /// Its total promised share.
        sum: f64,
    },
    /// Auto-partitioning was given unusable options.
    InvalidPartition {
        /// What was wrong with the request.
        reason: &'static str,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::OutOfRange { index, n } => {
                write!(f, "index {index} out of range for {n} principals")
            }
            FlowError::InvalidShare { value } => write!(f, "invalid share value {value}"),
            FlowError::DiagonalShare { index } => {
                write!(f, "principal {index} cannot share with itself")
            }
            FlowError::RowSumExceeded { row, sum } => {
                write!(f, "row {row} shares {sum:.4} > 1 with overdraft disallowed")
            }
            FlowError::InvalidPartition { reason } => {
                write!(f, "invalid partition request: {reason}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_specifics() {
        assert!(FlowError::OutOfRange { index: 5, n: 3 }.to_string().contains('5'));
        assert!(FlowError::RowSumExceeded { row: 2, sum: 1.5 }.to_string().contains("1.5"));
    }
}
