//! Structure-aware auto-partitioning of an agreement economy.
//!
//! The hierarchical scheduler (paper §3.2) needs a partition of principals
//! into groups plus a group-level *aggregate* agreement matrix. Until now
//! callers wrote both by hand, which does not survive past toy sizes: at
//! n = 1000 nobody is going to maintain a 125-group partition manually.
//! [`auto_partition`] derives both directly from the `AgreementMatrix`.
//!
//! # Heuristic
//!
//! A group should be a set of principals whose resources are mutually
//! reachable at (near) full strength — that is what lets the fine LP treat
//! every member's availability as available to every other member. We
//! therefore build an undirected graph with an edge `i ~ j` whenever the
//! *mutual* share `min(S[i][j], S[j][i])` reaches
//! [`PartitionOptions::min_mutual_share`], and take connected components.
//! One-directional links (e.g. the representative chain of
//! [`crate::Structure::Hierarchical`]) never merge groups: a group must be
//! symmetric to be refined symmetrically.
//!
//! Components larger than [`PartitionOptions::max_group_size`] are split
//! into consecutive chunks in ascending principal order, capping the fine
//! LP size (the whole point of the multigrid scheme is that no solve is
//! `O(n)`).
//!
//! # Determinism contract
//!
//! The output is a pure function of the matrix and options: groups are
//! ordered by their smallest member, members ascend within each group, and
//! the aggregate matrix is filled in that fixed order. Two runs — or two
//! federated sites — given the same economy derive the *same* partition,
//! which the differential test oracle (and the chaos suite) rely on.
//!
//! # Aggregate matrix
//!
//! For groups `g ≠ h`, the exported fraction is
//!
//! ```text
//! inter[g][h] = (Σ_{k ∈ g} max_{j ∈ h} S[k][j]) / |g|
//! ```
//!
//! i.e. each member of `g` can export at most its strongest single
//! agreement into `h`, and the group-level share is the availability-
//! weighted fraction under the uniform-availability assumption. For
//! uniform block structures (every member of `g` shares `β` with members
//! of `h`) this is exact: the group exports `β · V_g`. For ragged
//! structures it is a heuristic summary — the coarse LP splits draws
//! between groups, and the fine LP never exceeds true per-member
//! availability, so aggregate error costs optimality, not soundness.

use crate::error::FlowError;
use crate::matrix::AgreementMatrix;

/// Tuning knobs for [`auto_partition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionOptions {
    /// Minimum *mutual* share `min(S[i][j], S[j][i])` for two principals
    /// to be grouped together. Default `0.5`: the complete-sharing blocks
    /// of the paper's hierarchical taxonomy use intra shares near 1,
    /// while inter-group agreements sit well below one half.
    pub min_mutual_share: f64,
    /// Upper bound on group size; larger connected components are split
    /// into consecutive chunks. Default `64` keeps every fine LP small
    /// enough that its dense simplex stays cache-resident.
    pub max_group_size: usize,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions { min_mutual_share: 0.5, max_group_size: 64 }
    }
}

/// The result of [`auto_partition`]: a partition of `0..n` plus the
/// group-level aggregate agreement matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoPartition {
    /// Groups ordered by smallest member; members ascend within a group.
    pub groups: Vec<Vec<usize>>,
    /// `member_of[i]` is the group index of principal `i`.
    pub member_of: Vec<usize>,
    /// Group-level aggregate agreement matrix (`inter.n() == groups.len()`).
    pub inter: AgreementMatrix,
}

impl AutoPartition {
    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Extract the per-group intra agreement submatrices (in group order),
    /// re-indexed to local member positions. `TwoLevelGrm` hands one of
    /// these to each group-local GRM.
    pub fn intra_matrices(&self, s: &AgreementMatrix) -> Result<Vec<AgreementMatrix>, FlowError> {
        if s.n() != self.member_of.len() {
            return Err(FlowError::OutOfRange { index: s.n(), n: self.member_of.len() });
        }
        let mut out = Vec::with_capacity(self.groups.len());
        for members in &self.groups {
            let mut sub = AgreementMatrix::zeros(members.len());
            for (li, &i) in members.iter().enumerate() {
                for (lj, &j) in members.iter().enumerate() {
                    if li != lj {
                        let w = s.get(i, j);
                        if w > 0.0 {
                            sub.set(li, lj, w)?;
                        }
                    }
                }
            }
            out.push(sub);
        }
        Ok(out)
    }
}

/// Minimal union–find over `0..n` (path halving + union by size).
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big;
        self.size[big] += self.size[small];
    }
}

/// Derive a hierarchical partition and its aggregate inter-group matrix
/// from an agreement economy (see module docs for the heuristic and the
/// determinism contract).
///
/// Errors when `min_mutual_share` is not in `(0, 1]` or `max_group_size`
/// is zero.
pub fn auto_partition(
    s: &AgreementMatrix,
    opts: &PartitionOptions,
) -> Result<AutoPartition, FlowError> {
    if !(opts.min_mutual_share > 0.0 && opts.min_mutual_share <= 1.0) {
        return Err(FlowError::InvalidShare { value: opts.min_mutual_share });
    }
    if opts.max_group_size == 0 {
        return Err(FlowError::InvalidPartition { reason: "max_group_size must be at least 1" });
    }
    let n = s.n();

    // Connected components of the mutual-edge graph. `edges()` yields only
    // stored (nonzero) entries, so this is O(E α(n)), not O(n²).
    let mut uf = UnionFind::new(n);
    for (i, j, w) in s.edges() {
        if i < j && w.min(s.get(j, i)) >= opts.min_mutual_share {
            uf.union(i, j);
        }
    }

    // Bucket members by component, components ordered by smallest member
    // (first-seen while scanning ascending i), members ascending within.
    let mut bucket_of = vec![usize::MAX; n];
    let mut buckets: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let root = uf.find(i);
        let b = if bucket_of[root] == usize::MAX {
            bucket_of[root] = buckets.len();
            buckets.push(Vec::new());
            bucket_of[root]
        } else {
            bucket_of[root]
        };
        buckets[b].push(i);
    }

    // Size cap: split oversized components into consecutive ascending
    // chunks, preserving overall group order.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for bucket in buckets {
        if bucket.len() <= opts.max_group_size {
            groups.push(bucket);
        } else {
            for chunk in bucket.chunks(opts.max_group_size) {
                groups.push(chunk.to_vec());
            }
        }
    }

    let mut member_of = vec![usize::MAX; n];
    for (g, members) in groups.iter().enumerate() {
        for &m in members {
            member_of[m] = g;
        }
    }

    // Aggregate inter-group matrix: mean over members of g of the
    // strongest single agreement into h (exact for uniform blocks).
    let ng = groups.len();
    let mut inter = AgreementMatrix::zeros(ng);
    for g in 0..ng {
        for h in 0..ng {
            if g == h {
                continue;
            }
            let mut sum = 0.0;
            for &k in &groups[g] {
                let mut best = 0.0f64;
                for &j in &groups[h] {
                    best = best.max(s.get(k, j));
                }
                sum += best;
            }
            let share = sum / groups[g].len() as f64;
            if share > 0.0 {
                inter.set(g, h, share.min(1.0))?;
            }
        }
    }

    Ok(AutoPartition { groups, member_of, inter })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::Structure;

    /// Two blocks of 3 with intra share 1.0 and a uniform cross share β.
    fn two_block(beta: f64) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(6);
        for g in [0usize, 3] {
            for i in g..g + 3 {
                for j in g..g + 3 {
                    if i != j {
                        s.set(i, j, 1.0).unwrap();
                    }
                }
            }
        }
        for i in 0..3 {
            for j in 3..6 {
                s.set(i, j, beta).unwrap();
                s.set(j, i, beta).unwrap();
            }
        }
        s
    }

    #[test]
    fn detects_uniform_blocks_and_exact_aggregate() {
        let s = two_block(0.25);
        let p = auto_partition(&s, &PartitionOptions::default()).unwrap();
        assert_eq!(p.groups, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert_eq!(p.member_of, vec![0, 0, 0, 1, 1, 1]);
        assert!((p.inter.get(0, 1) - 0.25).abs() < 1e-12);
        assert!((p.inter.get(1, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mutual_threshold_requires_both_directions() {
        let mut s = AgreementMatrix::zeros(2);
        s.set(0, 1, 0.9).unwrap();
        // One-directional: no merge.
        let p = auto_partition(&s, &PartitionOptions::default()).unwrap();
        assert_eq!(p.num_groups(), 2);
        s.set(1, 0, 0.9).unwrap();
        let p = auto_partition(&s, &PartitionOptions::default()).unwrap();
        assert_eq!(p.num_groups(), 1);
    }

    #[test]
    fn hierarchical_structure_rep_links_do_not_merge_groups() {
        // Structure::Hierarchical wires group representatives into a
        // one-directional ring; the mutual-edge rule must keep the groups
        // apart.
        let s = Structure::Hierarchical { n: 12, group_size: 4, intra: 1.0, inter: 0.9 }
            .build()
            .unwrap();
        let p = auto_partition(&s, &PartitionOptions::default()).unwrap();
        assert_eq!(p.groups, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9, 10, 11]]);
    }

    #[test]
    fn size_cap_splits_components_in_ascending_chunks() {
        let s = Structure::Complete { n: 10, share: 1.0 }.build().unwrap();
        let p = auto_partition(&s, &PartitionOptions { min_mutual_share: 0.5, max_group_size: 4 })
            .unwrap();
        assert_eq!(p.groups, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
        // Chunks of one component share at full strength.
        assert!(p.inter.get(0, 1) >= 0.999);
    }

    #[test]
    fn isolated_principals_become_singletons() {
        let mut s = AgreementMatrix::zeros(4);
        s.set(0, 1, 1.0).unwrap();
        s.set(1, 0, 1.0).unwrap();
        let p = auto_partition(&s, &PartitionOptions::default()).unwrap();
        assert_eq!(p.groups, vec![vec![0, 1], vec![2], vec![3]]);
        assert_eq!(p.inter.get(1, 2), 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let s = Structure::SparseRandom { n: 24, share: 0.8, p: 0.15, seed: 7 }.build().unwrap();
        let a = auto_partition(&s, &PartitionOptions::default()).unwrap();
        let b = auto_partition(&s, &PartitionOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_options() {
        let s = AgreementMatrix::zeros(2);
        assert!(auto_partition(&s, &PartitionOptions { min_mutual_share: 0.0, max_group_size: 4 })
            .is_err());
        assert!(auto_partition(&s, &PartitionOptions { min_mutual_share: 1.5, max_group_size: 4 })
            .is_err());
        assert!(auto_partition(&s, &PartitionOptions { min_mutual_share: 0.5, max_group_size: 0 })
            .is_err());
    }

    #[test]
    fn intra_matrices_reindex_to_local_positions() {
        let s = two_block(0.25);
        let p = auto_partition(&s, &PartitionOptions::default()).unwrap();
        let intra = p.intra_matrices(&s).unwrap();
        assert_eq!(intra.len(), 2);
        for sub in &intra {
            assert_eq!(sub.n(), 3);
            for i in 0..3 {
                for j in 0..3 {
                    let want = if i == j { 0.0 } else { 1.0 };
                    assert_eq!(sub.get(i, j), want);
                }
            }
        }
        // Dimension mismatch is rejected.
        assert!(p.intra_matrices(&AgreementMatrix::zeros(5)).is_err());
    }
}
