//! Enumerating the agreement chains behind a transitive coefficient.
//!
//! `T[i][j]` aggregates many chains; when a federation member asks "how
//! does principal j get to use *my* resources?", the answer is the list
//! of chains `i → k₁ → … → j` with their share products. This module
//! materializes exactly that (the coefficient decomposition the DFS in
//! [`crate::transitive`] sums).
//!
//! ```
//! use agreements_flow::{chains_between, AgreementMatrix};
//!
//! let mut s = AgreementMatrix::zeros(3);
//! s.set(0, 1, 0.5).unwrap();
//! s.set(1, 2, 0.4).unwrap();
//! let chains = chains_between(&s, 0, 2, 2);
//! assert_eq!(chains[0].nodes, vec![0, 1, 2]);
//! assert!((chains[0].product - 0.2).abs() < 1e-12);
//! ```

use crate::matrix::AgreementMatrix;

/// One agreement chain from a source to a destination.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// Node sequence, starting at the source and ending at the
    /// destination (length ≥ 2).
    pub nodes: Vec<usize>,
    /// Product of the shares along the chain: the fraction of the
    /// source's availability this chain forwards.
    pub product: f64,
}

impl Chain {
    /// Number of agreement hops.
    pub fn hops(&self) -> usize {
        self.nodes.len() - 1
    }
}

/// All simple chains from `src` to `dst` within `max_level` hops, sorted
/// by descending product (the dominant routes first).
pub fn chains_between(s: &AgreementMatrix, src: usize, dst: usize, max_level: usize) -> Vec<Chain> {
    let n = s.n();
    if src >= n || dst >= n || src == dst {
        return Vec::new();
    }
    let max_level = max_level.min(n.saturating_sub(1)).max(1);
    // One adjacency build up front (targets ascending, zero shares
    // dropped) replaces an O(n) column scan at every DFS node; the visit
    // order — and with it the output order — is unchanged.
    let adj = crate::transitive::adjacency(s);
    let mut out = Vec::new();
    let mut visited = vec![false; n];
    let mut stack = vec![src];
    visited[src] = true;
    dfs(&adj, dst, max_level, 1.0, &mut stack, &mut visited, &mut out);
    out.sort_by(|a, b| b.product.partial_cmp(&a.product).expect("finite products"));
    out
}

fn dfs(
    adj: &[Vec<(usize, f64)>],
    dst: usize,
    levels_left: usize,
    product: f64,
    stack: &mut Vec<usize>,
    visited: &mut Vec<bool>,
    out: &mut Vec<Chain>,
) {
    if levels_left == 0 {
        return;
    }
    let node = *stack.last().expect("non-empty stack");
    for &(next, w) in &adj[node] {
        if visited[next] {
            continue;
        }
        let p = product * w;
        stack.push(next);
        if next == dst {
            out.push(Chain { nodes: stack.clone(), product: p });
        } else {
            visited[next] = true;
            dfs(adj, dst, levels_left - 1, p, stack, visited, out);
            visited[next] = false;
        }
        stack.pop();
    }
}

/// The sum of chain products equals the (unclamped) transitive
/// coefficient; exposed for cross-checking and reporting.
pub fn coefficient_from_chains(chains: &[Chain]) -> f64 {
    chains.iter().map(|c| c.product).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transitive::{TransitiveFlow, TransitiveOptions};

    fn matrix(n: usize, edges: &[(usize, usize, f64)]) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(n);
        for &(i, j, w) in edges {
            s.set(i, j, w).unwrap();
        }
        s
    }

    #[test]
    fn single_chain() {
        let s = matrix(3, &[(0, 1, 0.5), (1, 2, 0.4)]);
        let chains = chains_between(&s, 0, 2, 2);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].nodes, vec![0, 1, 2]);
        assert!((chains[0].product - 0.2).abs() < 1e-12);
        assert_eq!(chains[0].hops(), 2);
    }

    #[test]
    fn multiple_chains_sorted_by_product() {
        // Direct 0->2 at 0.1 plus 0->1->2 at 0.5*0.4 = 0.2.
        let s = matrix(3, &[(0, 2, 0.1), (0, 1, 0.5), (1, 2, 0.4)]);
        let chains = chains_between(&s, 0, 2, 2);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].nodes, vec![0, 1, 2], "dominant chain first");
        assert_eq!(chains[1].nodes, vec![0, 2]);
    }

    #[test]
    fn level_cap_prunes_long_chains() {
        let s = matrix(4, &[(0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9)]);
        assert!(chains_between(&s, 0, 3, 2).is_empty());
        let chains = chains_between(&s, 0, 3, 3);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].hops(), 3);
    }

    #[test]
    fn chains_sum_to_unclamped_coefficient() {
        // Dense graph: the decomposition must agree with the DFS total.
        let mut s = AgreementMatrix::zeros(5);
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    s.set(i, j, 0.05 + 0.03 * ((i + j) % 3) as f64).unwrap();
                }
            }
        }
        let t = TransitiveFlow::compute_with(
            &s,
            &TransitiveOptions { max_level: 4, clamp: false, min_product: 0.0 },
        );
        for i in 0..5 {
            for j in 0..5 {
                if i == j {
                    continue;
                }
                let chains = chains_between(&s, i, j, 4);
                let sum = coefficient_from_chains(&chains);
                assert!(
                    (sum - t.coefficient(i, j)).abs() < 1e-12,
                    "pair ({i},{j}): chains {sum} vs coefficient {}",
                    t.coefficient(i, j)
                );
            }
        }
    }

    #[test]
    fn degenerate_inputs_are_empty() {
        let s = matrix(3, &[(0, 1, 0.5)]);
        assert!(chains_between(&s, 0, 0, 2).is_empty(), "self");
        assert!(chains_between(&s, 9, 1, 2).is_empty(), "out of range");
        assert!(chains_between(&s, 1, 0, 2).is_empty(), "no reverse edge");
    }
}
