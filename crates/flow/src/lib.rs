//! Agreement matrices and transitive resource flow (paper §3.1–3.2).
//!
//! The enforcement model abstracts an economy of relative sharing
//! agreements into an `n × n` matrix `S`, where `S[i][j]` is the fraction
//! of principal `i`'s available resources shared with principal `j`.
//! Because agreements chain (A shares with B, B shares with D, so D can
//! transitively draw on A), the scheduler needs the *transitive flow
//! coefficients*
//!
//! ```text
//! T^(m)[i][j] = Σ over simple paths i → k₁ → … → k_{p-1} → j, p ≤ m
//!               of S[i][k₁]·S[k₁][k₂]···S[k_{p-1}][j]
//! ```
//!
//! so that the amount flowing from `i` to `j` through at most `m` levels of
//! agreements is `I^(m)[i][j] = V_i · T^(m)[i][j]` for current availability
//! `V_i`. The level cap `m` is the "transitivity level" swept in the
//! paper's Figures 8–11; `m = n − 1` is the full transitive closure.
//!
//! Extensions from §3.2, all provided here:
//! - **Overdraft clamping**: without the row-sum restriction
//!   `Σ_k S[i][k] ≤ 1`, chained shares can promise more of `i`'s resources
//!   than exist; clamping `K = min(T, 1)` restores soundness.
//! - **Absolute agreements**: a second matrix `A` of fixed quantities, with
//!   per-source saturation `U[k][i] = min(I[k][i] + A[k][i], V_k)`.
//! - **Capacity**: `C_i = V_i + Σ_{k≠i} U[k][i]` — everything principal `i`
//!   can reach directly or transitively.
//!
//! Common agreement graph shapes (complete, loop-with-skip, sparse random,
//! hierarchical, distance-decay) are provided by [`structures`].
//!
//! # Example
//!
//! ```
//! use agreements_flow::{AgreementMatrix, TransitiveFlow, capacities};
//!
//! // Three principals in a chain: 0 shares 50% with 1, 1 shares 50% with 2.
//! let mut s = AgreementMatrix::zeros(3);
//! s.set(0, 1, 0.5).unwrap();
//! s.set(1, 2, 0.5).unwrap();
//! let t = TransitiveFlow::compute(&s, 2); // full closure for n = 3
//! // 2 can draw 0.25 of 0's availability through the chain.
//! assert!((t.coefficient(0, 2) - 0.25).abs() < 1e-12);
//!
//! let v = [10.0, 10.0, 10.0];
//! let report = capacities(&t, None, &v);
//! assert!((report.capacity(2) - (10.0 + 5.0 + 2.5)).abs() < 1e-9);
//! ```

// Index-based loops are idiomatic for the dense matrix math in this
// crate; clippy's iterator rewrites would obscure the row/column algebra.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod capacity;
pub mod error;
pub mod incremental;
pub mod matrix;
pub mod partition;
pub mod paths;
pub mod structures;
pub mod transitive;

pub use capacity::{capacities, CapacityReport};
pub use error::FlowError;
pub use incremental::IncrementalFlow;
pub use matrix::{AbsoluteMatrix, AgreementMatrix};
pub use partition::{auto_partition, AutoPartition, PartitionOptions};
pub use paths::{chains_between, Chain};
pub use structures::Structure;
pub use transitive::{TransitiveFlow, TransitiveOptions};
