//! Incremental maintenance of the clamped transitive flow `K^(m)`.
//!
//! [`TransitiveFlow::compute`] enumerates simple paths from every source
//! — exact, but a full recompute on *every* agreement mutation, which is
//! what the GRM used to do on each `SetAgreement`. The key structural
//! fact making mutations cheap is that row `i` of `T` depends only on
//! the simple paths *starting* at `i`: after `set(from, to, share)`,
//! a row can change only if some simple path from its source uses the
//! mutated edge `(from, to)`, and any such path reaches `from` first.
//! So the dirty set is exactly
//!
//! > `{ src | src can reach `from` within level − 1 hops } ∪ { from }`
//!
//! computed by a reverse-reachability BFS over the predecessor lists.
//! Reachability *to* `from` never traverses an edge out of `from`
//! (a simple path ending at `from` visits it only once — at the end),
//! so the dirty set is the same whether it is computed on the graph
//! before or after the mutation, and rows outside it are untouched
//! bit-for-bit.
//!
//! Dirty rows are recomputed with an iterative DFS (explicit frame
//! stack, bitset `visited`) that visits edges in exactly the order of
//! the recursive reference walk in [`crate::transitive`], so the f64
//! accumulation sequence — and therefore every bit of the result — is
//! identical to a from-scratch [`TransitiveFlow::compute`]. Membership
//! changes (`grow`, `isolate`) change `n` or wipe whole rows *and*
//! columns; those fall back to a full recompute (again row-by-row via
//! the same walk).

use crate::error::FlowError;
use crate::matrix::AgreementMatrix;
use crate::transitive::{adjacency, TransitiveFlow};
use agreements_lp::Matrix;
use agreements_telemetry::{HistKind, Telemetry};
use std::sync::Arc;

/// A compact bit-per-node visited set; clearing is done by the walks
/// themselves on unwind, so reuse across rows never re-zeroes memory.
#[derive(Debug, Clone, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn resize(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0);
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 != 0
    }
}

/// One suspended DFS invocation: the node it sits at, the share product
/// accumulated on the way in, the hops it may still extend, and the
/// index of the next adjacency edge to try.
#[derive(Debug, Clone, Copy)]
struct Frame {
    node: usize,
    prod: f64,
    left: usize,
    edge: usize,
}

/// Incrementally maintained `K^(m) = min(T^(m), 1)` over a mutable
/// agreement matrix. Holds the agreements, the adjacency (and reverse
/// adjacency) lists, and the current clamped coefficient table;
/// [`IncrementalFlow::set`] recomputes only the dirty rows,
/// [`IncrementalFlow::grow`] / [`IncrementalFlow::isolate`] fall back
/// to a full recompute. [`IncrementalFlow::snapshot`] publishes the
/// table as a cached [`Arc<TransitiveFlow>`], so unchanged tables keep
/// their pointer identity (which the scheduler's skeleton cache keys
/// on).
#[derive(Debug, Clone)]
pub struct IncrementalFlow {
    s: AgreementMatrix,
    /// The *requested* level cap; the effective cap is re-derived from
    /// `n` exactly like [`TransitiveFlow::compute`] derives it.
    max_level: usize,
    adj: Vec<Vec<(usize, f64)>>,
    /// `radj[j]` = sources with a positive share into `j`, ascending.
    radj: Vec<Vec<usize>>,
    t: Matrix,
    snapshot: Option<Arc<TransitiveFlow>>,
    rows_recomputed: usize,
    full_recomputes: usize,
    visited: BitSet,
    stack: Vec<Frame>,
    dirty: Vec<usize>,
    queue: Vec<(usize, usize)>,
    row_buf: Vec<f64>,
    telemetry: Telemetry,
}

impl IncrementalFlow {
    /// Build from an initial agreement matrix (one full recompute).
    pub fn new(s: AgreementMatrix, max_level: usize) -> Self {
        let n = s.n();
        let mut inc = IncrementalFlow {
            s,
            max_level,
            adj: Vec::new(),
            radj: Vec::new(),
            t: Matrix::zeros(n, n),
            snapshot: None,
            rows_recomputed: 0,
            full_recomputes: 0,
            visited: BitSet::default(),
            stack: Vec::new(),
            dirty: Vec::new(),
            queue: Vec::new(),
            row_buf: Vec::new(),
            telemetry: Telemetry::default(),
        };
        inc.rebuild_all();
        inc.full_recomputes = 0;
        inc.rows_recomputed = 0;
        inc
    }

    /// Number of principals.
    #[inline]
    pub fn n(&self) -> usize {
        self.s.n()
    }

    /// The effective level cap, matching [`TransitiveFlow::compute`]:
    /// `max_level` clamped into `1..=n-1`.
    #[inline]
    pub fn level(&self) -> usize {
        self.max_level.min(self.n().saturating_sub(1)).max(1)
    }

    /// The current agreement matrix.
    pub fn agreements(&self) -> &AgreementMatrix {
        &self.s
    }

    /// The current clamped coefficient `K[i][j]`.
    #[inline]
    pub fn coefficient(&self, i: usize, j: usize) -> f64 {
        self.t[(i, j)]
    }

    /// Rows recomputed so far across all mutations (full recomputes
    /// count `n` rows each) — the observability hook behind the GRM's
    /// `flow_rows_recomputed` counter.
    pub fn rows_recomputed(&self) -> usize {
        self.rows_recomputed
    }

    /// How many mutations fell back to a full recompute.
    pub fn full_recomputes(&self) -> usize {
        self.full_recomputes
    }

    /// Attach a telemetry plane: each repair's dirty-row count feeds the
    /// `flow_dirty_rows` histogram. Disabled (no-op) by default.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Set `S[from][to] = share` and repair the flow table by
    /// recomputing only the dirty rows. Returns the number of rows
    /// recomputed. Validation (and its error taxonomy) is exactly
    /// [`AgreementMatrix::set`]'s; on error nothing changes.
    pub fn set(&mut self, from: usize, to: usize, share: f64) -> Result<usize, FlowError> {
        let n = self.s.n();
        let unchanged = from < n && to < n && self.s.get(from, to) == share;
        self.s.set(from, to, share)?;
        if unchanged {
            return Ok(0);
        }
        self.update_edge(from, to, share);
        self.snapshot = None;

        // Dirty rows: sources that reach `from` within level − 1 hops
        // (they need at least one hop left for the mutated edge), plus
        // `from` itself. BFS over predecessors; `visited` doubles as
        // the dedup set and is cleared behind us.
        let level = self.level();
        self.dirty.clear();
        self.queue.clear();
        self.visited.set(from);
        self.dirty.push(from);
        self.queue.push((from, 0));
        let mut head = 0;
        while head < self.queue.len() {
            let (node, depth) = self.queue[head];
            head += 1;
            if depth + 1 > level.saturating_sub(1) {
                continue;
            }
            for p in 0..self.radj[node].len() {
                let pred = self.radj[node][p];
                if !self.visited.get(pred) {
                    self.visited.set(pred);
                    self.dirty.push(pred);
                    self.queue.push((pred, depth + 1));
                }
            }
        }
        for i in 0..self.dirty.len() {
            self.visited.clear(self.dirty[i]);
        }

        let mut dirty = std::mem::take(&mut self.dirty);
        dirty.sort_unstable();
        for &src in &dirty {
            self.recompute_row(src, level);
        }
        let recomputed = dirty.len();
        self.dirty = dirty;
        self.rows_recomputed += recomputed;
        self.telemetry.add("flow.repairs", 1);
        self.telemetry.observe(HistKind::FlowDirtyRows, recomputed as f64);
        Ok(recomputed)
    }

    /// Admit a new principal (index `n`, no agreements yet) — full
    /// recompute, mirroring [`AgreementMatrix::grown`]. Returns the new
    /// principal's index.
    pub fn grow(&mut self) -> usize {
        self.s = self.s.grown();
        self.rebuild_all();
        self.s.n() - 1
    }

    /// Remove every agreement involving `i` — full recompute, mirroring
    /// [`AgreementMatrix::isolate`].
    pub fn isolate(&mut self, i: usize) -> Result<(), FlowError> {
        self.s.isolate(i)?;
        self.rebuild_all();
        Ok(())
    }

    /// The current table as a shared [`TransitiveFlow`]. Cached: calling
    /// twice without an intervening mutation returns the same `Arc`, so
    /// pointer-keyed caches (the allocation solver's skeleton) stay
    /// warm.
    pub fn snapshot(&mut self) -> Arc<TransitiveFlow> {
        if let Some(snap) = &self.snapshot {
            return Arc::clone(snap);
        }
        let snap = Arc::new(TransitiveFlow::from_parts(self.t.clone(), self.level(), true));
        self.snapshot = Some(Arc::clone(&snap));
        snap
    }

    /// Full rebuild: adjacency, reverse adjacency, and every row.
    fn rebuild_all(&mut self) {
        let n = self.s.n();
        self.adj = adjacency(&self.s);
        self.radj = vec![Vec::new(); n];
        for (i, edges) in self.adj.iter().enumerate() {
            for &(j, _) in edges {
                self.radj[j].push(i);
            }
        }
        self.t.reset(n, n);
        self.visited.resize(n);
        self.row_buf.clear();
        self.row_buf.resize(n, 0.0);
        let level = self.level();
        for src in 0..n {
            self.recompute_row(src, level);
        }
        self.rows_recomputed += n;
        self.full_recomputes += 1;
        self.snapshot = None;
    }

    /// Keep `adj`/`radj` in sync with one `set(from, to, share)`.
    fn update_edge(&mut self, from: usize, to: usize, share: f64) {
        let edges = &mut self.adj[from];
        let pos = edges.partition_point(|&(j, _)| j < to);
        let present = pos < edges.len() && edges[pos].0 == to;
        if share > 0.0 {
            if present {
                edges[pos].1 = share;
            } else {
                edges.insert(pos, (to, share));
                let preds = &mut self.radj[to];
                let p = preds.partition_point(|&i| i < from);
                preds.insert(p, from);
            }
        } else if present {
            edges.remove(pos);
            let preds = &mut self.radj[to];
            let p = preds.partition_point(|&i| i < from);
            preds.remove(p);
        }
    }

    /// Recompute row `src` from scratch with the iterative walk, then
    /// clamp it — bit-identical to the recursive reference DFS because
    /// edges are visited in the same order and products accumulate in
    /// the same sequence.
    fn recompute_row(&mut self, src: usize, level: usize) {
        let row = &mut self.row_buf;
        for v in row.iter_mut() {
            *v = 0.0;
        }
        let adj = &self.adj;
        let visited = &mut self.visited;
        let stack = &mut self.stack;
        stack.clear();
        visited.set(src);
        // The active invocation lives in locals; `stack` holds only the
        // suspended ancestors, so the hot edge loop touches no frame.
        let mut node = src;
        let mut prod = 1.0f64;
        let mut left = level;
        let mut edge = 0usize;
        'walk: loop {
            let edges = &adj[node];
            if left == 1 {
                // Deepest level: a child would have no hops left and
                // explore nothing, so descending is pure bookkeeping —
                // accumulate its single contribution directly. (The
                // reference walk marks the child visited, recurses into
                // an immediate return, and unmarks it; nothing reads the
                // mark in between, so skipping it is bit-identical.)
                while edge < edges.len() {
                    let (next, w) = edges[edge];
                    edge += 1;
                    if visited.get(next) {
                        continue;
                    }
                    let p = prod * w;
                    if p > 0.0 {
                        row[next] += p;
                    }
                }
            } else if left != 0 {
                while edge < edges.len() {
                    let (next, w) = edges[edge];
                    edge += 1;
                    if visited.get(next) {
                        continue;
                    }
                    let p = prod * w;
                    if p <= 0.0 {
                        continue;
                    }
                    row[next] += p;
                    visited.set(next);
                    stack.push(Frame { node, prod, left, edge });
                    node = next;
                    prod = p;
                    left -= 1;
                    edge = 0;
                    continue 'walk;
                }
            }
            // Exhausted (or hopless): unwind to the suspended parent.
            visited.clear(node);
            match stack.pop() {
                Some(f) => {
                    node = f.node;
                    prod = f.prod;
                    left = f.left;
                    edge = f.edge;
                }
                None => break,
            }
        }
        // §3.2 overdraft clamp, applied per entry exactly as
        // `clamp_matrix` does after a full compute.
        for v in row.iter_mut() {
            if *v > 1.0 {
                *v = 1.0;
            }
        }
        self.t.row_mut(src).copy_from_slice(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bit_identical(inc: &IncrementalFlow) {
        let full = TransitiveFlow::compute(inc.agreements(), inc.max_level);
        let n = inc.n();
        assert_eq!(full.n(), n);
        assert_eq!(full.level(), inc.level());
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    inc.coefficient(i, j).to_bits(),
                    full.coefficient(i, j).to_bits(),
                    "coefficient ({i},{j}) diverged from full recompute"
                );
            }
        }
    }

    #[test]
    fn initial_table_matches_full_compute() {
        let mut s = AgreementMatrix::zeros(5);
        s.set(0, 1, 0.5).unwrap();
        s.set(1, 2, 0.4).unwrap();
        s.set(2, 3, 0.9).unwrap();
        s.set(3, 0, 0.2).unwrap();
        let inc = IncrementalFlow::new(s, 4);
        assert_bit_identical(&inc);
    }

    #[test]
    fn single_edge_set_repairs_only_reachable_rows() {
        // Chain 0 -> 1 -> 2 -> 3; node 4 is isolated and must stay
        // untouched when the edge (2, 3) changes.
        let mut s = AgreementMatrix::zeros(5);
        s.set(0, 1, 0.5).unwrap();
        s.set(1, 2, 0.4).unwrap();
        s.set(2, 3, 0.9).unwrap();
        let mut inc = IncrementalFlow::new(s, 4);
        let rows = inc.set(2, 3, 0.1).unwrap();
        // Dirty = {0, 1} (reach 2) ∪ {2} — not 3 or 4.
        assert_eq!(rows, 3);
        assert_bit_identical(&inc);
    }

    #[test]
    fn edge_insert_and_remove_stay_consistent() {
        let mut s = AgreementMatrix::zeros(4);
        s.set(0, 1, 0.6).unwrap();
        s.set(1, 2, 0.5).unwrap();
        let mut inc = IncrementalFlow::new(s, 3);
        inc.set(2, 3, 0.8).unwrap();
        assert_bit_identical(&inc);
        inc.set(0, 1, 0.0).unwrap();
        assert_bit_identical(&inc);
        inc.set(3, 0, 1.0).unwrap();
        assert_bit_identical(&inc);
    }

    #[test]
    fn level_cap_bounds_the_dirty_set() {
        // Long chain, level 2: only nodes within 1 hop of the mutated
        // edge's tail are dirty.
        let mut s = AgreementMatrix::zeros(8);
        for i in 0..7 {
            s.set(i, i + 1, 0.5).unwrap();
        }
        let mut inc = IncrementalFlow::new(s, 2);
        let rows = inc.set(5, 6, 0.9).unwrap();
        assert_eq!(rows, 2, "only 4 (one hop back) and 5 itself");
        assert_bit_identical(&inc);
    }

    #[test]
    fn noop_set_recomputes_nothing_and_keeps_snapshot() {
        let mut s = AgreementMatrix::zeros(3);
        s.set(0, 1, 0.5).unwrap();
        let mut inc = IncrementalFlow::new(s, 2);
        let snap = inc.snapshot();
        assert_eq!(inc.set(0, 1, 0.5).unwrap(), 0);
        assert!(Arc::ptr_eq(&snap, &inc.snapshot()), "no-op keeps the cached Arc");
        assert!(inc.set(0, 0, 0.5).is_err(), "diagonal still rejected");
        assert!(inc.set(9, 1, 0.5).is_err(), "out of range still rejected");
        assert_bit_identical(&inc);
    }

    #[test]
    fn grow_and_isolate_full_recompute() {
        let mut s = AgreementMatrix::zeros(3);
        s.set(0, 1, 0.5).unwrap();
        s.set(1, 2, 0.4).unwrap();
        let mut inc = IncrementalFlow::new(s, 2);
        let newcomer = inc.grow();
        assert_eq!(newcomer, 3);
        assert_eq!(inc.n(), 4);
        assert_bit_identical(&inc);
        inc.set(2, newcomer, 0.3).unwrap();
        assert_bit_identical(&inc);
        inc.isolate(1).unwrap();
        assert_bit_identical(&inc);
        assert_eq!(inc.full_recomputes(), 2);
        assert!(inc.isolate(9).is_err());
    }

    #[test]
    fn snapshot_is_cached_until_mutation() {
        let mut s = AgreementMatrix::zeros(3);
        s.set(0, 1, 0.5).unwrap();
        let mut inc = IncrementalFlow::new(s, 2);
        let a = inc.snapshot();
        let b = inc.snapshot();
        assert!(Arc::ptr_eq(&a, &b));
        inc.set(1, 2, 0.2).unwrap();
        let c = inc.snapshot();
        assert!(!Arc::ptr_eq(&a, &c), "mutation must invalidate the snapshot");
        assert_eq!(c.coefficient(1, 2), inc.coefficient(1, 2));
    }

    #[test]
    fn dense_mutation_sequence_stays_bit_identical() {
        let mut s = AgreementMatrix::zeros(6);
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    s.set(i, j, 0.03 + 0.01 * ((i * 5 + j) % 7) as f64).unwrap();
                }
            }
        }
        let mut inc = IncrementalFlow::new(s, 5);
        let edits =
            [(0, 1, 0.09), (3, 4, 0.0), (4, 3, 0.11), (2, 5, 0.0), (5, 2, 0.08), (1, 0, 0.05)];
        for (i, j, w) in edits {
            inc.set(i, j, w).unwrap();
            assert_bit_identical(&inc);
        }
    }
}
