//! Small utilities shared across the workspace.
//!
//! The one resident so far is [`par_map`], the order-preserving
//! scoped-thread fan-out that used to be re-implemented by hand in the
//! flow closure, the hierarchical scheduler, the experiment sweeps, and
//! the GRM tests. It lives in its own leaf crate because those users
//! span both ends of the dependency graph.

#![warn(missing_docs)]

/// Apply `f` to every item on its own scoped thread and return the
/// outputs **in input order**. Spawning one thread per item is the right
/// trade for the workloads here — a handful of coarse jobs (simulator
/// sweeps, per-chunk DFS walks), not thousands of fine ones. Callers
/// that need bit-identical parallel/sequential results get it for free
/// as long as `f` itself is a pure function of its item: join order is
/// input order, so the collected vector never depends on scheduling.
///
/// Panics propagate: if any job panics, the scope unwinds after all
/// siblings are joined.
pub fn par_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items.into_iter().map(|item| scope.spawn(move |_| f(item))).collect();
        handles.into_iter().map(|h| h.join().expect("par_map thread")).collect()
    })
    .expect("par_map scope")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_under_uneven_work() {
        let items: Vec<usize> = (0..32).collect();
        let out = par_map(items.clone(), |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * i
        });
        let expected: Vec<usize> = items.iter().map(|&i| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn borrows_environment() {
        let base = [10, 20, 30];
        let out = par_map(vec![0usize, 1, 2], |i| base[i] + i);
        assert_eq!(out, vec![10, 21, 32]);
    }
}
