//! Structural-stability tests for the economy's persistent form: ids,
//! revocation state, and valuations must be stable under deep copies
//! (the serde derives mirror the struct fields exactly, so clone
//! equivalence is the in-crate proxy for (de)serialization equivalence;
//! the full JSON round-trip is exercised in the `agreements-cli` crate,
//! which owns the format dependency).

use agreements_ticket::{AgreementNature, Economy, ValuationMethod};

/// Build a moderately rich economy: two resources, virtual currency,
/// granting ticket, and a revoked ticket.
fn rich_economy() -> Economy {
    let mut eco = Economy::new();
    let disk = eco.add_resource("disk");
    let cpu = eco.add_resource("cpu");
    let a = eco.add_principal("A");
    let b = eco.add_principal("B");
    let c = eco.add_principal("C");
    let (ca, cb, cc) = (eco.default_currency(a), eco.default_currency(b), eco.default_currency(c));
    let a1 = eco.add_virtual_currency(a, "A_1");
    eco.set_face_total(ca, 500.0).unwrap();
    eco.deposit_resource(ca, disk, 12.0).unwrap();
    eco.deposit_resource(ca, cpu, 4.0).unwrap();
    eco.deposit_resource(cb, disk, 7.0).unwrap();
    eco.issue_relative(ca, a1, 100.0, AgreementNature::Sharing).unwrap();
    eco.issue_relative(a1, cc, 50.0, AgreementNature::Granting).unwrap();
    let revoked = eco.issue_absolute(cb, cc, disk, 2.0, AgreementNature::Sharing).unwrap();
    eco.revoke(revoked).unwrap();
    eco
}

#[test]
fn valuations_stable_under_deep_copy() {
    let eco = rich_economy();
    let copy = eco.clone();
    for r in 0..eco.num_resources() {
        let rid = agreements_ticket::ResourceId::from_index(r);
        let v1 = eco.value_report_with(rid, ValuationMethod::Exact).unwrap();
        let v2 = copy.value_report_with(rid, ValuationMethod::Exact).unwrap();
        for c in eco.currencies() {
            assert_eq!(v1.currency_value(c.id), v2.currency_value(c.id));
            assert_eq!(v1.net_value(c.id), v2.net_value(c.id));
        }
    }
}

#[test]
fn revocation_state_and_ids_are_stable() {
    let eco = rich_economy();
    let copy = eco.clone();
    for (t1, t2) in eco.tickets().iter().zip(copy.tickets()) {
        assert_eq!(t1.id, t2.id);
        assert_eq!(t1.active, t2.active);
        assert_eq!(t1.nature, t2.nature);
    }
    let revoked: Vec<_> = eco.tickets().iter().filter(|t| !t.active).collect();
    assert_eq!(revoked.len(), 1);
}

#[test]
fn currency_links_are_consistent() {
    // Every ticket id recorded on a currency must resolve, and the
    // back-references must agree with the tickets' own fields.
    let eco = rich_economy();
    for c in eco.currencies() {
        for &t in &c.backed_by {
            assert_eq!(eco.ticket(t).unwrap().backing, c.id);
        }
        for &t in &c.issued {
            assert_eq!(eco.ticket(t).unwrap().issuer, Some(c.id));
        }
    }
}
