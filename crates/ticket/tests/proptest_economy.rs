//! Property tests on economy valuation invariants.

use agreements_ticket::{AgreementNature, Economy, EconomyError, ValuationMethod};
use proptest::prelude::*;

/// Build a random economy: `n` principals each with a deposit, plus a set
/// of relative sharing agreements whose per-currency total face stays
/// under 100% (guaranteeing convergent valuation).
fn arb_economy() -> impl Strategy<Value = (Economy, usize)> {
    (2usize..=6).prop_flat_map(|n| {
        let deposits = proptest::collection::vec(1u32..=1000, n);
        // For each ordered pair (i, j), an optional share portion. We later
        // normalize so each issuer's total face stays <= 90.
        let shares = proptest::collection::vec(0u32..=50, n * n);
        (Just(n), deposits, shares).prop_map(|(n, deposits, shares)| {
            let mut eco = Economy::new();
            let r = eco.add_resource("res");
            let ps: Vec<_> = (0..n).map(|i| eco.add_principal(&format!("P{i}"))).collect();
            for (i, &d) in deposits.iter().enumerate() {
                eco.deposit_resource(eco.default_currency(ps[i]), r, d as f64).unwrap();
            }
            for i in 0..n {
                let row = &shares[i * n..(i + 1) * n];
                let total: u32 =
                    row.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &s)| s).sum();
                if total == 0 {
                    continue;
                }
                // Scale so the row sums to <= 90 face units (of 100).
                let scale = if total > 90 { 90.0 / total as f64 } else { 1.0 };
                for j in 0..n {
                    if i == j || row[j] == 0 {
                        continue;
                    }
                    let face = row[j] as f64 * scale;
                    if face <= 0.0 {
                        continue;
                    }
                    eco.issue_relative(
                        eco.default_currency(ps[i]),
                        eco.default_currency(ps[j]),
                        face,
                        AgreementNature::Sharing,
                    )
                    .unwrap();
                }
            }
            (eco, n)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Currency values are always non-negative and at least the currency's
    /// own absolute backing.
    #[test]
    fn values_dominate_own_deposits((eco, n) in arb_economy()) {
        let r = agreements_ticket::ResourceId::from_index(0);
        let v = eco.value_report(r).unwrap();
        for p in eco.principal_ids() {
            let c = eco.default_currency(p);
            let own: f64 = eco
                .tickets()
                .iter()
                .filter(|t| t.active && t.is_deposit() && t.backing == c)
                .map(|t| match t.value {
                    agreements_ticket::TicketValue::Absolute { amount, .. } => amount,
                    _ => 0.0,
                })
                .sum();
            prop_assert!(v.currency_value(c) >= own - 1e-9,
                "currency {c:?} value {} below own deposits {}", v.currency_value(c), own);
            prop_assert!(v.currency_value(c).is_finite());
        }
        let _ = n;
    }

    /// Exact and fixed-point valuations agree.
    #[test]
    fn exact_matches_fixpoint((eco, _n) in arb_economy()) {
        let r = agreements_ticket::ResourceId::from_index(0);
        let exact = eco.value_report_with(r, ValuationMethod::Exact).unwrap();
        let fix = eco
            .value_report_with(r, ValuationMethod::FixedPoint { max_iters: 100_000, tol: 1e-13 })
            .unwrap();
        for c in eco.currencies() {
            let (a, b) = (exact.currency_value(c.id), fix.currency_value(c.id));
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()),
                "exact {a} vs fixpoint {b} for {:?}", c.id);
        }
    }

    /// Adding one more sharing agreement never decreases any currency's
    /// gross value (monotonicity of the funding graph).
    #[test]
    fn sharing_is_monotone((mut eco, n) in arb_economy(), from in 0usize..6, to in 0usize..6) {
        let from = from % n;
        let to = to % n;
        prop_assume!(from != to);
        let r = agreements_ticket::ResourceId::from_index(0);
        let before = eco.value_report(r).unwrap();
        let cf = eco.default_currency(agreements_ticket::PrincipalId::from_index(from));
        let ct = eco.default_currency(agreements_ticket::PrincipalId::from_index(to));
        // Small extra share; may push the issuer into overdraft, which the
        // economy permits (enforcement clamps later), but valuation can
        // diverge if a cycle reaches gain 1 - skip those cases.
        eco.issue_relative(cf, ct, 5.0, AgreementNature::Sharing).unwrap();
        let after = match eco.value_report(r) {
            Ok(v) => v,
            Err(EconomyError::DivergentValuation { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };
        for c in eco.currencies() {
            prop_assert!(
                after.currency_value(c.id) >= before.currency_value(c.id) - 1e-9,
                "value of {:?} dropped {} -> {}",
                c.id, before.currency_value(c.id), after.currency_value(c.id)
            );
        }
    }

    /// Revoking the ticket just issued restores all values exactly.
    #[test]
    fn issue_then_revoke_is_identity((mut eco, n) in arb_economy(), from in 0usize..6, to in 0usize..6) {
        let from = from % n;
        let to = to % n;
        prop_assume!(from != to);
        let r = agreements_ticket::ResourceId::from_index(0);
        let before = eco.value_report(r).unwrap();
        let cf = eco.default_currency(agreements_ticket::PrincipalId::from_index(from));
        let ct = eco.default_currency(agreements_ticket::PrincipalId::from_index(to));
        let t = eco.issue_relative(cf, ct, 7.0, AgreementNature::Sharing).unwrap();
        eco.revoke(t).unwrap();
        let after = eco.value_report(r).unwrap();
        for c in eco.currencies() {
            prop_assert!((after.currency_value(c.id) - before.currency_value(c.id)).abs() < 1e-12);
        }
    }

    /// Scaling a currency's face total together with all its issued faces
    /// leaves every real value unchanged (denomination independence).
    #[test]
    fn denomination_is_arbitrary((eco, _n) in arb_economy(), scale_num in 1u32..=8) {
        let scale = scale_num as f64;
        let r = agreements_ticket::ResourceId::from_index(0);
        let before = eco.value_report(r).unwrap();
        // Rebuild with every face and face_total multiplied by `scale` for
        // currency 0.
        let mut eco2 = Economy::new();
        let _ = eco2.add_resource("res");
        for p in eco.principal_ids() {
            eco2.add_principal(eco.principal_name(p));
        }
        let target = eco.currencies()[0].id;
        for c in eco.currencies() {
            let ft = if c.id == target { c.face_total * scale } else { c.face_total };
            eco2.set_face_total(c.id, ft).unwrap();
        }
        for t in eco.tickets() {
            if !t.active {
                continue;
            }
            match t.value {
                agreements_ticket::TicketValue::Absolute { resource, amount } => {
                    match t.issuer {
                        None => {
                            eco2.deposit_resource(t.backing, resource, amount).unwrap();
                        }
                        Some(from) => {
                            eco2.issue_absolute(from, t.backing, resource, amount, t.nature)
                                .unwrap();
                        }
                    }
                }
                agreements_ticket::TicketValue::Relative { face } => {
                    let from = t.issuer.unwrap();
                    let f = if from == target { face * scale } else { face };
                    eco2.issue_relative(from, t.backing, f, t.nature).unwrap();
                }
            }
        }
        let after = eco2.value_report(r).unwrap();
        for c in eco.currencies() {
            let (a, b) = (before.currency_value(c.id), after.currency_value(c.id));
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()),
                "denomination changed value of {:?}: {a} vs {b}", c.id);
        }
    }
}
