//! Property tests for atomic batches and resource views.

use agreements_ticket::{AgreementNature, CurrencyId, Economy, Op, ResourceId, ViewRegistry};
use proptest::prelude::*;

/// A random op over a 3-principal, 1-resource economy (indices may be
/// invalid on purpose — that's what atomicity must survive).
fn arb_op() -> impl Strategy<Value = Op> {
    let cur = || (0usize..5).prop_map(CurrencyId::from_index);
    let res = || (0usize..2).prop_map(ResourceId::from_index);
    prop_oneof![
        (cur(), -10.0f64..200.0)
            .prop_map(|(currency, face_total)| Op::SetFaceTotal { currency, face_total }),
        (cur(), res(), -5.0f64..50.0).prop_map(|(into, resource, amount)| Op::Deposit {
            into,
            resource,
            amount
        }),
        (cur(), cur(), -5.0f64..80.0).prop_map(|(from, to, face)| Op::IssueRelative {
            from,
            to,
            face,
            nature: AgreementNature::Sharing,
        }),
        (cur(), cur(), res(), 0.1f64..20.0).prop_map(|(from, to, resource, amount)| {
            Op::IssueAbsolute { from, to, resource, amount, nature: AgreementNature::Granting }
        }),
    ]
}

fn base_economy() -> Economy {
    let mut eco = Economy::new();
    let r = eco.add_resource("res");
    for name in ["A", "B", "C"] {
        let p = eco.add_principal(name);
        eco.deposit_resource(eco.default_currency(p), r, 10.0).unwrap();
    }
    eco
}

/// Digest of an economy's observable state.
fn digest(eco: &Economy) -> Vec<(u64, bool)> {
    eco.tickets()
        .iter()
        .map(|t| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            use std::hash::{Hash, Hasher};
            format!("{t:?}").hash(&mut h);
            (h.finish(), t.active)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A batch either fully applies (matching sequential application) or
    /// leaves the economy byte-for-byte unchanged.
    #[test]
    fn batches_are_atomic(ops in proptest::collection::vec(arb_op(), 0..6)) {
        let mut batched = base_economy();
        let before = digest(&batched);
        let outcome = batched.apply_batch(&ops);

        let mut sequential = base_economy();
        let mut seq_err = None;
        for (i, op) in ops.iter().enumerate() {
            let r = match op {
                Op::SetFaceTotal { currency, face_total } => {
                    sequential.set_face_total(*currency, *face_total).map(|_| ())
                }
                Op::Deposit { into, resource, amount } => {
                    sequential.deposit_resource(*into, *resource, *amount).map(|_| ())
                }
                Op::IssueAbsolute { from, to, resource, amount, nature } => sequential
                    .issue_absolute(*from, *to, *resource, *amount, *nature)
                    .map(|_| ()),
                Op::IssueRelative { from, to, face, nature } => {
                    sequential.issue_relative(*from, *to, *face, *nature).map(|_| ())
                }
                Op::Revoke { ticket } => sequential.revoke(*ticket),
            };
            if let Err(e) = r {
                seq_err = Some((i, e));
                break;
            }
        }

        match (outcome, seq_err) {
            (Ok(out), None) => {
                prop_assert_eq!(out.tickets.len(), ops.len());
                prop_assert_eq!(digest(&batched), digest(&sequential),
                    "batch and sequential agree when everything succeeds");
            }
            (Err(be), Some((i, e))) => {
                prop_assert_eq!(be.index, i, "same failing op");
                prop_assert_eq!(be.error, e, "same error");
                prop_assert_eq!(digest(&batched), before, "batch rolled back");
            }
            (ok, seq) => {
                prop_assert!(false, "divergence: batch {ok:?} vs sequential {seq:?}");
            }
        }
    }

    /// View valuations scale linearly with the factor and agree with the
    /// base report.
    #[test]
    fn view_values_scale_linearly(deposit in 1.0f64..500.0, factor in 0.01f64..10.0) {
        let mut eco = Economy::new();
        let base = eco.add_resource("base");
        let view = eco.add_resource("view");
        let mut views = ViewRegistry::new();
        views.register(view, base, factor).unwrap();
        let a = eco.add_principal("A");
        let ca = eco.default_currency(a);
        eco.deposit_resource(ca, base, deposit).unwrap();
        let base_value = eco.value_report(base).unwrap().currency_value(ca);
        let view_value = views.currency_value_in_view(&eco, view, ca).unwrap();
        prop_assert!((view_value - base_value * factor).abs() < 1e-9 * (1.0 + view_value));
    }
}
