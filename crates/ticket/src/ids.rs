//! Typed identifiers for economy entities.
//!
//! All entities live in arena-style registries inside
//! [`crate::economy::Economy`]; these newtypes keep indices from being
//! mixed up across registries at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
            Serialize, Deserialize,
        )]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Raw index into the owning registry.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a raw index. Intended for (de)serialization
            /// and test fixtures; indices must come from the same
            /// [`crate::economy::Economy`] that will interpret them.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $tag, self.0)
            }
        }
    };
}

id_type!(
    /// A participating principal (organization, user, proxy, ...).
    PrincipalId, "P"
);
id_type!(
    /// A kind of resource (CPU seconds, disk TB, network bandwidth, ...).
    ResourceId, "R"
);
id_type!(
    /// A currency: default per-principal or virtual.
    CurrencyId, "C"
);
id_type!(
    /// A ticket: absolute or relative, funding some currency.
    TicketId, "T"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_tag() {
        assert_eq!(PrincipalId(3).to_string(), "P3");
        assert_eq!(ResourceId(0).to_string(), "R0");
        assert_eq!(CurrencyId(7).to_string(), "C7");
        assert_eq!(TicketId(12).to_string(), "T12");
    }

    #[test]
    fn index_round_trip() {
        let c = CurrencyId::from_index(42);
        assert_eq!(c.index(), 42);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(TicketId(1));
        s.insert(TicketId(1));
        s.insert(TicketId(2));
        assert_eq!(s.len(), 2);
        assert!(TicketId(1) < TicketId(2));
    }
}
