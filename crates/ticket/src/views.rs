//! Multiple views of one resource (paper §2.2, flagged there as future
//! work):
//!
//! > "this mechanism can be extended to handle multiple views of the same
//! > resources by enabling resources backing multiple ticket types. This
//! > is useful in several situations. For example, the disk bandwidth
//! > resource can be viewed as two kinds of resources: read bandwidth and
//! > write bandwidth."
//!
//! A **view** is a derived resource kind: every unit of the base resource
//! provides `factor` units of the view. Deposits and absolute tickets
//! denominated in the base automatically value in each of its views;
//! tickets can also be denominated directly in a view (e.g. "share 3
//! GB/s of *read* bandwidth"), which affects only that view.
//!
//! ```
//! use agreements_ticket::{Economy, ViewRegistry};
//!
//! let mut eco = Economy::new();
//! let bw = eco.add_resource("disk-bw");
//! let read = eco.add_resource("disk-read");
//! let mut views = ViewRegistry::new();
//! views.register(read, bw, 1.0).unwrap();
//! let a = eco.add_principal("A");
//! let ca = eco.default_currency(a);
//! eco.deposit_resource(ca, bw, 100.0).unwrap();
//! assert_eq!(views.currency_value_in_view(&eco, read, ca).unwrap(), 100.0);
//! ```

use crate::economy::Economy;
use crate::error::EconomyError;
use crate::ids::ResourceId;
use serde::{Deserialize, Serialize};

/// A registered view of a base resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceView {
    /// The derived resource id (usable anywhere a resource id is).
    pub view: ResourceId,
    /// The base resource it derives from.
    pub base: ResourceId,
    /// Units of the view per unit of the base.
    pub factor: f64,
}

/// Registry of views, kept alongside an [`Economy`].
///
/// Views are deliberately a layer *above* the economy: the economy's
/// valuation stays single-kind and exact, and a [`ViewRegistry`] answers
/// view-kind questions by combining base and view-denominated reports.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ViewRegistry {
    views: Vec<ResourceView>,
}

impl ViewRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `view` as a view of `base` at `factor` units per base
    /// unit. The view resource must already exist in the economy (create
    /// it with [`Economy::add_resource`]).
    pub fn register(
        &mut self,
        view: ResourceId,
        base: ResourceId,
        factor: f64,
    ) -> Result<(), EconomyError> {
        if !factor.is_finite() {
            return Err(EconomyError::NotFinite { what: "view factor" });
        }
        if factor <= 0.0 {
            return Err(EconomyError::NonPositive { what: "view factor", value: factor });
        }
        if view == base {
            return Err(EconomyError::NonPositive {
                what: "view must differ from its base; factor",
                value: factor,
            });
        }
        // A view of a view is resolved at registration time so lookups
        // stay one level deep.
        let (base, factor) = match self.lookup(base) {
            Some(v) => (v.base, v.factor * factor),
            None => (base, factor),
        };
        if let Some(existing) = self.lookup(view) {
            let _ = existing;
            return Err(EconomyError::NonPositive {
                what: "view already registered; factor",
                value: factor,
            });
        }
        self.views.push(ResourceView { view, base, factor });
        Ok(())
    }

    /// The view record for a resource, if it is a registered view.
    pub fn lookup(&self, r: ResourceId) -> Option<ResourceView> {
        self.views.iter().copied().find(|v| v.view == r)
    }

    /// All views registered over `base`.
    pub fn views_of(&self, base: ResourceId) -> impl Iterator<Item = ResourceView> + '_ {
        self.views.iter().copied().filter(move |v| v.base == base)
    }

    /// Value a currency in view units: `factor ×` its base-resource value
    /// plus anything denominated directly in the view kind.
    pub fn currency_value_in_view(
        &self,
        eco: &Economy,
        view: ResourceId,
        currency: crate::ids::CurrencyId,
    ) -> Result<f64, EconomyError> {
        match self.lookup(view) {
            None => Ok(eco.value_report(view)?.currency_value(currency)),
            Some(v) => {
                let base_part = eco.value_report(v.base)?.currency_value(currency) * v.factor;
                let direct_part = eco.value_report(view)?.currency_value(currency);
                Ok(base_part + direct_part)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::AgreementNature::Sharing;

    /// Disk bandwidth split into read and write views.
    fn setup() -> (Economy, ViewRegistry, ResourceId, ResourceId, ResourceId) {
        let mut eco = Economy::new();
        let bw = eco.add_resource("disk-bw-MBps");
        let read = eco.add_resource("disk-read-MBps");
        let write = eco.add_resource("disk-write-MBps");
        let mut views = ViewRegistry::new();
        views.register(read, bw, 1.0).unwrap();
        // Writes cost double the raw bandwidth: half a write unit per
        // base unit.
        views.register(write, bw, 0.5).unwrap();
        (eco, views, bw, read, write)
    }

    #[test]
    fn base_deposits_value_in_every_view() {
        let (mut eco, views, bw, read, write) = setup();
        let a = eco.add_principal("A");
        let ca = eco.default_currency(a);
        eco.deposit_resource(ca, bw, 100.0).unwrap();
        assert_eq!(views.currency_value_in_view(&eco, read, ca).unwrap(), 100.0);
        assert_eq!(views.currency_value_in_view(&eco, write, ca).unwrap(), 50.0);
        // The base itself still values normally.
        assert_eq!(views.currency_value_in_view(&eco, bw, ca).unwrap(), 100.0);
    }

    #[test]
    fn view_denominated_tickets_affect_only_their_view() {
        let (mut eco, views, bw, read, write) = setup();
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, bw, 100.0).unwrap();
        // A gives B 30 units of *read* bandwidth specifically.
        eco.issue_absolute(ca, cb, read, 30.0, Sharing).unwrap();
        assert_eq!(views.currency_value_in_view(&eco, read, cb).unwrap(), 30.0);
        assert_eq!(views.currency_value_in_view(&eco, write, cb).unwrap(), 0.0);
    }

    #[test]
    fn relative_tickets_flow_through_views() {
        let (mut eco, views, bw, read, write) = setup();
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, bw, 100.0).unwrap();
        eco.issue_relative(ca, cb, 40.0, Sharing).unwrap(); // 40% of A
                                                            // B holds 40% of A's base bandwidth -> 40 read units, 20 write.
        assert_eq!(views.currency_value_in_view(&eco, read, cb).unwrap(), 40.0);
        assert_eq!(views.currency_value_in_view(&eco, write, cb).unwrap(), 20.0);
    }

    #[test]
    fn view_of_view_resolves_to_base() {
        let mut eco = Economy::new();
        let bw = eco.add_resource("bw");
        let read = eco.add_resource("read");
        let cached_read = eco.add_resource("cached-read");
        let mut views = ViewRegistry::new();
        views.register(read, bw, 0.5).unwrap();
        views.register(cached_read, read, 4.0).unwrap();
        let v = views.lookup(cached_read).unwrap();
        assert_eq!(v.base, bw, "chain collapsed to the true base");
        assert_eq!(v.factor, 2.0, "0.5 * 4.0");
    }

    #[test]
    fn registration_validation() {
        let mut eco = Economy::new();
        let bw = eco.add_resource("bw");
        let read = eco.add_resource("read");
        let mut views = ViewRegistry::new();
        assert!(views.register(read, bw, 0.0).is_err());
        assert!(views.register(read, bw, f64::NAN).is_err());
        assert!(views.register(bw, bw, 1.0).is_err());
        views.register(read, bw, 1.0).unwrap();
        assert!(views.register(read, bw, 2.0).is_err(), "double registration");
    }

    #[test]
    fn views_of_enumerates() {
        let (_eco, views, bw, read, write) = setup();
        let of_bw: Vec<_> = views.views_of(bw).map(|v| v.view).collect();
        assert_eq!(of_bw, vec![read, write]);
    }
}
