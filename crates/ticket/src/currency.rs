//! Currency entities: denomination and funding bookkeeping.

use crate::ids::{CurrencyId, PrincipalId, TicketId};
use serde::{Deserialize, Serialize};

/// A currency denominates tickets. Default currencies belong to a
/// principal and represent "all of that principal's resources"; virtual
/// currencies (paper Example 2) carve out an isolated sub-budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Currency {
    /// Registry identifier.
    pub id: CurrencyId,
    /// Human-readable name ("B", "A_1", ...).
    pub name: String,
    /// Owning principal. Virtual currencies also have an owner (their
    /// creator); the distinction is [`Currency::is_virtual`].
    pub owner: PrincipalId,
    /// Whether this is a virtual (non-default) currency.
    pub is_virtual: bool,
    /// Total face units in circulation. Issuing more face units than this
    /// "inflates" the currency: every outstanding relative ticket's real
    /// value shrinks proportionally (paper §2.2). Must be positive.
    pub face_total: f64,
    /// Tickets funding this currency.
    pub backed_by: Vec<TicketId>,
    /// Tickets this currency has issued.
    pub issued: Vec<TicketId>,
}

impl Currency {
    /// Sum of face values of currently issued, active, relative tickets.
    /// If this exceeds `face_total` the currency is *overdrawn*: it has
    /// promised more shares than it has units. The economy permits this
    /// (the enforcement layer clamps transitive flow, paper §3.2) but
    /// flags it.
    pub fn issued_face(&self, face_of: impl Fn(TicketId) -> Option<f64>) -> f64 {
        self.issued.iter().filter_map(|&t| face_of(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issued_face_sums_only_known_tickets() {
        let c = Currency {
            id: CurrencyId(0),
            name: "A".into(),
            owner: PrincipalId(0),
            is_virtual: false,
            face_total: 100.0,
            backed_by: vec![],
            issued: vec![TicketId(0), TicketId(1), TicketId(2)],
        };
        // Ticket 1 is "not relative/active" per the closure.
        let total = c.issued_face(|t| if t == TicketId(1) { None } else { Some(10.0) });
        assert_eq!(total, 20.0);
    }
}
