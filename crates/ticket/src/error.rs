//! Error type for economy operations.

use crate::ids::{CurrencyId, TicketId};
use std::fmt;

/// Errors from building or valuing an economy.
#[derive(Debug, Clone, PartialEq)]
pub enum EconomyError {
    /// Referenced an unknown currency.
    UnknownCurrency(CurrencyId),
    /// Referenced an unknown ticket (or one from a different economy).
    UnknownTicket(TicketId),
    /// A face value, amount, or face total that must be positive was not.
    NonPositive {
        /// What quantity was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A value that must be finite was NaN or infinite.
    NotFinite {
        /// What quantity was rejected.
        what: &'static str,
    },
    /// A ticket was already revoked.
    AlreadyRevoked(TicketId),
    /// Self-funding agreement: a currency may not issue a ticket backing
    /// itself.
    SelfBacking(CurrencyId),
    /// Valuation failed to converge: the relative-funding cycle feeds back
    /// 100% or more of value (e.g. A shares 100% with B and B shares 100%
    /// with A), making currency values ill-defined.
    DivergentValuation {
        /// Largest per-currency outgoing relative weight (>= 1 permits
        /// non-convergent cycles).
        spectral_hint: f64,
    },
}

impl fmt::Display for EconomyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EconomyError::UnknownCurrency(c) => write!(f, "unknown currency {c}"),
            EconomyError::UnknownTicket(t) => write!(f, "unknown ticket {t}"),
            EconomyError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            EconomyError::NotFinite { what } => write!(f, "{what} must be finite"),
            EconomyError::AlreadyRevoked(t) => write!(f, "ticket {t} already revoked"),
            EconomyError::SelfBacking(c) => {
                write!(f, "currency {c} may not issue a ticket backing itself")
            }
            EconomyError::DivergentValuation { spectral_hint } => write!(
                f,
                "currency valuation diverges: relative funding cycle gain ≈ {spectral_hint:.3}"
            ),
        }
    }
}

impl std::error::Error for EconomyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_entity() {
        assert!(EconomyError::UnknownCurrency(CurrencyId(5)).to_string().contains("C5"));
        assert!(EconomyError::UnknownTicket(TicketId(9)).to_string().contains("T9"));
        assert!(EconomyError::NonPositive { what: "face", value: -1.0 }
            .to_string()
            .contains("face"));
    }
}
