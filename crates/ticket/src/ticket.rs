//! Ticket entities: the quanta of resource rights.

use crate::ids::{CurrencyId, ResourceId, TicketId};
use serde::{Deserialize, Serialize};

/// Whether the grantor retains the right to use the resource covered by an
/// agreement (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgreementNature {
    /// Both grantor and grantee may use the resource; the grantor's own
    /// capacity is unchanged by issuing the ticket.
    Sharing,
    /// The grantor gives the resource up for the lifetime of the ticket;
    /// its usable capacity is reduced by the ticket's value until the
    /// ticket is revoked.
    Granting,
}

/// Face denomination of a ticket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TicketValue {
    /// Worth exactly `amount` units of a specific resource kind,
    /// independent of any currency's fortunes.
    Absolute {
        /// The resource kind this ticket is denominated in.
        resource: ResourceId,
        /// Face (and real) value in resource units.
        amount: f64,
    },
    /// Worth `face / face_total(issuer)` of the issuing currency's value,
    /// for every resource kind the issuer holds.
    Relative {
        /// Face value in issuer currency units.
        face: f64,
    },
}

/// A ticket: issued by at most one currency, backing exactly one currency.
///
/// Root resource deposits (actual capacities entering the economy) have no
/// issuer. Agreement tickets are issued by the grantor's currency and back
/// the grantee's currency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ticket {
    /// Registry identifier.
    pub id: TicketId,
    /// Issuing currency; `None` for root resource deposits.
    pub issuer: Option<CurrencyId>,
    /// The currency this ticket funds.
    pub backing: CurrencyId,
    /// Face denomination.
    pub value: TicketValue,
    /// Sharing or granting semantics (meaningless for root deposits, which
    /// are recorded as `Sharing`).
    pub nature: AgreementNature,
    /// True until revoked; revoked tickets stay in the registry so ids
    /// remain stable, but contribute nothing.
    pub active: bool,
}

impl Ticket {
    /// Is this a root resource deposit (actual capacity, not an
    /// agreement)?
    #[inline]
    pub fn is_deposit(&self) -> bool {
        self.issuer.is_none()
    }

    /// The resource kind for absolute tickets, `None` for relative ones
    /// (which span all kinds held by the issuer).
    #[inline]
    pub fn resource(&self) -> Option<ResourceId> {
        match self.value {
            TicketValue::Absolute { resource, .. } => Some(resource),
            TicketValue::Relative { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(value: TicketValue, issuer: Option<CurrencyId>) -> Ticket {
        Ticket {
            id: TicketId(0),
            issuer,
            backing: CurrencyId(1),
            value,
            nature: AgreementNature::Sharing,
            active: true,
        }
    }

    #[test]
    fn deposit_detection() {
        let t = mk(TicketValue::Absolute { resource: ResourceId(0), amount: 10.0 }, None);
        assert!(t.is_deposit());
        let t =
            mk(TicketValue::Absolute { resource: ResourceId(0), amount: 3.0 }, Some(CurrencyId(0)));
        assert!(!t.is_deposit());
    }

    #[test]
    fn resource_kind_only_for_absolute() {
        let abs = mk(TicketValue::Absolute { resource: ResourceId(2), amount: 1.0 }, None);
        assert_eq!(abs.resource(), Some(ResourceId(2)));
        let rel = mk(TicketValue::Relative { face: 50.0 }, Some(CurrencyId(0)));
        assert_eq!(rel.resource(), None);
    }
}
