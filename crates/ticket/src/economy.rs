//! The economy: registries of principals, resources, currencies, and
//! tickets, plus the mutation API for expressing agreements.

use crate::currency::Currency;
use crate::error::EconomyError;
use crate::ids::{CurrencyId, PrincipalId, ResourceId, TicketId};
use crate::ticket::{AgreementNature, Ticket, TicketValue};
use crate::valuation::{self, Valuation, ValuationMethod};
use serde::{Deserialize, Serialize};

/// Default face total for newly created currencies. The absolute number is
/// arbitrary (only face *ratios* matter); 100 makes shares read as
/// percentages.
pub const DEFAULT_FACE_TOTAL: f64 = 100.0;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PrincipalDef {
    name: String,
    default_currency: CurrencyId,
}

/// A complete ticket-and-currency economy (paper §2.2).
///
/// All entities are arena-allocated and referenced by typed ids; revocation
/// deactivates tickets without perturbing ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Economy {
    principals: Vec<PrincipalDef>,
    resources: Vec<String>,
    currencies: Vec<Currency>,
    tickets: Vec<Ticket>,
}

impl Economy {
    /// Create an empty economy.
    pub fn new() -> Self {
        Economy::default()
    }

    /// Register a resource kind (e.g. `"disk-TB"`, `"cpu-s"`).
    pub fn add_resource(&mut self, name: &str) -> ResourceId {
        self.resources.push(name.to_string());
        ResourceId::from_index(self.resources.len() - 1)
    }

    /// Register a principal; its default currency (same name) is created
    /// automatically with [`DEFAULT_FACE_TOTAL`] units.
    pub fn add_principal(&mut self, name: &str) -> PrincipalId {
        let pid = PrincipalId::from_index(self.principals.len());
        let cid = CurrencyId::from_index(self.currencies.len());
        self.currencies.push(Currency {
            id: cid,
            name: name.to_string(),
            owner: pid,
            is_virtual: false,
            face_total: DEFAULT_FACE_TOTAL,
            backed_by: Vec::new(),
            issued: Vec::new(),
        });
        self.principals.push(PrincipalDef { name: name.to_string(), default_currency: cid });
        pid
    }

    /// A principal's default currency.
    pub fn default_currency(&self, p: PrincipalId) -> CurrencyId {
        self.principals[p.index()].default_currency
    }

    /// Create a virtual currency owned by `owner` (paper Example 2). It
    /// starts unfunded; back it by issuing tickets to it.
    pub fn add_virtual_currency(&mut self, owner: PrincipalId, name: &str) -> CurrencyId {
        let cid = CurrencyId::from_index(self.currencies.len());
        self.currencies.push(Currency {
            id: cid,
            name: name.to_string(),
            owner,
            is_virtual: true,
            face_total: DEFAULT_FACE_TOTAL,
            backed_by: Vec::new(),
            issued: Vec::new(),
        });
        cid
    }

    /// Change a currency's total face units — inflation (increase) makes
    /// each outstanding relative ticket worth a smaller fraction;
    /// deflation the opposite.
    pub fn set_face_total(&mut self, c: CurrencyId, face_total: f64) -> Result<(), EconomyError> {
        if !face_total.is_finite() {
            return Err(EconomyError::NotFinite { what: "face_total" });
        }
        if face_total <= 0.0 {
            return Err(EconomyError::NonPositive { what: "face_total", value: face_total });
        }
        self.currency_mut(c)?.face_total = face_total;
        Ok(())
    }

    /// Deposit actual resource capacity into a currency: an absolute root
    /// ticket with no issuer (paper: "actual resource capacities are
    /// expressed using absolute tickets funding the owner's currency").
    pub fn deposit_resource(
        &mut self,
        into: CurrencyId,
        resource: ResourceId,
        amount: f64,
    ) -> Result<TicketId, EconomyError> {
        self.check_amount(amount, "deposit amount")?;
        self.currency(into)?;
        Ok(self.push_ticket(Ticket {
            id: TicketId::from_index(self.tickets.len()),
            issuer: None,
            backing: into,
            value: TicketValue::Absolute { resource, amount },
            nature: AgreementNature::Sharing,
            active: true,
        }))
    }

    /// Express an **absolute agreement**: `from` funds `to` with a fixed
    /// quantity of one resource kind (e.g. "3 TB of disk"), insulated from
    /// fluctuations in `from`'s fortunes.
    pub fn issue_absolute(
        &mut self,
        from: CurrencyId,
        to: CurrencyId,
        resource: ResourceId,
        amount: f64,
        nature: AgreementNature,
    ) -> Result<TicketId, EconomyError> {
        self.check_amount(amount, "ticket amount")?;
        self.check_pair(from, to)?;
        Ok(self.push_ticket(Ticket {
            id: TicketId::from_index(self.tickets.len()),
            issuer: Some(from),
            backing: to,
            value: TicketValue::Absolute { resource, amount },
            nature,
            active: true,
        }))
    }

    /// Express a **relative agreement**: `from` funds `to` with
    /// `face / face_total(from)` of its own dynamic value, across every
    /// resource kind `from` holds (e.g. "50% of my available resources").
    pub fn issue_relative(
        &mut self,
        from: CurrencyId,
        to: CurrencyId,
        face: f64,
        nature: AgreementNature,
    ) -> Result<TicketId, EconomyError> {
        self.check_amount(face, "ticket face")?;
        self.check_pair(from, to)?;
        Ok(self.push_ticket(Ticket {
            id: TicketId::from_index(self.tickets.len()),
            issuer: Some(from),
            backing: to,
            value: TicketValue::Relative { face },
            nature,
            active: true,
        }))
    }

    /// Revoke a ticket: the agreement (or deposit) it represents ends.
    /// The ticket stays in the registry, inactive.
    pub fn revoke(&mut self, t: TicketId) -> Result<(), EconomyError> {
        let ticket = self.tickets.get_mut(t.index()).ok_or(EconomyError::UnknownTicket(t))?;
        if !ticket.active {
            return Err(EconomyError::AlreadyRevoked(t));
        }
        ticket.active = false;
        Ok(())
    }

    /// Value every currency and ticket for one resource kind using the
    /// exact (linear-solve) method.
    pub fn value_report(&self, resource: ResourceId) -> Result<Valuation, EconomyError> {
        self.value_report_with(resource, ValuationMethod::Exact)
    }

    /// Value every currency and ticket for one resource kind with an
    /// explicit method.
    pub fn value_report_with(
        &self,
        resource: ResourceId,
        method: ValuationMethod,
    ) -> Result<Valuation, EconomyError> {
        valuation::value(self, resource, method)
    }

    /// Usable capacity of a principal for a resource kind: the net value
    /// of its default currency (gross backing minus granted-away value).
    pub fn principal_capacity(
        &self,
        p: PrincipalId,
        resource: ResourceId,
    ) -> Result<f64, EconomyError> {
        let report = self.value_report(resource)?;
        Ok(report.net_value(self.default_currency(p)))
    }

    /// Has this currency promised more relative face than it has units?
    pub fn is_overdrawn(&self, c: CurrencyId) -> Result<bool, EconomyError> {
        let cur = self.currency(c)?;
        let issued = cur.issued_face(|t| match self.tickets.get(t.index()) {
            Some(tk) if tk.active => match tk.value {
                TicketValue::Relative { face } => Some(face),
                TicketValue::Absolute { .. } => None,
            },
            _ => None,
        });
        Ok(issued > cur.face_total + 1e-12)
    }

    // ---- accessors ------------------------------------------------------

    /// Look up a currency.
    pub fn currency(&self, c: CurrencyId) -> Result<&Currency, EconomyError> {
        self.currencies.get(c.index()).ok_or(EconomyError::UnknownCurrency(c))
    }

    /// Look up a ticket.
    pub fn ticket(&self, t: TicketId) -> Result<&Ticket, EconomyError> {
        self.tickets.get(t.index()).ok_or(EconomyError::UnknownTicket(t))
    }

    /// All currencies, in id order.
    pub fn currencies(&self) -> &[Currency] {
        &self.currencies
    }

    /// All tickets (active and revoked), in id order.
    pub fn tickets(&self) -> &[Ticket] {
        &self.tickets
    }

    /// Number of registered principals.
    pub fn num_principals(&self) -> usize {
        self.principals.len()
    }

    /// Number of registered resource kinds.
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// Principal name.
    pub fn principal_name(&self, p: PrincipalId) -> &str {
        &self.principals[p.index()].name
    }

    /// Resource kind name.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resources[r.index()]
    }

    /// Iterate over all principal ids.
    pub fn principal_ids(&self) -> impl Iterator<Item = PrincipalId> + '_ {
        (0..self.principals.len()).map(PrincipalId::from_index)
    }

    /// Find a principal by name (first match).
    pub fn find_principal(&self, name: &str) -> Option<PrincipalId> {
        self.principals.iter().position(|p| p.name == name).map(PrincipalId::from_index)
    }

    /// Find a resource kind by name (first match).
    pub fn find_resource(&self, name: &str) -> Option<ResourceId> {
        self.resources.iter().position(|r| r == name).map(ResourceId::from_index)
    }

    /// Find a currency by name (first match; default currencies share
    /// their principal's name).
    pub fn find_currency(&self, name: &str) -> Option<CurrencyId> {
        self.currencies.iter().find(|c| c.name == name).map(|c| c.id)
    }

    // ---- internals ------------------------------------------------------

    fn currency_mut(&mut self, c: CurrencyId) -> Result<&mut Currency, EconomyError> {
        self.currencies.get_mut(c.index()).ok_or(EconomyError::UnknownCurrency(c))
    }

    fn check_amount(&self, v: f64, what: &'static str) -> Result<(), EconomyError> {
        if !v.is_finite() {
            return Err(EconomyError::NotFinite { what });
        }
        if v <= 0.0 {
            return Err(EconomyError::NonPositive { what, value: v });
        }
        Ok(())
    }

    fn check_pair(&self, from: CurrencyId, to: CurrencyId) -> Result<(), EconomyError> {
        self.currency(from)?;
        self.currency(to)?;
        if from == to {
            return Err(EconomyError::SelfBacking(from));
        }
        Ok(())
    }

    fn push_ticket(&mut self, t: Ticket) -> TicketId {
        let id = t.id;
        if let Some(from) = t.issuer {
            self.currencies[from.index()].issued.push(id);
        }
        self.currencies[t.backing.index()].backed_by.push(id);
        self.tickets.push(t);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_principal_economy() -> (Economy, ResourceId, CurrencyId, CurrencyId) {
        let mut eco = Economy::new();
        let r = eco.add_resource("cpu");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let ca = eco.default_currency(a);
        let cb = eco.default_currency(b);
        (eco, r, ca, cb)
    }

    #[test]
    fn principals_get_default_currencies() {
        let (eco, _r, ca, cb) = two_principal_economy();
        assert_ne!(ca, cb);
        assert_eq!(eco.currency(ca).unwrap().name, "A");
        assert!(!eco.currency(ca).unwrap().is_virtual);
        assert_eq!(eco.currency(ca).unwrap().face_total, DEFAULT_FACE_TOTAL);
    }

    #[test]
    fn deposit_creates_root_ticket() {
        let (mut eco, r, ca, _cb) = two_principal_economy();
        let t = eco.deposit_resource(ca, r, 10.0).unwrap();
        let ticket = eco.ticket(t).unwrap();
        assert!(ticket.is_deposit());
        assert_eq!(ticket.backing, ca);
        assert!(eco.currency(ca).unwrap().backed_by.contains(&t));
    }

    #[test]
    fn issue_relative_links_both_sides() {
        let (mut eco, _r, ca, cb) = two_principal_economy();
        let t = eco.issue_relative(ca, cb, 30.0, AgreementNature::Sharing).unwrap();
        assert!(eco.currency(ca).unwrap().issued.contains(&t));
        assert!(eco.currency(cb).unwrap().backed_by.contains(&t));
    }

    #[test]
    fn self_backing_rejected() {
        let (mut eco, r, ca, _cb) = two_principal_economy();
        assert_eq!(
            eco.issue_relative(ca, ca, 10.0, AgreementNature::Sharing),
            Err(EconomyError::SelfBacking(ca))
        );
        assert_eq!(
            eco.issue_absolute(ca, ca, r, 10.0, AgreementNature::Sharing),
            Err(EconomyError::SelfBacking(ca))
        );
    }

    #[test]
    fn non_positive_amounts_rejected() {
        let (mut eco, r, ca, cb) = two_principal_economy();
        assert!(matches!(eco.deposit_resource(ca, r, 0.0), Err(EconomyError::NonPositive { .. })));
        assert!(matches!(
            eco.issue_relative(ca, cb, -5.0, AgreementNature::Sharing),
            Err(EconomyError::NonPositive { .. })
        ));
        assert!(matches!(eco.set_face_total(ca, 0.0), Err(EconomyError::NonPositive { .. })));
        assert!(matches!(
            eco.deposit_resource(ca, r, f64::NAN),
            Err(EconomyError::NotFinite { .. })
        ));
    }

    #[test]
    fn revoke_twice_fails() {
        let (mut eco, r, ca, _cb) = two_principal_economy();
        let t = eco.deposit_resource(ca, r, 10.0).unwrap();
        eco.revoke(t).unwrap();
        assert_eq!(eco.revoke(t), Err(EconomyError::AlreadyRevoked(t)));
    }

    #[test]
    fn overdraft_detection() {
        let (mut eco, _r, ca, cb) = two_principal_economy();
        assert!(!eco.is_overdrawn(ca).unwrap());
        eco.issue_relative(ca, cb, 60.0, AgreementNature::Sharing).unwrap();
        assert!(!eco.is_overdrawn(ca).unwrap());
        let t2 = eco.issue_relative(ca, cb, 60.0, AgreementNature::Sharing).unwrap();
        assert!(eco.is_overdrawn(ca).unwrap(), "120 of 100 face issued");
        eco.revoke(t2).unwrap();
        assert!(!eco.is_overdrawn(ca).unwrap(), "revocation clears overdraft");
    }

    #[test]
    fn virtual_currency_is_flagged() {
        let (mut eco, _r, _ca, _cb) = two_principal_economy();
        let a = PrincipalId::from_index(0);
        let v = eco.add_virtual_currency(a, "A_1");
        assert!(eco.currency(v).unwrap().is_virtual);
        assert_eq!(eco.currency(v).unwrap().owner, a);
    }

    #[test]
    fn unknown_ids_error() {
        let (eco, _r, _ca, _cb) = two_principal_economy();
        let bogus = CurrencyId::from_index(99);
        assert_eq!(eco.currency(bogus).err(), Some(EconomyError::UnknownCurrency(bogus)));
        let bogus_t = TicketId::from_index(99);
        assert_eq!(eco.ticket(bogus_t).err(), Some(EconomyError::UnknownTicket(bogus_t)));
    }

    #[test]
    fn names_are_recorded() {
        let (eco, r, _ca, _cb) = two_principal_economy();
        assert_eq!(eco.resource_name(r), "cpu");
        assert_eq!(eco.principal_name(PrincipalId::from_index(1)), "B");
        assert_eq!(eco.num_principals(), 2);
        assert_eq!(eco.num_resources(), 1);
    }

    #[test]
    fn lookup_by_name() {
        let (mut eco, r, ca, _cb) = two_principal_economy();
        assert_eq!(eco.find_resource("cpu"), Some(r));
        assert_eq!(eco.find_resource("gpu"), None);
        let a = eco.find_principal("A").unwrap();
        assert_eq!(eco.default_currency(a), ca);
        assert_eq!(eco.find_principal("Z"), None);
        assert_eq!(
            eco.find_currency("B"),
            Some(eco.default_currency(eco.find_principal("B").unwrap()))
        );
        let v = eco.add_virtual_currency(a, "A_1");
        assert_eq!(eco.find_currency("A_1"), Some(v));
    }
}
