//! Human-auditable renderings of an economy's funding graph.
//!
//! Sharing federations are negotiated by people; the funding graph (which
//! currency backs which, through which tickets, at what values) is the
//! artifact they audit. This module renders an [`Economy`]:
//!
//! - [`to_dot`] — Graphviz DOT, one node per currency (virtual currencies
//!   dashed), one edge per active ticket labelled with its denomination
//!   and, when a valuation is supplied, its real value;
//! - [`summary`] — a plain-text table of currencies, backings, and
//!   issues.

use crate::economy::Economy;
use crate::error::EconomyError;
use crate::ids::ResourceId;
use crate::ticket::{AgreementNature, TicketValue};
use crate::valuation::Valuation;
use std::fmt::Write as _;

/// Render the funding graph as Graphviz DOT. When `valuation` is given,
/// edges and nodes are annotated with real values for that resource.
pub fn to_dot(eco: &Economy, valuation: Option<&Valuation>) -> String {
    let mut out = String::from("digraph economy {\n  rankdir=LR;\n");
    for c in eco.currencies() {
        let style = if c.is_virtual { ", style=dashed" } else { "" };
        let value =
            valuation.map(|v| format!("\\n= {:.2}", v.currency_value(c.id))).unwrap_or_default();
        writeln!(
            out,
            "  {} [label=\"{}\\nface {}{}\"{}];",
            c.id, c.name, c.face_total, value, style
        )
        .unwrap();
    }
    // Root deposits render as sources.
    let mut deposit_count = 0usize;
    for t in eco.tickets() {
        if !t.active {
            continue;
        }
        let label = match t.value {
            TicketValue::Absolute { resource, amount } => {
                format!("{} {}", amount, eco.resource_name(resource))
            }
            TicketValue::Relative { face } => {
                let real = valuation
                    .map(|v| format!(" (= {:.2})", v.ticket_value(t.id)))
                    .unwrap_or_default();
                format!("{face} units{real}")
            }
        };
        let style = match t.nature {
            AgreementNature::Sharing => "",
            AgreementNature::Granting => ", color=red",
        };
        match t.issuer {
            Some(from) => {
                writeln!(out, "  {} -> {} [label=\"{}\"{}];", from, t.backing, label, style)
                    .unwrap();
            }
            None => {
                let src = format!("deposit{deposit_count}");
                deposit_count += 1;
                writeln!(out, "  {src} [shape=box, label=\"{label}\"];").unwrap();
                writeln!(out, "  {src} -> {};", t.backing).unwrap();
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Plain-text summary: per currency, its face, backings, and issues.
pub fn summary(eco: &Economy, resource: ResourceId) -> Result<String, EconomyError> {
    let valuation = eco.value_report(resource)?;
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:>10} {:>12} {:>12} {:>8} {:>8}",
        "currency", "face", "gross", "net", "backed", "issued"
    )
    .unwrap();
    for c in eco.currencies() {
        let backed = c
            .backed_by
            .iter()
            .filter(|t| eco.ticket(**t).map(|tk| tk.active).unwrap_or(false))
            .count();
        let issued = c
            .issued
            .iter()
            .filter(|t| eco.ticket(**t).map(|tk| tk.active).unwrap_or(false))
            .count();
        writeln!(
            out,
            "{:<16} {:>10} {:>12.4} {:>12.4} {:>8} {:>8}",
            c.name,
            c.face_total,
            valuation.currency_value(c.id),
            valuation.net_value(c.id),
            backed,
            issued
        )
        .unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::AgreementNature::{Granting, Sharing};

    fn example() -> (Economy, ResourceId) {
        let mut eco = Economy::new();
        let disk = eco.add_resource("disk");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, disk, 10.0).unwrap();
        eco.issue_relative(ca, cb, 50.0, Sharing).unwrap();
        (eco, disk)
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let (eco, disk) = example();
        let v = eco.value_report(disk).unwrap();
        let dot = to_dot(&eco, Some(&v));
        assert!(dot.starts_with("digraph economy {"));
        assert!(dot.contains("label=\"A\\nface 100"), "{dot}");
        assert!(dot.contains("C0 -> C1"), "{dot}");
        assert!(dot.contains("50 units (= 5.00)"), "{dot}");
        assert!(dot.contains("deposit0 [shape=box"), "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_without_valuation_omits_values() {
        let (eco, _disk) = example();
        let dot = to_dot(&eco, None);
        assert!(!dot.contains("(="), "{dot}");
    }

    #[test]
    fn granting_edges_are_red_and_revoked_hidden() {
        let (mut eco, disk) = example();
        let c = eco.add_principal("C");
        let cc = eco.default_currency(c);
        let ca = eco.currencies()[0].id;
        let t = eco.issue_relative(ca, cc, 10.0, Granting).unwrap();
        let dot = to_dot(&eco, None);
        assert!(dot.contains("color=red"), "{dot}");
        eco.revoke(t).unwrap();
        let dot = to_dot(&eco, None);
        assert!(!dot.contains("color=red"), "revoked edge still rendered: {dot}");
        let _ = disk;
    }

    #[test]
    fn virtual_currencies_dashed() {
        let (mut eco, _disk) = example();
        let a = crate::ids::PrincipalId::from_index(0);
        eco.add_virtual_currency(a, "A_1");
        let dot = to_dot(&eco, None);
        assert!(dot.contains("style=dashed"), "{dot}");
    }

    #[test]
    fn summary_counts_active_tickets() {
        let (eco, disk) = example();
        let text = summary(&eco, disk).unwrap();
        assert!(text.contains("currency"), "{text}");
        // A: 1 backing (deposit), 1 issued; B: 1 backing, 0 issued.
        let a_line = text.lines().find(|l| l.starts_with("A ")).unwrap();
        assert!(a_line.contains(" 1"), "{a_line}");
        assert!(text.contains("5.0000"), "B gross 5: {text}");
    }
}
