//! Currency and ticket valuation.
//!
//! For one resource kind `r`, each currency `j` has a **gross value**
//!
//! ```text
//! g_j = base_j + Σ_i  (face_ij / face_total_i) · g_i
//! ```
//!
//! where `base_j` sums the active absolute tickets backing `j` (deposits
//! and absolute agreement tickets) and the sum ranges over active relative
//! tickets issued by `i` backing `j`. Relative funding can form cycles
//! (mutual agreements), so this is a linear system `(I − Wᵀ) g = base`,
//! solved exactly by Gaussian elimination or approximately by fixed-point
//! iteration. The system has a unique non-negative solution iff every
//! funding cycle has total gain < 1; otherwise valuation is reported as
//! divergent.
//!
//! The **net value** subtracts value given up through *granting* tickets
//! (paper §2.1): `net_j = g_j − Σ granted-out value`.

use crate::economy::Economy;
use crate::error::EconomyError;
use crate::ids::{CurrencyId, ResourceId, TicketId};
use crate::ticket::{AgreementNature, TicketValue};

/// How to solve the valuation linear system.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ValuationMethod {
    /// Gaussian elimination on `(I − Wᵀ)`; exact up to floating point.
    #[default]
    Exact,
    /// Damped Jacobi iteration; useful for very large, sparse economies
    /// and for cross-checking the exact method.
    FixedPoint {
        /// Maximum sweeps before giving up.
        max_iters: usize,
        /// Convergence threshold on the max per-currency change.
        tol: f64,
    },
}

/// Valuation of every currency and ticket for one resource kind.
#[derive(Debug, Clone)]
pub struct Valuation {
    resource: ResourceId,
    gross: Vec<f64>,
    net: Vec<f64>,
    ticket_values: Vec<f64>,
}

impl Valuation {
    /// The resource kind this report values.
    pub fn resource(&self) -> ResourceId {
        self.resource
    }

    /// Gross value of a currency: everything backing it, before granted-out
    /// deductions. This is "the value of the currency" in the paper's
    /// examples (which use sharing agreements throughout).
    pub fn currency_value(&self, c: CurrencyId) -> f64 {
        self.gross[c.index()]
    }

    /// Net (usable) value: gross minus value granted away.
    pub fn net_value(&self, c: CurrencyId) -> f64 {
        self.net[c.index()]
    }

    /// Real value of a ticket for this resource kind. Absolute tickets of
    /// other kinds value at 0 here; revoked tickets at 0.
    pub fn ticket_value(&self, t: TicketId) -> f64 {
        self.ticket_values[t.index()]
    }
}

/// Compute the valuation of `resource` across the whole economy.
pub fn value(
    eco: &Economy,
    resource: ResourceId,
    method: ValuationMethod,
) -> Result<Valuation, EconomyError> {
    let currencies = eco.currencies();
    let tickets = eco.tickets();
    let n = currencies.len();

    // base_j and the weighted edges i -> j.
    let mut base = vec![0.0; n];
    // edges[(i, j)] aggregated weight; kept as a list since economies are
    // small and weights per pair are simply summed.
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for t in tickets {
        if !t.active {
            continue;
        }
        match t.value {
            TicketValue::Absolute { resource: r, amount } => {
                if r == resource {
                    base[t.backing.index()] += amount;
                }
            }
            TicketValue::Relative { face } => {
                let issuer =
                    t.issuer.expect("relative tickets always have an issuer by construction");
                let ft = currencies[issuer.index()].face_total;
                edges.push((issuer.index(), t.backing.index(), face / ft));
            }
        }
    }

    let gross = match method {
        ValuationMethod::Exact => solve_exact(n, &base, &edges)?,
        ValuationMethod::FixedPoint { max_iters, tol } => {
            solve_fixpoint(n, &base, &edges, max_iters, tol)?
        }
    };

    // Ticket real values for this kind.
    let mut ticket_values = vec![0.0; tickets.len()];
    for (ti, t) in tickets.iter().enumerate() {
        if !t.active {
            continue;
        }
        ticket_values[ti] = match t.value {
            TicketValue::Absolute { resource: r, amount } => {
                if r == resource {
                    amount
                } else {
                    0.0
                }
            }
            TicketValue::Relative { face } => {
                let issuer = t.issuer.expect("relative ticket has issuer");
                let ft = currencies[issuer.index()].face_total;
                gross[issuer.index()] * face / ft
            }
        };
    }

    // Net values: deduct granted-out ticket values from the issuer.
    let mut net = gross.clone();
    for (ti, t) in tickets.iter().enumerate() {
        if !t.active || t.nature != AgreementNature::Granting {
            continue;
        }
        if let Some(issuer) = t.issuer {
            net[issuer.index()] -= ticket_values[ti];
        }
    }
    for v in &mut net {
        // Over-granting can push net below zero; clamp, since usable
        // capacity cannot be negative.
        if *v < 0.0 {
            *v = 0.0;
        }
    }

    Ok(Valuation { resource, gross, net, ticket_values })
}

/// Gaussian elimination on `(I − Wᵀ) g = base` with partial pivoting.
fn solve_exact(
    n: usize,
    base: &[f64],
    edges: &[(usize, usize, f64)],
) -> Result<Vec<f64>, EconomyError> {
    // m[j][i] = coefficient of g_i in equation for g_j.
    let mut m = vec![vec![0.0; n + 1]; n];
    for (j, row) in m.iter_mut().enumerate() {
        row[j] = 1.0;
        row[n] = base[j];
    }
    for &(i, j, w) in edges {
        m[j][i] -= w;
    }
    let hint = cycle_gain_hint(n, edges);
    for col in 0..n {
        let piv = (col..n)
            .max_by(|&a, &b| m[a][col].abs().partial_cmp(&m[b][col].abs()).unwrap())
            .expect("non-empty range");
        if m[piv][col].abs() < 1e-12 {
            return Err(EconomyError::DivergentValuation { spectral_hint: hint });
        }
        m.swap(col, piv);
        let d = m[col][col];
        for v in m[col][col..].iter_mut() {
            *v /= d;
        }
        for rr in 0..n {
            if rr != col {
                let f = m[rr][col];
                if f != 0.0 {
                    for k in col..=n {
                        let sub = f * m[col][k];
                        m[rr][k] -= sub;
                    }
                }
            }
        }
    }
    let g: Vec<f64> = (0..n).map(|i| m[i][n]).collect();
    // A valuation with funding gain > 1 can solve to negative "values";
    // reject it as divergent rather than report nonsense.
    if g.iter().any(|&v| v < -1e-9) {
        return Err(EconomyError::DivergentValuation { spectral_hint: hint });
    }
    Ok(g.into_iter().map(|v| v.max(0.0)).collect())
}

/// Jacobi iteration `g ← base + Wᵀ g`; converges iff cycle gain < 1.
fn solve_fixpoint(
    n: usize,
    base: &[f64],
    edges: &[(usize, usize, f64)],
    max_iters: usize,
    tol: f64,
) -> Result<Vec<f64>, EconomyError> {
    let mut g = base.to_vec();
    let mut next = vec![0.0; n];
    for _ in 0..max_iters {
        next.copy_from_slice(base);
        for &(i, j, w) in edges {
            next[j] += w * g[i];
        }
        let delta = g.iter().zip(&next).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        std::mem::swap(&mut g, &mut next);
        if delta <= tol {
            return Ok(g);
        }
    }
    Err(EconomyError::DivergentValuation { spectral_hint: cycle_gain_hint(n, edges) })
}

/// Cheap divergence diagnostic: the maximum over currencies of total
/// outgoing relative weight. A value ≥ 1 means some currency re-shares
/// 100% or more of its value, which permits non-convergent cycles.
fn cycle_gain_hint(n: usize, edges: &[(usize, usize, f64)]) -> f64 {
    let mut out = vec![0.0f64; n];
    for &(i, _, w) in edges {
        out[i] += w;
    }
    out.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::economy::Economy;
    use crate::ticket::AgreementNature::{Granting, Sharing};

    const EPS: f64 = 1e-9;

    /// Paper Example 1 (Figure 1) verbatim.
    fn example1() -> (Economy, ResourceId, [CurrencyId; 4]) {
        let mut eco = Economy::new();
        let disk = eco.add_resource("disk-TB");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let c = eco.add_principal("C");
        let d = eco.add_principal("D");
        let ca = eco.default_currency(a);
        let cb = eco.default_currency(b);
        let cc = eco.default_currency(c);
        let cd = eco.default_currency(d);
        eco.set_face_total(ca, 1000.0).unwrap();
        eco.set_face_total(cb, 100.0).unwrap();
        eco.deposit_resource(ca, disk, 10.0).unwrap();
        eco.deposit_resource(cb, disk, 15.0).unwrap();
        eco.issue_absolute(ca, cc, disk, 3.0, Sharing).unwrap();
        eco.issue_relative(ca, cb, 500.0, Sharing).unwrap();
        eco.issue_relative(cb, cd, 60.0, Sharing).unwrap();
        (eco, disk, [ca, cb, cc, cd])
    }

    #[test]
    fn paper_example_1_values() {
        let (eco, disk, [ca, cb, cc, cd]) = example1();
        let v = eco.value_report(disk).unwrap();
        assert!((v.currency_value(ca) - 10.0).abs() < EPS);
        // B: own 15 + relative ticket worth 10*500/1000 = 5 -> 20.
        assert!((v.currency_value(cb) - 20.0).abs() < EPS);
        // C: absolute ticket worth 3.
        assert!((v.currency_value(cc) - 3.0).abs() < EPS);
        // D: 20 * 60/100 = 12 (implicitly includes the transitive share).
        assert!((v.currency_value(cd) - 12.0).abs() < EPS);
    }

    #[test]
    fn paper_example_1_ticket_values() {
        let (eco, disk, _) = example1();
        let v = eco.value_report(disk).unwrap();
        let tickets = eco.tickets();
        // R-Ticket4 (index 3): 500 face of currency A (1000, value 10) = 5.
        assert!((v.ticket_value(tickets[3].id) - 5.0).abs() < EPS);
        // R-Ticket5 (index 4): 60 face of currency B (100, value 20) = 12.
        assert!((v.ticket_value(tickets[4].id) - 12.0).abs() < EPS);
    }

    /// Paper Example 2 (Figure 2): virtual currencies A1, A2.
    #[test]
    fn paper_example_2_virtual_currencies() {
        let (mut eco, disk, [ca, cb, cc, cd]) = example1();
        // Rebuild the agreement layer per Example 2: revoke R-Ticket3..5
        // (ids 2, 3, 4) and route everything through virtual currencies.
        for idx in [2usize, 3, 4] {
            let id = eco.tickets()[idx].id;
            eco.revoke(id).unwrap();
        }
        let a = eco.currency(ca).unwrap().owner;
        let a1 = eco.add_virtual_currency(a, "A_1");
        let a2 = eco.add_virtual_currency(a, "A_2");
        // A funds A1 with 300/1000 (value 3) and A2 with 500/1000 (value 5).
        eco.issue_relative(ca, a1, 300.0, Sharing).unwrap();
        eco.issue_relative(ca, a2, 500.0, Sharing).unwrap();
        // A1 -> C (everything), A2 -> D and B.
        eco.issue_relative(a1, cc, 100.0, Sharing).unwrap();
        eco.issue_relative(a2, cd, 40.0, Sharing).unwrap();
        eco.issue_relative(a2, cb, 60.0, Sharing).unwrap();

        let v = eco.value_report(disk).unwrap();
        assert!((v.currency_value(a1) - 3.0).abs() < EPS);
        assert!((v.currency_value(a2) - 5.0).abs() < EPS);
        assert!((v.currency_value(cc) - 3.0).abs() < EPS);
        assert!((v.currency_value(cd) - 2.0).abs() < EPS);
        assert!((v.currency_value(cb) - 18.0).abs() < EPS);

        // Isolation: inflating A1 (devaluing C's ticket) leaves the A2
        // subset untouched.
        eco.set_face_total(a1, 200.0).unwrap();
        let v2 = eco.value_report(disk).unwrap();
        assert!((v2.currency_value(cc) - 1.5).abs() < EPS, "C's share halves");
        assert!((v2.currency_value(cd) - 2.0).abs() < EPS, "D unchanged");
        assert!((v2.currency_value(cb) - 18.0).abs() < EPS, "B unchanged");
    }

    #[test]
    fn inflation_devalues_outstanding_tickets() {
        let mut eco = Economy::new();
        let r = eco.add_resource("cpu");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, r, 10.0).unwrap();
        eco.issue_relative(ca, cb, 50.0, Sharing).unwrap();
        let v = eco.value_report(r).unwrap();
        assert!((v.currency_value(cb) - 5.0).abs() < EPS);
        eco.set_face_total(ca, 200.0).unwrap(); // inflate 2x
        let v = eco.value_report(r).unwrap();
        assert!((v.currency_value(cb) - 2.5).abs() < EPS);
        eco.set_face_total(ca, 50.0).unwrap(); // deflate
        let v = eco.value_report(r).unwrap();
        assert!((v.currency_value(cb) - 10.0).abs() < EPS);
    }

    #[test]
    fn revocation_removes_value() {
        let mut eco = Economy::new();
        let r = eco.add_resource("cpu");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, r, 10.0).unwrap();
        let t = eco.issue_relative(ca, cb, 50.0, Sharing).unwrap();
        eco.revoke(t).unwrap();
        let v = eco.value_report(r).unwrap();
        assert!(v.currency_value(cb).abs() < EPS);
        assert!(v.ticket_value(t).abs() < EPS);
    }

    #[test]
    fn granting_reduces_net_not_gross() {
        let mut eco = Economy::new();
        let r = eco.add_resource("cpu");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, r, 10.0).unwrap();
        eco.issue_relative(ca, cb, 40.0, Granting).unwrap();
        let v = eco.value_report(r).unwrap();
        assert!((v.currency_value(ca) - 10.0).abs() < EPS, "gross unchanged");
        assert!((v.net_value(ca) - 6.0).abs() < EPS, "net loses 4");
        assert!((v.currency_value(cb) - 4.0).abs() < EPS);
    }

    #[test]
    fn sharing_does_not_reduce_net() {
        let mut eco = Economy::new();
        let r = eco.add_resource("cpu");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, r, 10.0).unwrap();
        eco.issue_relative(ca, cb, 40.0, Sharing).unwrap();
        let v = eco.value_report(r).unwrap();
        assert!((v.net_value(ca) - 10.0).abs() < EPS);
    }

    #[test]
    fn mutual_agreements_converge_when_gain_below_one() {
        let mut eco = Economy::new();
        let r = eco.add_resource("cpu");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, r, 10.0).unwrap();
        eco.deposit_resource(cb, r, 20.0).unwrap();
        eco.issue_relative(ca, cb, 50.0, Sharing).unwrap();
        eco.issue_relative(cb, ca, 50.0, Sharing).unwrap();
        // g_a = 10 + 0.5 g_b; g_b = 20 + 0.5 g_a -> g_a = 80/3, g_b = 160/6+20...
        // Solve: g_a = 10 + 0.5(20 + 0.5 g_a) -> 0.75 g_a = 20 -> 80/3.
        let v = eco.value_report(r).unwrap();
        assert!((v.currency_value(ca) - 80.0 / 3.0).abs() < 1e-6);
        assert!((v.currency_value(cb) - (20.0 + 40.0 / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn hundred_percent_cycle_diverges() {
        let mut eco = Economy::new();
        let r = eco.add_resource("cpu");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, r, 10.0).unwrap();
        eco.issue_relative(ca, cb, 100.0, Sharing).unwrap();
        eco.issue_relative(cb, ca, 100.0, Sharing).unwrap();
        match eco.value_report(r) {
            Err(EconomyError::DivergentValuation { spectral_hint }) => {
                assert!(spectral_hint >= 1.0 - 1e-12);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn fixpoint_matches_exact() {
        let (eco, disk, [ca, cb, cc, cd]) = example1();
        let exact = eco.value_report_with(disk, ValuationMethod::Exact).unwrap();
        let fix = eco
            .value_report_with(disk, ValuationMethod::FixedPoint { max_iters: 10_000, tol: 1e-12 })
            .unwrap();
        for c in [ca, cb, cc, cd] {
            assert!((exact.currency_value(c) - fix.currency_value(c)).abs() < 1e-9);
        }
    }

    #[test]
    fn fixpoint_detects_divergence() {
        let mut eco = Economy::new();
        let r = eco.add_resource("cpu");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, r, 10.0).unwrap();
        eco.issue_relative(ca, cb, 100.0, Sharing).unwrap();
        eco.issue_relative(cb, ca, 100.0, Sharing).unwrap();
        let res =
            eco.value_report_with(r, ValuationMethod::FixedPoint { max_iters: 200, tol: 1e-12 });
        assert!(matches!(res, Err(EconomyError::DivergentValuation { .. })));
    }

    #[test]
    fn multi_resource_kinds_value_independently() {
        let mut eco = Economy::new();
        let cpu = eco.add_resource("cpu");
        let disk = eco.add_resource("disk");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, cpu, 8.0).unwrap();
        eco.deposit_resource(ca, disk, 100.0).unwrap();
        // Relative ticket shares BOTH kinds.
        eco.issue_relative(ca, cb, 25.0, Sharing).unwrap();
        let vc = eco.value_report(cpu).unwrap();
        let vd = eco.value_report(disk).unwrap();
        assert!((vc.currency_value(cb) - 2.0).abs() < EPS);
        assert!((vd.currency_value(cb) - 25.0).abs() < EPS);
        // Absolute ticket only moves its own kind.
        let mut eco2 = eco.clone();
        eco2.issue_absolute(ca, cb, disk, 10.0, Sharing).unwrap();
        let vc2 = eco2.value_report(cpu).unwrap();
        let vd2 = eco2.value_report(disk).unwrap();
        assert!((vc2.currency_value(cb) - 2.0).abs() < EPS);
        assert!((vd2.currency_value(cb) - 35.0).abs() < EPS);
    }

    #[test]
    fn principal_capacity_uses_net() {
        let mut eco = Economy::new();
        let r = eco.add_resource("cpu");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, r, 10.0).unwrap();
        eco.issue_absolute(ca, cb, r, 4.0, Granting).unwrap();
        assert!((eco.principal_capacity(a, r).unwrap() - 6.0).abs() < EPS);
        assert!((eco.principal_capacity(b, r).unwrap() - 4.0).abs() < EPS);
    }

    #[test]
    fn over_granting_clamps_net_at_zero() {
        let mut eco = Economy::new();
        let r = eco.add_resource("cpu");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let c = eco.add_principal("C");
        let ca = eco.default_currency(a);
        eco.deposit_resource(ca, r, 10.0).unwrap();
        eco.issue_absolute(ca, eco.default_currency(b), r, 8.0, Granting).unwrap();
        eco.issue_absolute(ca, eco.default_currency(c), r, 8.0, Granting).unwrap();
        let v = eco.value_report(r).unwrap();
        assert_eq!(v.net_value(ca), 0.0);
    }
}
