//! Tickets and currencies: the agreement *expression* mechanism of
//! "Expressing and Enforcing Distributed Resource Sharing Agreements"
//! (SC 2000), §2.
//!
//! Resource capacities and sharing agreements are captured in one uniform
//! funding graph:
//!
//! - **Absolute tickets** carry a face value denominated directly in
//!   resource units (e.g. "10 TB of disk"); actual resource capacities are
//!   absolute tickets funding their owner's currency.
//! - **Relative tickets** are denominated in units of the *issuing*
//!   currency: a relative ticket with face `f` issued by a currency with
//!   face total `F` and value `V` is really worth `V · f / F` resource
//!   units. Their value therefore fluctuates with the issuer's fortunes.
//! - **Currencies** are backed (funded) by tickets and issue tickets in
//!   turn. Every principal gets a default currency; additional *virtual
//!   currencies* decouple one subset of a principal's agreements from
//!   fluctuations in another (paper Example 2).
//!
//! An agreement "A shares 50% of its resources with B" is expressed as A's
//! currency issuing a relative ticket with half of A's face total, backing
//! B's currency. Agreements are *sharing* (grantor keeps use of the
//! resource) or *granting* (grantor gives it up until revocation) — §2.1.
//!
//! # Quickstart (paper Example 1)
//!
//! ```
//! use agreements_ticket::{Economy, AgreementNature};
//!
//! let mut eco = Economy::new();
//! let disk = eco.add_resource("disk-TB");
//! let (a, b, c, d) = (
//!     eco.add_principal("A"), eco.add_principal("B"),
//!     eco.add_principal("C"), eco.add_principal("D"),
//! );
//! let (ca, cb, cc, cd) = (
//!     eco.default_currency(a), eco.default_currency(b),
//!     eco.default_currency(c), eco.default_currency(d),
//! );
//! eco.set_face_total(ca, 1000.0).unwrap();
//! eco.set_face_total(cb, 100.0).unwrap();
//! eco.deposit_resource(ca, disk, 10.0).unwrap();   // A-Ticket1
//! eco.deposit_resource(cb, disk, 15.0).unwrap();   // A-Ticket2
//! eco.issue_absolute(ca, cc, disk, 3.0, AgreementNature::Sharing).unwrap(); // R-Ticket3
//! eco.issue_relative(ca, cb, 500.0, AgreementNature::Sharing).unwrap(); // R-Ticket4
//! eco.issue_relative(cb, cd, 60.0, AgreementNature::Sharing).unwrap();  // R-Ticket5
//!
//! let v = eco.value_report(disk).unwrap();
//! assert!((v.currency_value(cb) - 20.0).abs() < 1e-9); // 15 + 10*500/1000
//! assert!((v.currency_value(cd) - 12.0).abs() < 1e-9); // 20 * 60/100
//! ```

// Index-based loops are idiomatic for the dense matrix math in this
// crate; clippy's iterator rewrites would obscure the row/column algebra.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod batch;
pub mod currency;
pub mod economy;
pub mod error;
pub mod ids;
pub mod report;
pub mod ticket;
pub mod valuation;
pub mod views;

pub use batch::{BatchError, BatchOutcome, Op};
pub use currency::Currency;
pub use economy::Economy;
pub use error::EconomyError;
pub use ids::{CurrencyId, PrincipalId, ResourceId, TicketId};
pub use report::{summary, to_dot};
pub use ticket::{AgreementNature, Ticket, TicketValue};
pub use valuation::{Valuation, ValuationMethod};
pub use views::{ResourceView, ViewRegistry};
