//! Atomic batches of economy mutations.
//!
//! Real agreements are negotiated as packages: "A gives B 30% of its
//! bandwidth *and in return* B gives A 20% of its CPU" (the paper's §1
//! example). Applying such a deal as two independent `issue_relative`
//! calls leaves a half-applied economy if the second call fails
//! validation. [`Economy::apply_batch`] applies a whole op list
//! atomically: every op is validated against a scratch copy first, and
//! the original economy is only replaced if all of them succeed.
//!
//! Ops reference entities by their pre-batch ids; ids created *within*
//! the batch are returned in order via [`BatchOutcome`].
//!
//! ```
//! use agreements_ticket::{AgreementNature, Economy, Op};
//!
//! let mut eco = Economy::new();
//! let bw = eco.add_resource("bw");
//! let a = eco.add_principal("A");
//! let b = eco.add_principal("B");
//! let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
//! eco.deposit_resource(ca, bw, 10.0).unwrap();
//! // Atomic package: the second op is invalid, so the first must not
//! // apply either.
//! let err = eco.apply_batch(&[
//!     Op::IssueRelative { from: ca, to: cb, face: 30.0,
//!                         nature: AgreementNature::Sharing },
//!     Op::SetFaceTotal { currency: cb, face_total: -1.0 },
//! ]).unwrap_err();
//! assert_eq!(err.index, 1);
//! assert_eq!(eco.value_report(bw).unwrap().currency_value(cb), 0.0);
//! ```

use crate::economy::Economy;
use crate::error::EconomyError;
use crate::ids::{CurrencyId, ResourceId, TicketId};
use crate::ticket::AgreementNature;
use serde::{Deserialize, Serialize};

/// One mutation in a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Change a currency's face total (inflation/deflation).
    SetFaceTotal {
        /// Target currency.
        currency: CurrencyId,
        /// New total face units (must be positive).
        face_total: f64,
    },
    /// Deposit actual resource capacity.
    Deposit {
        /// Receiving currency.
        into: CurrencyId,
        /// Resource kind.
        resource: ResourceId,
        /// Amount in resource units.
        amount: f64,
    },
    /// Issue an absolute agreement ticket.
    IssueAbsolute {
        /// Issuing currency.
        from: CurrencyId,
        /// Backed currency.
        to: CurrencyId,
        /// Resource kind.
        resource: ResourceId,
        /// Fixed amount.
        amount: f64,
        /// Sharing or granting.
        nature: AgreementNature,
    },
    /// Issue a relative agreement ticket.
    IssueRelative {
        /// Issuing currency.
        from: CurrencyId,
        /// Backed currency.
        to: CurrencyId,
        /// Face value in issuer units.
        face: f64,
        /// Sharing or granting.
        nature: AgreementNature,
    },
    /// Revoke a ticket.
    Revoke {
        /// The ticket to revoke.
        ticket: TicketId,
    },
}

/// Results of a committed batch: one entry per op, `Some(id)` for ops
/// that created a ticket.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Created ticket ids, positionally aligned with the op list.
    pub tickets: Vec<Option<TicketId>>,
}

/// The failing op's index and its error.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchError {
    /// Index into the op list.
    pub index: usize,
    /// What went wrong there.
    pub error: EconomyError,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch op {} failed: {}", self.index, self.error)
    }
}

impl std::error::Error for BatchError {}

impl Economy {
    /// Apply `ops` atomically: all succeed, or the economy is unchanged
    /// and the first failure is reported with its position.
    pub fn apply_batch(&mut self, ops: &[Op]) -> Result<BatchOutcome, BatchError> {
        let mut scratch = self.clone();
        let mut tickets = Vec::with_capacity(ops.len());
        for (index, op) in ops.iter().enumerate() {
            let created = match op {
                Op::SetFaceTotal { currency, face_total } => {
                    scratch.set_face_total(*currency, *face_total).map(|()| None)
                }
                Op::Deposit { into, resource, amount } => {
                    scratch.deposit_resource(*into, *resource, *amount).map(Some)
                }
                Op::IssueAbsolute { from, to, resource, amount, nature } => {
                    scratch.issue_absolute(*from, *to, *resource, *amount, *nature).map(Some)
                }
                Op::IssueRelative { from, to, face, nature } => {
                    scratch.issue_relative(*from, *to, *face, *nature).map(Some)
                }
                Op::Revoke { ticket } => scratch.revoke(*ticket).map(|()| None),
            }
            .map_err(|error| BatchError { index, error })?;
            tickets.push(created);
        }
        *self = scratch;
        Ok(BatchOutcome { tickets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::AgreementNature::Sharing;

    fn two_party() -> (Economy, ResourceId, ResourceId, CurrencyId, CurrencyId) {
        let mut eco = Economy::new();
        let bw = eco.add_resource("bandwidth");
        let cpu = eco.add_resource("cpu");
        let a = eco.add_principal("A");
        let b = eco.add_principal("B");
        let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
        eco.deposit_resource(ca, bw, 100.0).unwrap();
        eco.deposit_resource(cb, cpu, 50.0).unwrap();
        (eco, bw, cpu, ca, cb)
    }

    #[test]
    fn bilateral_deal_commits_atomically() {
        let (mut eco, bw, cpu, ca, cb) = two_party();
        // The paper's §1 deal: A -> B 30% (of A's bandwidth-holding
        // currency), B -> A 20% (of B's CPU-holding currency).
        let outcome = eco
            .apply_batch(&[
                Op::IssueRelative { from: ca, to: cb, face: 30.0, nature: Sharing },
                Op::IssueRelative { from: cb, to: ca, face: 20.0, nature: Sharing },
            ])
            .unwrap();
        assert_eq!(outcome.tickets.len(), 2);
        assert!(outcome.tickets.iter().all(Option::is_some));
        // The two relative tickets form a funding cycle with gain
        // 0.3 × 0.2 = 0.06; per kind: g_A = base_A / (1 − 0.06),
        // g_B = 0.3 · g_A (bandwidth), and symmetrically for CPU.
        let vbw = eco.value_report(bw).unwrap();
        let vcpu = eco.value_report(cpu).unwrap();
        let ga_bw = 100.0 / (1.0 - 0.06);
        assert!((vbw.currency_value(ca) - ga_bw).abs() < 1e-9);
        assert!((vbw.currency_value(cb) - 0.3 * ga_bw).abs() < 1e-9);
        let gb_cpu = 50.0 / (1.0 - 0.06);
        assert!((vcpu.currency_value(ca) - 0.2 * gb_cpu).abs() < 1e-9);
    }

    #[test]
    fn failing_op_rolls_back_everything() {
        let (mut eco, bw, _cpu, ca, cb) = two_party();
        let before_tickets = eco.tickets().len();
        let err = eco
            .apply_batch(&[
                Op::IssueRelative { from: ca, to: cb, face: 30.0, nature: Sharing },
                // Self-backing: invalid.
                Op::IssueRelative { from: cb, to: cb, face: 10.0, nature: Sharing },
            ])
            .unwrap_err();
        assert_eq!(err.index, 1);
        assert!(matches!(err.error, EconomyError::SelfBacking(_)));
        // Nothing applied, including the valid first op.
        assert_eq!(eco.tickets().len(), before_tickets);
        let v = eco.value_report(bw).unwrap();
        assert_eq!(v.currency_value(cb), 0.0);
    }

    #[test]
    fn batch_can_restructure_agreements() {
        let (mut eco, bw, _cpu, ca, cb) = two_party();
        let old = eco.issue_relative(ca, cb, 50.0, Sharing).unwrap();
        // Renegotiate: revoke the 50% deal and replace with 20% + a fixed
        // 5-unit absolute floor, atomically.
        eco.apply_batch(&[
            Op::Revoke { ticket: old },
            Op::IssueRelative { from: ca, to: cb, face: 20.0, nature: Sharing },
            Op::IssueAbsolute { from: ca, to: cb, resource: bw, amount: 5.0, nature: Sharing },
        ])
        .unwrap();
        let v = eco.value_report(bw).unwrap();
        assert!((v.currency_value(cb) - 25.0).abs() < 1e-9, "20 + 5");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (mut eco, _bw, _cpu, _ca, _cb) = two_party();
        let before = eco.tickets().len();
        let outcome = eco.apply_batch(&[]).unwrap();
        assert!(outcome.tickets.is_empty());
        assert_eq!(eco.tickets().len(), before);
    }

    #[test]
    fn error_display_names_the_op() {
        let (mut eco, _bw, _cpu, ca, _cb) = two_party();
        let err =
            eco.apply_batch(&[Op::SetFaceTotal { currency: ca, face_total: -1.0 }]).unwrap_err();
        assert!(err.to_string().contains("op 0"), "{err}");
    }
}
