//! Property tests on workload generation and serialization.

use agreements_trace::io;
use agreements_trace::{
    DiurnalProfile, ProxyTrace, Request, ResponseLenDist, SkewMode, TraceConfig, DAY_SECONDS,
};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = TraceConfig> {
    (500usize..=5000, any::<u64>(), prop_oneof![Just(false), Just(true)]).prop_map(
        |(requests_per_day, seed, flat)| TraceConfig {
            requests_per_day,
            seed,
            profile: if flat { DiurnalProfile::flat() } else { DiurnalProfile::paper() },
            lengths: ResponseLenDist::web1996(),
            skew_mode: SkewMode::SharedShifted,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated volume concentrates near the requested count (Poisson:
    /// ±5σ), arrivals stay in-range and sorted, and generation is
    /// deterministic.
    #[test]
    fn generation_is_well_formed(cfg in arb_config(), proxies in 1usize..=4) {
        let traces = cfg.generate(proxies, 1800.0);
        prop_assert_eq!(traces.len(), proxies);
        for t in &traces {
            let n = t.requests.len() as f64;
            let expect = cfg.requests_per_day as f64;
            prop_assert!((n - expect).abs() < 5.0 * expect.sqrt() + 10.0,
                "volume {n} vs requested {expect}");
            for w in t.requests.windows(2) {
                prop_assert!(w[0].arrival <= w[1].arrival);
            }
            prop_assert!(t.requests.iter().all(|r|
                (0.0..DAY_SECONDS).contains(&r.arrival) && r.response_len >= 1));
        }
        let again = cfg.generate(proxies, 1800.0);
        prop_assert_eq!(traces, again);
    }

    /// Shared-shifted streams are exact rotations: same multiset of
    /// response lengths, same request count, per-slot counts rotated.
    #[test]
    fn skew_preserves_content(cfg in arb_config(), slots_shift in 1usize..=24) {
        let gap = slots_shift as f64 * 600.0;
        let traces = cfg.generate(2, gap);
        prop_assert_eq!(traces[0].requests.len(), traces[1].requests.len());
        let mut l0: Vec<u64> = traces[0].requests.iter().map(|r| r.response_len).collect();
        let mut l1: Vec<u64> = traces[1].requests.iter().map(|r| r.response_len).collect();
        l0.sort_unstable();
        l1.sort_unstable();
        prop_assert_eq!(l0, l1);
        let c0 = traces[0].per_slot_counts();
        let c1 = traces[1].per_slot_counts();
        for s in 0..c0.len() {
            prop_assert_eq!(c0[s], c1[(s + slots_shift) % c0.len()]);
        }
    }

    /// Binary serialization round-trips any generated trace exactly.
    #[test]
    fn binary_round_trip(cfg in arb_config()) {
        let t = cfg.generate(1, 0.0).remove(0);
        let back = io::from_bytes(io::to_bytes(&t)).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Arbitrary (non-generated) traces also round-trip, including edge
    /// values.
    #[test]
    fn binary_round_trip_arbitrary(
        arrivals in proptest::collection::vec(0.0f64..86_400.0, 0..200),
        lens in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let n = arrivals.len().min(lens.len());
        let requests: Vec<Request> = (0..n)
            .map(|i| Request { arrival: arrivals[i], response_len: lens[i] })
            .collect();
        let t = ProxyTrace { proxy: 3, requests };
        let back = io::from_bytes(io::to_bytes(&t)).unwrap();
        prop_assert_eq!(back, t);
    }
}
