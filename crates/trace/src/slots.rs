//! Time-slot helpers: the paper reports everything per 10-minute slot of
//! a 24-hour day.

/// Seconds in the simulated day.
pub const DAY_SECONDS: f64 = 86_400.0;

/// Reporting slot width (10 minutes), as in the paper's figures.
pub const SLOT_SECONDS: f64 = 600.0;

/// Number of reporting slots per day.
pub const SLOTS_PER_DAY: usize = (DAY_SECONDS / SLOT_SECONDS) as usize;

/// The reporting slot containing time `t` (seconds, wrapped into the day).
pub fn slot_of(t: f64) -> usize {
    let t = t.rem_euclid(DAY_SECONDS);
    ((t / SLOT_SECONDS) as usize).min(SLOTS_PER_DAY - 1)
}

/// Wrap an absolute time into `[0, DAY_SECONDS)`.
pub fn wrap_day(t: f64) -> f64 {
    t.rem_euclid(DAY_SECONDS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_consistent() {
        assert_eq!(SLOTS_PER_DAY, 144);
        assert_eq!(SLOT_SECONDS * SLOTS_PER_DAY as f64, DAY_SECONDS);
    }

    #[test]
    fn slot_of_boundaries() {
        assert_eq!(slot_of(0.0), 0);
        assert_eq!(slot_of(599.9), 0);
        assert_eq!(slot_of(600.0), 1);
        assert_eq!(slot_of(86_399.9), 143);
        assert_eq!(slot_of(86_400.0), 0, "wraps");
        assert_eq!(slot_of(-1.0), 143, "negative wraps backwards");
    }

    #[test]
    fn wrap_day_is_periodic() {
        assert_eq!(wrap_day(86_400.0 + 5.0), 5.0);
        assert_eq!(wrap_day(-5.0), 86_395.0);
        assert_eq!(wrap_day(42.0), 42.0);
    }
}
