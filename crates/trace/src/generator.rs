//! Trace generation: Poisson arrivals under the diurnal profile, with
//! per-proxy time skew.

use crate::lengths::ResponseLenDist;
use crate::profile::DiurnalProfile;
use crate::request::Request;
use crate::slots::{wrap_day, DAY_SECONDS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the per-proxy streams relate to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkewMode {
    /// One base stream, shifted by `p · gap` seconds for proxy `p`
    /// (wrapping the day). This matches the paper, which replays the same
    /// averaged 24 h trace at every ISP with a time-zone offset.
    SharedShifted,
    /// Independent streams per proxy (different seeds), each shifted.
    /// Useful for robustness checks.
    IndependentShifted,
}

/// Configuration for a synthetic trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Expected number of requests per proxy per day.
    pub requests_per_day: usize,
    /// RNG seed (all generation is deterministic given this).
    pub seed: u64,
    /// Diurnal rate shape.
    pub profile: DiurnalProfile,
    /// Response length distribution.
    pub lengths: ResponseLenDist,
    /// Stream relationship across proxies.
    pub skew_mode: SkewMode,
}

impl TraceConfig {
    /// Paper-shaped config with the given volume and seed.
    pub fn paper(requests_per_day: usize, seed: u64) -> Self {
        TraceConfig {
            requests_per_day,
            seed,
            profile: DiurnalProfile::paper(),
            lengths: ResponseLenDist::web1996(),
            skew_mode: SkewMode::SharedShifted,
        }
    }

    /// Generate streams for `proxies` proxies with `gap` seconds of skew
    /// between consecutive proxies. Each stream is sorted by arrival.
    pub fn generate(&self, proxies: usize, gap: f64) -> Vec<ProxyTrace> {
        match self.skew_mode {
            SkewMode::SharedShifted => {
                let base = generate_stream(self, self.seed);
                (0..proxies)
                    .map(|p| ProxyTrace { proxy: p, requests: shift_stream(&base, p as f64 * gap) })
                    .collect()
            }
            SkewMode::IndependentShifted => (0..proxies)
                .map(|p| {
                    let stream = generate_stream(self, self.seed.wrapping_add(p as u64 + 1));
                    ProxyTrace { proxy: p, requests: shift_stream(&stream, p as f64 * gap) }
                })
                .collect(),
        }
    }
}

/// One proxy's request stream for the simulated day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyTrace {
    /// Proxy index.
    pub proxy: usize,
    /// Requests sorted by arrival time.
    pub requests: Vec<Request>,
}

impl ProxyTrace {
    /// Requests per reporting slot (for Figure 5's solid line).
    pub fn per_slot_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; crate::slots::SLOTS_PER_DAY];
        for r in &self.requests {
            counts[crate::slots::slot_of(r.arrival)] += 1;
        }
        counts
    }
}

/// Generate one day's stream: per-second thinned Poisson arrivals under
/// the profile, each with a sampled response length.
fn generate_stream(cfg: &TraceConfig, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let total_weight = cfg.profile.total_weight();
    // rate(t) = requests_per_day * profile(t) / total_weight  [req/s]
    let scale = cfg.requests_per_day as f64 / total_weight;
    let peak_rate =
        (0..24).map(|h| cfg.profile.rate_at(h as f64 * 3600.0 + 1800.0)).fold(0.0f64, f64::max)
            * scale;
    // Thinning: homogeneous Poisson at peak_rate, accept with
    // rate(t)/peak_rate.
    let mut requests = Vec::with_capacity(cfg.requests_per_day + 1024);
    let mut t = 0.0f64;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / peak_rate;
        if t >= DAY_SECONDS {
            break;
        }
        let accept = cfg.profile.rate_at(t) * scale / peak_rate;
        if rng.gen::<f64>() < accept {
            requests.push(Request { arrival: t, response_len: cfg.lengths.sample(&mut rng) });
        }
    }
    requests
}

/// Shift every arrival by `offset` seconds, wrapping the day, and re-sort.
fn shift_stream(base: &[Request], offset: f64) -> Vec<Request> {
    let mut out: Vec<Request> = base
        .iter()
        .map(|r| Request { arrival: wrap_day(r.arrival + offset), response_len: r.response_len })
        .collect();
    out.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite arrivals"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slots::{slot_of, SLOTS_PER_DAY};

    fn small_cfg() -> TraceConfig {
        TraceConfig::paper(20_000, 11)
    }

    #[test]
    fn volume_is_approximately_requested() {
        let traces = small_cfg().generate(1, 0.0);
        let n = traces[0].requests.len();
        assert!((n as f64 - 20_000.0).abs() < 20_000.0 * 0.05, "generated {n} requests");
    }

    #[test]
    fn arrivals_sorted_and_in_range() {
        let traces = small_cfg().generate(3, 3600.0);
        for t in &traces {
            for w in t.requests.windows(2) {
                assert!(w[0].arrival <= w[1].arrival);
            }
            assert!(t.requests.iter().all(|r| (0.0..DAY_SECONDS).contains(&r.arrival)));
        }
    }

    #[test]
    fn diurnal_shape_visible_in_slot_counts() {
        let traces = TraceConfig::paper(100_000, 5).generate(1, 0.0);
        let counts = traces[0].per_slot_counts();
        assert_eq!(counts.len(), SLOTS_PER_DAY);
        // Midnight slots busier than 6 am slots by at least 3x.
        let midnight: usize = counts[0..6].iter().sum();
        let morning: usize = counts[36..42].iter().sum(); // 06:00-07:00
        assert!(midnight > morning * 3, "midnight {midnight} vs morning {morning}");
    }

    #[test]
    fn shared_shifted_streams_are_rotations() {
        let traces = small_cfg().generate(2, 3600.0);
        let (a, b) = (&traces[0].requests, &traces[1].requests);
        assert_eq!(a.len(), b.len());
        // Total per-slot counts must match after rotating 6 slots (1 h).
        let ca = traces[0].per_slot_counts();
        let cb = traces[1].per_slot_counts();
        for s in 0..SLOTS_PER_DAY {
            assert_eq!(ca[s], cb[(s + 6) % SLOTS_PER_DAY], "slot {s}");
        }
    }

    #[test]
    fn independent_streams_differ() {
        let mut cfg = small_cfg();
        cfg.skew_mode = SkewMode::IndependentShifted;
        let traces = cfg.generate(2, 0.0);
        assert_ne!(traces[0].requests, traces[1].requests);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_cfg().generate(2, 1800.0);
        let b = small_cfg().generate(2, 1800.0);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_gap_means_identical_streams() {
        let traces = small_cfg().generate(3, 0.0);
        assert_eq!(traces[0].requests, traces[1].requests);
        assert_eq!(traces[1].requests, traces[2].requests);
    }

    #[test]
    fn per_slot_counts_total_matches() {
        let traces = small_cfg().generate(1, 0.0);
        let counts = traces[0].per_slot_counts();
        assert_eq!(counts.iter().sum::<usize>(), traces[0].requests.len());
        let _ = slot_of(0.0);
    }
}
