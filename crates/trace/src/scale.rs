//! Large-n enforcement workloads: the 10-proxy ISP case study grown to
//! hundreds or thousands of principals.
//!
//! The paper's case study federates 10 ISP proxies; the ROADMAP north
//! star is pools serving millions of users, so the enforcement plane has
//! to be exercised far past n = 10. [`ScaleConfig`] describes a synthetic
//! economy of `n` principals in regional groups of
//! [`ScaleConfig::group_size`]:
//!
//! - **Agreements** ([`ScaleConfig::agreements`]): complete sharing at
//!   [`ScaleConfig::intra_share`] inside each group (the paper's
//!   hierarchical taxonomy), and a mutual [`ScaleConfig::inter_share`]
//!   between every member pair of groups within
//!   [`ScaleConfig::neighbour_span`] ring positions — regional proxies
//!   back each other up, distant ones don't.
//! - **Load** ([`ScaleConfig::generate`]): every principal emits diurnal
//!   Poisson demand ([`DiurnalProfile::paper`], the Figure 5 shape), but
//!   each *group* lives in its own time zone — group `g`'s stream is
//!   phase-shifted by `g / num_groups` of a day. Peaks are therefore
//!   group-skewed: when one region is at midnight load, its ring
//!   neighbours are off-peak and have spare capacity to share, which is
//!   exactly the economics that made sharing pay in Figure 6.
//!
//! Generation is deterministic given the seed: per-principal RNG streams
//! (splitmix-derived, so inserting a principal never shifts another's
//! draws) and a stable time-then-principal ordering of the merged stream.

use crate::profile::DiurnalProfile;
use crate::slots::DAY_SECONDS;
use agreements_flow::{AgreementMatrix, FlowError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a large-n enforcement workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// Number of principals.
    pub n: usize,
    /// Members per regional group (the last group may be smaller).
    pub group_size: usize,
    /// Total demand events across all principals for the day.
    pub requests: usize,
    /// RNG seed; generation is a pure function of the config.
    pub seed: u64,
    /// Per-principal resource pool at the start of each epoch.
    pub base_availability: f64,
    /// Mean demand size (exponentially distributed).
    pub mean_demand: f64,
    /// Intra-group share (complete within the group).
    pub intra_share: f64,
    /// Mutual share between members of ring-neighbouring groups.
    pub inter_share: f64,
    /// How many ring positions away groups still hold agreements.
    pub neighbour_span: usize,
}

impl ScaleConfig {
    /// The grown ISP case study: groups of 8 regional proxies, full
    /// sharing within a region, 25% mutual backup with the two nearest
    /// regions either side, paper-shaped diurnal demand. Pools are sized
    /// so a region's peak hour *overflows* its own group and must borrow
    /// from off-peak neighbours — the Figure 6 economics at scale.
    pub fn isp(n: usize, requests: usize, seed: u64) -> Self {
        ScaleConfig {
            n,
            group_size: 8,
            requests,
            seed,
            base_availability: 6.0,
            mean_demand: 3.0,
            intra_share: 1.0,
            inter_share: 0.25,
            neighbour_span: 2,
        }
    }

    /// Number of groups the economy partitions into.
    pub fn num_groups(&self) -> usize {
        self.n.div_ceil(self.group_size.max(1))
    }

    /// Group of principal `p` (consecutive blocks).
    pub fn group_of(&self, p: usize) -> usize {
        p / self.group_size.max(1)
    }

    /// Build the agreement economy (see module docs). The structure is
    /// block-uniform, so `agreements_flow::auto_partition` with the
    /// default options recovers exactly the consecutive groups.
    pub fn agreements(&self) -> Result<AgreementMatrix, FlowError> {
        let mut s = AgreementMatrix::zeros(self.n);
        let ng = self.num_groups();
        for i in 0..self.n {
            let gi = self.group_of(i);
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                let gj = self.group_of(j);
                if gi == gj {
                    if self.intra_share > 0.0 {
                        s.set(i, j, self.intra_share)?;
                    }
                } else if self.inter_share > 0.0 && ng > 1 {
                    // Ring distance between the groups.
                    let d = gi.abs_diff(gj).min(ng - gi.abs_diff(gj));
                    if d <= self.neighbour_span {
                        s.set(i, j, self.inter_share)?;
                    }
                }
            }
        }
        Ok(s)
    }

    /// Generate the day's demand stream (see module docs for determinism).
    pub fn generate(&self) -> ScaleWorkload {
        let profile = DiurnalProfile::paper();
        // Peak rate for rejection sampling (piecewise-hourly profile).
        let peak = (0..24).map(|h| profile.rate_at(h as f64 * 3600.0)).fold(0.0, f64::max);
        let ng = self.num_groups().max(1);
        let per = self.requests / self.n.max(1);
        let extra = self.requests % self.n.max(1);
        let mut demands = Vec::with_capacity(self.requests);
        for p in 0..self.n {
            // Independent per-principal stream: a splitmix step decouples
            // principal seeds, so changing `n` never reshuffles the
            // surviving principals' draws.
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ (p as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let phase = (self.group_of(p) % ng) as f64 / ng as f64 * DAY_SECONDS;
            let count = per + usize::from(p < extra);
            let mut emitted = 0usize;
            while emitted < count {
                let t: f64 = rng.gen_range(0.0..DAY_SECONDS);
                // Group-skewed diurnal thinning: evaluate the profile in
                // the group's local time.
                let local = (t + phase) % DAY_SECONDS;
                if rng.gen::<f64>() < profile.rate_at(local) / peak {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let amount = -self.mean_demand * u.ln();
                    demands.push(Demand { t, requester: p, amount });
                    emitted += 1;
                }
            }
        }
        demands.sort_by(|a, b| {
            a.t.partial_cmp(&b.t).expect("finite times").then(a.requester.cmp(&b.requester))
        });
        ScaleWorkload { availability: vec![self.base_availability; self.n], demands }
    }
}

/// One demand event: principal `requester` asks for `amount` at time `t`
/// (seconds into the day).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Arrival time in seconds from midnight.
    pub t: f64,
    /// Requesting principal.
    pub requester: usize,
    /// Requested amount.
    pub amount: f64,
}

/// A generated workload: the initial availability vector plus the
/// time-ordered demand stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleWorkload {
    /// Per-principal pool at the start of each epoch.
    pub availability: Vec<f64>,
    /// Demands sorted by arrival time (ties broken by principal).
    pub demands: Vec<Demand>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreements_flow::{auto_partition, PartitionOptions};

    #[test]
    fn generation_is_deterministic() {
        let cfg = ScaleConfig::isp(40, 500, 42);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        assert_eq!(a.demands.len(), 500);
    }

    #[test]
    fn demands_are_time_ordered_and_positive() {
        let w = ScaleConfig::isp(24, 300, 7).generate();
        for pair in w.demands.windows(2) {
            assert!(pair[0].t <= pair[1].t);
        }
        for d in &w.demands {
            assert!(d.amount > 0.0 && d.amount.is_finite());
            assert!((0.0..DAY_SECONDS).contains(&d.t));
            assert!(d.requester < 24);
        }
    }

    #[test]
    fn auto_partition_recovers_the_groups() {
        let cfg = ScaleConfig::isp(40, 10, 1);
        let s = cfg.agreements().unwrap();
        let p = auto_partition(&s, &PartitionOptions::default()).unwrap();
        assert_eq!(p.num_groups(), cfg.num_groups());
        for (g, members) in p.groups.iter().enumerate() {
            for &m in members {
                assert_eq!(cfg.group_of(m), g);
            }
        }
        // Ring neighbours share the configured aggregate.
        assert!((p.inter.get(0, 1) - cfg.inter_share).abs() < 1e-12);
        // Distant groups don't (5 groups, span 2: distance 0↔2 is within
        // span, so shrink the span to check the cut-off).
        let tight = ScaleConfig { neighbour_span: 1, ..cfg };
        let p2 =
            auto_partition(&tight.agreements().unwrap(), &PartitionOptions::default()).unwrap();
        assert_eq!(p2.inter.get(0, 2), 0.0);
    }

    #[test]
    fn group_phases_skew_the_peaks() {
        // With many groups, two groups half a day apart must peak in
        // different halves of the day.
        let cfg = ScaleConfig { group_size: 10, ..ScaleConfig::isp(40, 4000, 3) };
        let w = cfg.generate();
        let ng = cfg.num_groups();
        let half = DAY_SECONDS / 2.0;
        let mut first_half = vec![0usize; ng];
        let mut totals = vec![0usize; ng];
        for d in &w.demands {
            let g = cfg.group_of(d.requester);
            totals[g] += 1;
            if d.t < half {
                first_half[g] += 1;
            }
        }
        // Groups 0 and 2 are half a day apart (4 groups): their
        // first-half fractions must differ substantially.
        let f0 = first_half[0] as f64 / totals[0] as f64;
        let f2 = first_half[2] as f64 / totals[2] as f64;
        assert!((f0 - f2).abs() > 0.15, "expected skewed peaks, got {f0:.3} vs {f2:.3}");
    }
}
