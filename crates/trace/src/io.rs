//! Trace (de)serialization: a compact binary format plus CSV export.
//!
//! Binary layout (little-endian):
//!
//! ```text
//! magic  "AGTR"            4 bytes
//! version u32              currently 1
//! proxy   u32
//! count   u64
//! count × { arrival f64, response_len u64 }
//! ```

use crate::generator::ProxyTrace;
use crate::request::Request;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io;

const MAGIC: &[u8; 4] = b"AGTR";
const VERSION: u32 = 1;

/// Serialize one proxy trace to the binary format.
pub fn to_bytes(trace: &ProxyTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 4 + 4 + 8 + trace.requests.len() * 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(trace.proxy as u32);
    buf.put_u64_le(trace.requests.len() as u64);
    for r in &trace.requests {
        buf.put_f64_le(r.arrival);
        buf.put_u64_le(r.response_len);
    }
    buf.freeze()
}

/// Deserialize a proxy trace from the binary format.
pub fn from_bytes(mut data: Bytes) -> io::Result<ProxyTrace> {
    let err = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if data.remaining() < 20 {
        return Err(err("trace too short"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(err(&format!("unsupported version {version}")));
    }
    let proxy = data.get_u32_le() as usize;
    let count = data.get_u64_le() as usize;
    if data.remaining() < count.saturating_mul(16) {
        return Err(err("truncated trace body"));
    }
    let mut requests = Vec::with_capacity(count);
    for _ in 0..count {
        let arrival = data.get_f64_le();
        let response_len = data.get_u64_le();
        if !arrival.is_finite() || arrival < 0.0 {
            return Err(err("invalid arrival time"));
        }
        requests.push(Request { arrival, response_len });
    }
    Ok(ProxyTrace { proxy, requests })
}

/// Write a trace as CSV (`arrival,response_len`), with a header row.
pub fn to_csv(trace: &ProxyTrace) -> String {
    let mut s = String::with_capacity(trace.requests.len() * 24 + 32);
    s.push_str("arrival,response_len\n");
    for r in &trace.requests {
        s.push_str(&format!("{:.6},{}\n", r.arrival, r.response_len));
    }
    s
}

/// Parse the CSV produced by [`to_csv`].
pub fn from_csv(proxy: usize, csv: &str) -> io::Result<ProxyTrace> {
    let err = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut requests = Vec::new();
    for (i, line) in csv.lines().enumerate() {
        if i == 0 {
            continue; // header
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, ',');
        let arrival: f64 = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| err(format!("bad arrival on line {}", i + 1)))?;
        let response_len: u64 = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| err(format!("bad length on line {}", i + 1)))?;
        requests.push(Request { arrival, response_len });
    }
    Ok(ProxyTrace { proxy, requests })
}

/// Parse an ASCII trace in the style of the UC Berkeley Home-IP HTTP
/// logs' common text export: whitespace-separated fields per line with
/// the request timestamp (seconds, possibly fractional) in the first
/// field and the response size in bytes in the last numeric field.
/// Lines starting with `#` and blank lines are skipped; timestamps are
/// normalized so the trace starts at 0 and are wrapped into a 24-hour
/// day (the paper averages its 18 days into one).
///
/// This exists so users holding the original traces the paper used can
/// feed them directly; the synthetic generator is the default substitute.
pub fn from_homeip(proxy: usize, text: &str) -> io::Result<ProxyTrace> {
    let err = |line: usize, msg: &str| {
        io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {msg}", line + 1))
    };
    let mut raw: Vec<(f64, u64)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let ts: f64 = fields[0].parse().map_err(|_| err(i, "first field is not a timestamp"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(err(i, "invalid timestamp"));
        }
        // Last parseable unsigned field is the response size.
        let size = fields
            .iter()
            .rev()
            .find_map(|f| f.parse::<u64>().ok())
            .ok_or_else(|| err(i, "no response size field"))?;
        raw.push((ts, size));
    }
    let t0 = raw.iter().map(|&(t, _)| t).fold(f64::INFINITY, f64::min);
    let mut requests: Vec<Request> = raw
        .into_iter()
        .map(|(t, size)| Request { arrival: crate::slots::wrap_day(t - t0), response_len: size })
        .collect();
    requests.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite"));
    Ok(ProxyTrace { proxy, requests })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceConfig;

    fn sample_trace() -> ProxyTrace {
        let mut t = TraceConfig::paper(500, 3).generate(1, 0.0).remove(0);
        t.proxy = 2;
        t
    }

    #[test]
    fn binary_round_trip() {
        let t = sample_trace();
        let bytes = to_bytes(&t);
        let back = from_bytes(bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let t = sample_trace();
        let mut raw = to_bytes(&t).to_vec();
        raw[0] = b'X';
        assert!(from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let t = sample_trace();
        let raw = to_bytes(&t);
        let cut = raw.slice(0..raw.len() - 8);
        assert!(from_bytes(cut).is_err());
        assert!(from_bytes(Bytes::from_static(b"AG")).is_err());
    }

    #[test]
    fn binary_rejects_bad_version() {
        let t = sample_trace();
        let mut raw = to_bytes(&t).to_vec();
        raw[4] = 9;
        assert!(from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn csv_round_trip() {
        let t = sample_trace();
        let csv = to_csv(&t);
        let back = from_csv(2, &csv).unwrap();
        assert_eq!(back.requests.len(), t.requests.len());
        for (a, b) in back.requests.iter().zip(&t.requests) {
            assert!((a.arrival - b.arrival).abs() < 1e-5);
            assert_eq!(a.response_len, b.response_len);
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(from_csv(0, "arrival,response_len\nnot,a,number\n").is_err());
        assert!(from_csv(0, "arrival,response_len\n1.5\n").is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = ProxyTrace { proxy: 0, requests: vec![] };
        assert_eq!(from_bytes(to_bytes(&t)).unwrap(), t);
        assert_eq!(from_csv(0, &to_csv(&t)).unwrap(), t);
    }

    #[test]
    fn homeip_parses_and_normalizes() {
        let text = "\
# comment line
846890400.125 client42 GET http://a/b 200 5120
846890401.500 client07 GET http://c/d 200 1024

846890400.000 client99 GET http://e/f 304 64
";
        let t = from_homeip(3, text).unwrap();
        assert_eq!(t.proxy, 3);
        assert_eq!(t.requests.len(), 3);
        // Normalized: earliest timestamp becomes 0; sorted by arrival.
        assert_eq!(t.requests[0].arrival, 0.0);
        assert_eq!(t.requests[0].response_len, 64);
        assert!((t.requests[1].arrival - 0.125).abs() < 1e-9);
        assert_eq!(t.requests[1].response_len, 5120);
        assert!((t.requests[2].arrival - 1.5).abs() < 1e-9);
    }

    #[test]
    fn homeip_wraps_multi_day_timestamps() {
        let text = "0.0 x 100\n90000.0 y 200\n"; // 90000 s > one day
        let t = from_homeip(0, text).unwrap();
        assert_eq!(t.requests.len(), 2);
        assert!((t.requests[1].arrival - 3600.0).abs() < 1e-9, "wrapped");
    }

    #[test]
    fn homeip_rejects_garbage() {
        assert!(from_homeip(0, "notanumber field 10\n").is_err());
        assert!(from_homeip(0, "1.5 no size here at all\n").is_err());
        assert!(from_homeip(0, "-5.0 x 10\n").is_err());
    }

    #[test]
    fn homeip_empty_input_is_empty_trace() {
        let t = from_homeip(0, "# only comments\n\n").unwrap();
        assert!(t.requests.is_empty());
    }
}
