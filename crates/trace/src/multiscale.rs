//! Multi-resource large-n enforcement workloads: the scaled ISP economy
//! of [`crate::scale`] with CPU, bandwidth, and storage demanded
//! together.
//!
//! [`MultiScaleConfig`] wraps a [`ScaleConfig`] and expands every demand
//! event into a per-resource amount vector with **heterogeneous demand
//! profiles**: principal `p` belongs to demand class `p % 3`, and each
//! class is *dominant* in a different resource — class 0 is
//! compute-heavy, class 1 bandwidth-heavy, class 2 storage-heavy. The
//! dominant lane draws [`MultiScaleConfig::dominant_factor`] × the base
//! amount, the other lanes [`MultiScaleConfig::minor_factor`] ×. Mixing
//! classes within every group means no resource is uniformly scarce for
//! a whole region, so DRF-style dominant-share fairness questions (who
//! is envied, whose complaint is justified) have non-trivial answers.
//!
//! Per-resource pools are scaled copies of the base pool
//! ([`MultiScaleConfig::capacity_scale`]); the ISP preset makes
//! bandwidth the tightest lane, so multi-resource rejections genuinely
//! cite different binding resources across the day.
//!
//! Determinism: the expansion is a pure function of the wrapped
//! workload, which is itself a pure function of the seed.

use crate::scale::{ScaleConfig, ScaleWorkload};

/// The standard three-resource schema, lane order (kept in sync with
/// `agreements_sched::STANDARD_RESOURCES` — asserted in tests there).
pub const RESOURCE_NAMES: [&str; 3] = ["cpu", "bandwidth", "storage"];

/// Configuration of a multi-resource scaled workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiScaleConfig {
    /// The single-resource economy and demand stream being expanded.
    pub base: ScaleConfig,
    /// Per-resource pool scale: lane `r`'s availability is
    /// `base_availability * capacity_scale[r]` per principal.
    pub capacity_scale: [f64; 3],
    /// Demand multiplier in a principal's dominant resource.
    pub dominant_factor: f64,
    /// Demand multiplier in its two minor resources.
    pub minor_factor: f64,
}

impl MultiScaleConfig {
    /// The multi-resource ISP case study over [`ScaleConfig::isp`]:
    /// bandwidth pools at 60% of CPU (the binding lane under load),
    /// storage at 140% (rarely binding), dominant demand at 3× minor.
    pub fn isp_multi(n: usize, requests: usize, seed: u64) -> Self {
        MultiScaleConfig {
            base: ScaleConfig::isp(n, requests, seed),
            capacity_scale: [1.0, 0.6, 1.4],
            dominant_factor: 3.0,
            minor_factor: 0.5,
        }
    }

    /// Demand class of principal `p`: the index of its dominant
    /// resource lane.
    pub fn class_of(&self, p: usize) -> usize {
        p % RESOURCE_NAMES.len()
    }

    /// Generate the day's multi-resource demand stream (deterministic
    /// per seed; see module docs for the expansion rule).
    pub fn generate(&self) -> MultiScaleWorkload {
        let ScaleWorkload { availability, demands } = self.base.generate();
        let expanded = demands
            .iter()
            .map(|d| {
                let c = self.class_of(d.requester);
                let amounts = (0..RESOURCE_NAMES.len())
                    .map(|r| {
                        d.amount * if r == c { self.dominant_factor } else { self.minor_factor }
                    })
                    .collect();
                MultiDemand { t: d.t, requester: d.requester, amounts }
            })
            .collect();
        let pools = self
            .capacity_scale
            .iter()
            .map(|&s| availability.iter().map(|&v| v * s).collect())
            .collect();
        MultiScaleWorkload { availability: pools, demands: expanded }
    }
}

/// One multi-resource demand event.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiDemand {
    /// Arrival time in seconds from midnight.
    pub t: f64,
    /// Requesting principal.
    pub requester: usize,
    /// Per-resource amounts, [`RESOURCE_NAMES`] order.
    pub amounts: Vec<f64>,
}

/// A generated multi-resource workload: one availability vector per
/// resource lane plus the time-ordered demand stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiScaleWorkload {
    /// Per-lane, per-principal pools at the start of each epoch.
    pub availability: Vec<Vec<f64>>,
    /// Demands sorted by arrival time (ties broken by principal).
    pub demands: Vec<MultiDemand>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_expands_the_base() {
        let cfg = MultiScaleConfig::isp_multi(24, 400, 11);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        assert_eq!(a.demands.len(), 400);
        assert_eq!(a.availability.len(), 3);
        // The base single-resource stream is recoverable lane-wise.
        let base = cfg.base.generate();
        for (d, m) in base.demands.iter().zip(&a.demands) {
            assert_eq!(d.t, m.t);
            assert_eq!(d.requester, m.requester);
            let c = cfg.class_of(d.requester);
            for (r, &x) in m.amounts.iter().enumerate() {
                let f = if r == c { cfg.dominant_factor } else { cfg.minor_factor };
                assert_eq!(x.to_bits(), (d.amount * f).to_bits());
            }
        }
    }

    #[test]
    fn classes_make_different_principals_dominant_in_different_lanes() {
        let cfg = MultiScaleConfig::isp_multi(9, 90, 5);
        let w = cfg.generate();
        for d in &w.demands {
            let c = cfg.class_of(d.requester);
            let (dominant, _) = d
                .amounts
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
                .unwrap();
            assert_eq!(dominant, c, "principal {} should dominate lane {}", d.requester, c);
        }
        // All three classes appear.
        let classes: std::collections::BTreeSet<usize> =
            w.demands.iter().map(|d| cfg.class_of(d.requester)).collect();
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn capacity_scale_shapes_the_lanes() {
        let cfg = MultiScaleConfig::isp_multi(16, 10, 2);
        let w = cfg.generate();
        let totals: Vec<f64> = w.availability.iter().map(|a| a.iter().sum()).collect();
        assert!(totals[1] < totals[0], "bandwidth pool must be the tight lane");
        assert!(totals[2] > totals[0], "storage pool must be the loose lane");
    }
}
