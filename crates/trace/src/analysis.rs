//! Workload analysis: offered load and utilization estimates.
//!
//! The case-study calibration (and anyone replaying their own traces)
//! needs to know how hot a workload runs relative to server capacity.
//! These helpers compute per-slot offered work and utilization `ρ`
//! directly from a trace and a [`ServiceModel`], making the calibration
//! in the experiments crate auditable rather than magic.

use crate::generator::ProxyTrace;
use crate::request::ServiceModel;
use crate::slots::{slot_of, SLOTS_PER_DAY, SLOT_SECONDS};

/// Total demanded work per reporting slot, in work-seconds.
pub fn offered_work_per_slot(trace: &ProxyTrace, service: &ServiceModel) -> Vec<f64> {
    let mut work = vec![0.0; SLOTS_PER_DAY];
    for r in &trace.requests {
        work[slot_of(r.arrival)] += service.demand(r);
    }
    work
}

/// Per-slot utilization `ρ = offered work / (capacity × slot length)` for
/// a server of the given capacity (work-seconds per second).
pub fn rho_per_slot(trace: &ProxyTrace, service: &ServiceModel, capacity: f64) -> Vec<f64> {
    offered_work_per_slot(trace, service)
        .into_iter()
        .map(|w| w / (capacity * SLOT_SECONDS))
        .collect()
}

/// Peak per-slot utilization.
pub fn peak_rho(trace: &ProxyTrace, service: &ServiceModel, capacity: f64) -> f64 {
    rho_per_slot(trace, service, capacity).into_iter().fold(0.0, f64::max)
}

/// Mean per-request demand in work-seconds (0 for an empty trace).
pub fn mean_demand(trace: &ProxyTrace, service: &ServiceModel) -> f64 {
    if trace.requests.is_empty() {
        return 0.0;
    }
    let total: f64 = trace.requests.iter().map(|r| service.demand(r)).sum();
    total / trace.requests.len() as f64
}

/// The capacity at which this trace's *peak* slot would run at the target
/// utilization — the calibration equation of the experiments crate,
/// derivable from any trace.
pub fn capacity_for_peak_rho(trace: &ProxyTrace, service: &ServiceModel, target_rho: f64) -> f64 {
    assert!(target_rho > 0.0, "target rho must be positive");
    let peak_work = offered_work_per_slot(trace, service).into_iter().fold(0.0f64, f64::max);
    peak_work / (SLOT_SECONDS * target_rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceConfig;
    use crate::request::Request;

    fn flat_trace(per_slot: usize, demand_len: u64) -> ProxyTrace {
        let mut requests = Vec::new();
        for s in 0..SLOTS_PER_DAY {
            for k in 0..per_slot {
                requests.push(Request {
                    arrival: s as f64 * SLOT_SECONDS + k as f64,
                    response_len: demand_len,
                });
            }
        }
        ProxyTrace { proxy: 0, requests }
    }

    #[test]
    fn offered_work_sums_demands() {
        let t = flat_trace(10, 100_000); // each 0.2 work-s
        let w = offered_work_per_slot(&t, &ServiceModel::PAPER);
        for slot_work in &w {
            assert!((slot_work - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rho_scales_inversely_with_capacity() {
        let t = flat_trace(10, 100_000);
        let rho1 = peak_rho(&t, &ServiceModel::PAPER, 1.0);
        let rho2 = peak_rho(&t, &ServiceModel::PAPER, 2.0);
        assert!((rho1 - 2.0 * rho2).abs() < 1e-9);
        // 2 work-s per 600 s at capacity 1 -> rho = 1/300.
        assert!((rho1 - 2.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_for_peak_rho_inverts_peak_rho() {
        let t = TraceConfig::paper(30_000, 5).generate(1, 0.0).remove(0);
        let svc = ServiceModel::PAPER;
        let cap = capacity_for_peak_rho(&t, &svc, 1.05);
        let rho = peak_rho(&t, &svc, cap);
        assert!((rho - 1.05).abs() < 1e-9, "rho {rho}");
    }

    #[test]
    fn paper_trace_peaks_at_midnight() {
        let t = TraceConfig::paper(50_000, 5).generate(1, 0.0).remove(0);
        let rho = rho_per_slot(&t, &ServiceModel::PAPER, 1.0);
        let midnight: f64 = rho[..6].iter().sum();
        let morning: f64 = rho[36..42].iter().sum();
        assert!(midnight > 2.5 * morning, "{midnight} vs {morning}");
    }

    #[test]
    fn mean_demand_in_expected_range() {
        let t = TraceConfig::paper(50_000, 5).generate(1, 0.0).remove(0);
        let m = mean_demand(&t, &ServiceModel::PAPER);
        assert!(m > 0.10 && m < 0.25, "mean demand {m}");
        let empty = ProxyTrace { proxy: 0, requests: vec![] };
        assert_eq!(mean_demand(&empty, &ServiceModel::PAPER), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_rho_panics() {
        let t = flat_trace(1, 1000);
        let _ = capacity_for_peak_rho(&t, &ServiceModel::PAPER, 0.0);
    }
}
