//! Heavy-tailed response-length distribution.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Response lengths: a lognormal body with a Pareto tail, the standard
/// two-component model for mid-1990s web responses. Defaults are
/// calibrated so the paper's service model (`0.1 + 1e-6·len`, cap 30 s)
/// averages ≈ 0.11–0.13 s per request — matching the paper's statement
/// that a 0.1 s redirection overhead is "approximately the same as the
/// average processing time".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseLenDist {
    /// Lognormal location (ln bytes).
    pub mu: f64,
    /// Lognormal scale.
    pub sigma: f64,
    /// Probability that a response is drawn from the Pareto tail instead
    /// of the body.
    pub tail_prob: f64,
    /// Pareto scale (minimum tail length, bytes).
    pub tail_xm: f64,
    /// Pareto shape; values slightly above 1 give the classic web heavy
    /// tail (finite mean, huge variance).
    pub tail_alpha: f64,
}

impl ResponseLenDist {
    /// Calibrated default (see type docs).
    pub fn web1996() -> Self {
        ResponseLenDist {
            mu: 8.0,    // median ≈ 3 kB
            sigma: 1.4, // body mean ≈ 8 kB
            tail_prob: 0.015,
            tail_xm: 150_000.0,
            tail_alpha: 1.2,
        }
    }

    /// Sample one response length in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let len = if rng.gen::<f64>() < self.tail_prob {
            // Pareto via inverse CDF.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            self.tail_xm / u.powf(1.0 / self.tail_alpha)
        } else {
            // Lognormal via Box-Muller.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (self.mu + self.sigma * z).exp()
        };
        // Clamp to a sane byte range (one byte to 1 GB).
        len.clamp(1.0, 1e9) as u64
    }
}

impl Default for ResponseLenDist {
    fn default() -> Self {
        Self::web1996()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, ServiceModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_positive_and_bounded() {
        let d = ResponseLenDist::web1996();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let len = d.sample(&mut rng);
            assert!(len >= 1);
            assert!(len <= 1_000_000_000);
        }
    }

    #[test]
    fn mean_service_time_matches_paper_claim() {
        // The paper says the 0.1 s redirection cost is about the average
        // processing time, i.e. the mean demand should be ≈ 0.1–0.2 s.
        let d = ResponseLenDist::web1996();
        let m = ServiceModel::PAPER;
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let total: f64 = (0..n)
            .map(|_| m.demand(&Request { arrival: 0.0, response_len: d.sample(&mut rng) }))
            .sum();
        let mean = total / n as f64;
        assert!(mean > 0.10 && mean < 0.25, "mean demand {mean}");
    }

    #[test]
    fn tail_produces_capped_requests() {
        // Some requests must hit the 30 s cap (the paper added the cap for
        // a reason); but they must be rare.
        let d = ResponseLenDist::web1996();
        let m = ServiceModel::PAPER;
        let mut rng = StdRng::seed_from_u64(7);
        let n = 500_000;
        let capped = (0..n)
            .filter(|_| {
                let len = d.sample(&mut rng);
                m.demand(&Request { arrival: 0.0, response_len: len }) >= 30.0
            })
            .count();
        assert!(capped > 0, "heavy tail must occasionally hit the cap");
        assert!((capped as f64) < n as f64 * 0.005, "capped {capped} of {n} too common");
    }

    #[test]
    fn median_is_a_few_kilobytes() {
        let d = ResponseLenDist::web1996();
        let mut rng = StdRng::seed_from_u64(3);
        let mut lens: Vec<u64> = (0..50_001).map(|_| d.sample(&mut rng)).collect();
        lens.sort_unstable();
        let median = lens[25_000];
        assert!(median > 1_000 && median < 10_000, "median {median}");
    }

    #[test]
    fn deterministic_under_seed() {
        let d = ResponseLenDist::web1996();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
