//! Request records and the paper's linear service-time model.

use serde::{Deserialize, Serialize};

/// One HTTP request in a proxy's stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time in seconds since the start of the simulated day.
    pub arrival: f64,
    /// Response length in bytes (drives resource demand).
    pub response_len: u64,
}

/// The paper's per-request resource model (§4.1): a request producing a
/// response of length `x` needs `min(a + b·x, cap)` seconds of the proxy's
/// collapsed "general" resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Fixed per-request overhead, seconds (paper: 0.1).
    pub a: f64,
    /// Per-byte cost, seconds (paper: 1e-6).
    pub b: f64,
    /// Cap preventing extreme responses from spiking waits (paper: 30).
    pub cap: f64,
}

impl ServiceModel {
    /// The paper's published parameters.
    pub const PAPER: ServiceModel = ServiceModel { a: 0.1, b: 1e-6, cap: 30.0 };

    /// Resource demand of a request, in seconds of server time.
    #[inline]
    pub fn demand(&self, req: &Request) -> f64 {
        (self.a + self.b * req.response_len as f64).min(self.cap)
    }
}

impl Default for ServiceModel {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        let m = ServiceModel::PAPER;
        assert_eq!(m.a, 0.1);
        assert_eq!(m.b, 1e-6);
        assert_eq!(m.cap, 30.0);
        assert_eq!(ServiceModel::default(), m);
    }

    #[test]
    fn demand_is_linear_until_cap() {
        let m = ServiceModel::PAPER;
        let d = m.demand(&Request { arrival: 0.0, response_len: 0 });
        assert!((d - 0.1).abs() < 1e-12);
        let d = m.demand(&Request { arrival: 0.0, response_len: 100_000 });
        assert!((d - 0.2).abs() < 1e-12);
        // 100 MB would cost 100.1 s; capped at 30.
        let d = m.demand(&Request { arrival: 0.0, response_len: 100_000_000 });
        assert_eq!(d, 30.0);
    }

    #[test]
    fn cap_boundary() {
        let m = ServiceModel::PAPER;
        // Exactly at the cap: a + b*x = 30 -> x = 29.9e6.
        let d = m.demand(&Request { arrival: 0.0, response_len: 29_900_000 });
        assert!((d - 30.0).abs() < 1e-9);
    }
}
