//! Synthetic web-proxy workload generation (paper §4.1 substrate).
//!
//! The paper drives its case study with the UC Berkeley Home-IP HTTP
//! traces (November 1996, 9M references, 18 days averaged into a single
//! 24-hour day). That trace is not redistributable here, so this crate
//! generates a *seeded synthetic equivalent* that reproduces the three
//! properties the evaluation actually depends on:
//!
//! 1. **Diurnal shape** (Figure 5): request rate heaviest around midnight,
//!    lightest in the early morning, ≈6:1 peak-to-trough — captured by
//!    [`DiurnalProfile`] as an hourly rate table with Poisson arrivals.
//! 2. **Heavy-tailed response lengths**: a lognormal body with a Pareto
//!    tail ([`ResponseLenDist`]), so that the per-request service time
//!    `min(a + b·len, c)` (with the paper's `a = 0.1 s`, `b = 10⁻⁶ s/B`,
//!    `c = 30 s`, see [`ServiceModel`]) averages ≈ 0.1–0.2 s while
//!    occasionally hitting the 30 s cap.
//! 3. **Time skew**: proxy `p`'s stream is the base stream shifted by
//!    `p · gap` seconds modulo 24 h ([`SkewMode`]), modeling
//!    geographically distributed ISPs (Figures 6, 9–11).
//!
//! Traces serialize to a compact binary format ([`io`]) and to CSV.

#![warn(missing_docs)]

pub mod analysis;
pub mod generator;
pub mod io;
pub mod lengths;
pub mod multiscale;
pub mod profile;
pub mod request;
pub mod scale;
pub mod slots;

pub use analysis::{capacity_for_peak_rho, mean_demand, peak_rho};
pub use generator::{ProxyTrace, SkewMode, TraceConfig};
pub use lengths::ResponseLenDist;
pub use multiscale::{MultiDemand, MultiScaleConfig, MultiScaleWorkload, RESOURCE_NAMES};
pub use profile::DiurnalProfile;
pub use request::{Request, ServiceModel};
pub use scale::{Demand, ScaleConfig, ScaleWorkload};
pub use slots::{slot_of, DAY_SECONDS, SLOTS_PER_DAY, SLOT_SECONDS};
