//! Diurnal load profile: relative request rates across the day.

use crate::slots::DAY_SECONDS;
use serde::{Deserialize, Serialize};

/// Relative request rates over the 24-hour day, given as 24 hourly
/// weights, linearly interpolated (wrapping) between hour centers.
///
/// The default reproduces the paper's Figure 5 shape for the Berkeley
/// Home-IP population: heaviest around midnight, quietest around 06:00,
/// with a peak-to-trough ratio ≈ 5.5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    hourly: [f64; 24],
}

/// Hourly weights, midnight first. Shape transcribed from the paper's
/// Figure 5 solid line (requests per 10-minute slot): ≈ flat maximum
/// 23:00–01:00, steep fall to a 05:00–07:00 trough, slow evening climb.
const FIGURE5_HOURLY: [f64; 24] = [
    1.00, 0.95, 0.80, 0.55, 0.35, 0.22, 0.18, 0.20, 0.28, 0.35, 0.40, 0.45, 0.50, 0.52, 0.55, 0.58,
    0.62, 0.68, 0.75, 0.82, 0.88, 0.93, 0.97, 1.00,
];

impl DiurnalProfile {
    /// The Figure 5 shape.
    pub fn paper() -> Self {
        DiurnalProfile { hourly: FIGURE5_HOURLY }
    }

    /// A flat profile (no diurnal variation) — the control case.
    pub fn flat() -> Self {
        DiurnalProfile { hourly: [1.0; 24] }
    }

    /// A business-hours profile (enterprise/ASP workloads, paper §1's
    /// application-service-provider motivation): ramp from 08:00, plateau
    /// 09:00–17:00, quiet nights. Peak-to-trough ≈ 10:1.
    pub fn business() -> Self {
        DiurnalProfile {
            hourly: [
                0.12, 0.10, 0.10, 0.10, 0.10, 0.12, 0.20, 0.45, 0.80, 1.00, 1.00, 0.95, 0.85, 0.95,
                1.00, 1.00, 0.95, 0.80, 0.55, 0.35, 0.25, 0.20, 0.16, 0.14,
            ],
        }
    }

    /// Custom hourly weights. All must be positive and finite.
    ///
    /// # Panics
    ///
    /// Panics on non-positive or non-finite weights.
    pub fn from_hourly(hourly: [f64; 24]) -> Self {
        assert!(
            hourly.iter().all(|w| w.is_finite() && *w > 0.0),
            "hourly weights must be positive and finite"
        );
        DiurnalProfile { hourly }
    }

    /// Relative rate at time `t` (seconds into the day), linearly
    /// interpolated between hour centers with wraparound.
    pub fn rate_at(&self, t: f64) -> f64 {
        let t = t.rem_euclid(DAY_SECONDS);
        let h = t / 3600.0; // fractional hour
                            // Interpolate between hour centers (h + 0.5).
        let pos = h - 0.5;
        let pos = if pos < 0.0 { pos + 24.0 } else { pos };
        let i0 = pos.floor() as usize % 24;
        let i1 = (i0 + 1) % 24;
        let frac = pos - pos.floor();
        self.hourly[i0] * (1.0 - frac) + self.hourly[i1] * frac
    }

    /// Integral of the rate over the whole day (in weight·seconds); used
    /// to normalize to a target request count.
    pub fn total_weight(&self) -> f64 {
        self.hourly.iter().sum::<f64>() * 3600.0
    }

    /// Peak-to-trough ratio of the hourly table.
    pub fn peak_trough_ratio(&self) -> f64 {
        let max = self.hourly.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.hourly.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    }
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_peaks_at_midnight() {
        let p = DiurnalProfile::paper();
        let midnight = p.rate_at(0.0);
        let six_am = p.rate_at(6.5 * 3600.0);
        let noon = p.rate_at(12.5 * 3600.0);
        assert!(midnight > noon, "{midnight} vs {noon}");
        assert!(noon > six_am);
        assert!(p.peak_trough_ratio() > 5.0);
        assert!(p.peak_trough_ratio() < 6.5);
    }

    #[test]
    fn interpolation_is_continuous_across_wrap() {
        let p = DiurnalProfile::paper();
        let before = p.rate_at(DAY_SECONDS - 1.0);
        let after = p.rate_at(0.0);
        assert!((before - after).abs() < 0.01, "{before} vs {after}");
    }

    #[test]
    fn hour_centers_hit_table_values() {
        let p = DiurnalProfile::paper();
        // Hour center of hour 6 is 06:30.
        assert!((p.rate_at(6.5 * 3600.0) - 0.18).abs() < 1e-12);
        assert!((p.rate_at(0.5 * 3600.0) - 1.00).abs() < 1e-12);
    }

    #[test]
    fn flat_profile_is_constant() {
        let p = DiurnalProfile::flat();
        for h in 0..48 {
            assert_eq!(p.rate_at(h as f64 * 1800.0), 1.0);
        }
        assert_eq!(p.peak_trough_ratio(), 1.0);
    }

    #[test]
    fn total_weight_scales_with_table() {
        let p = DiurnalProfile::flat();
        assert!((p.total_weight() - 86_400.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let mut h = [1.0; 24];
        h[3] = 0.0;
        let _ = DiurnalProfile::from_hourly(h);
    }

    #[test]
    fn business_profile_peaks_in_work_hours() {
        let p = DiurnalProfile::business();
        assert!(p.rate_at(10.5 * 3600.0) > 0.9);
        assert!(p.rate_at(3.5 * 3600.0) < 0.15);
        assert!(p.peak_trough_ratio() >= 9.0);
    }

    #[test]
    fn negative_time_wraps() {
        let p = DiurnalProfile::paper();
        assert!((p.rate_at(-3600.0) - p.rate_at(23.0 * 3600.0)).abs() < 1e-12);
    }
}
