//! On-disk JSON specs the CLI consumes.

use agreements_flow::{AbsoluteMatrix, AgreementMatrix, FlowError, Structure, TransitiveFlow};
use agreements_proxysim::PolicyKind;
use serde::{Deserialize, Serialize};

/// One relative agreement edge: `from` shares `share` of its resources
/// with `to`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ShareSpec {
    /// Sharing principal.
    pub from: usize,
    /// Receiving principal.
    pub to: usize,
    /// Fraction in `[0, 1]`.
    pub share: f64,
}

/// One absolute agreement edge: a fixed quantity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AbsoluteSpec {
    /// Sharing principal.
    pub from: usize,
    /// Receiving principal.
    pub to: usize,
    /// Fixed amount in resource units.
    pub amount: f64,
}

/// An agreement scenario: either an explicit edge list or a named
/// structure, plus optional absolute agreements and a transitivity level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Number of principals.
    pub n: usize,
    /// Explicit relative agreements (ignored when `structure` is given).
    #[serde(default)]
    pub shares: Vec<ShareSpec>,
    /// A named structure to generate instead of explicit edges.
    #[serde(default)]
    pub structure: Option<Structure>,
    /// Absolute agreements.
    #[serde(default)]
    pub absolute: Vec<AbsoluteSpec>,
    /// Transitivity level (defaults to full closure `n − 1`).
    #[serde(default)]
    pub level: Option<usize>,
}

impl ScenarioSpec {
    /// Build the agreement matrix described by this spec.
    pub fn agreement_matrix(&self) -> Result<AgreementMatrix, FlowError> {
        match &self.structure {
            Some(st) => st.build(),
            None => {
                let mut s = AgreementMatrix::zeros(self.n);
                for e in &self.shares {
                    s.set(e.from, e.to, e.share)?;
                }
                Ok(s)
            }
        }
    }

    /// Build the absolute matrix (None when no absolute agreements).
    pub fn absolute_matrix(&self) -> Result<Option<AbsoluteMatrix>, FlowError> {
        if self.absolute.is_empty() {
            return Ok(None);
        }
        let mut a = AbsoluteMatrix::zeros(self.n);
        for e in &self.absolute {
            a.set(e.from, e.to, e.amount)?;
        }
        Ok(Some(a))
    }

    /// The effective transitivity level.
    pub fn level(&self) -> usize {
        self.level.unwrap_or(self.n.saturating_sub(1)).max(1)
    }

    /// Precompute the transitive flow.
    pub fn flow(&self) -> Result<TransitiveFlow, FlowError> {
        Ok(TransitiveFlow::compute(&self.agreement_matrix()?, self.level()))
    }
}

/// Scheduler policy named in a simulation spec.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", tag = "kind")]
pub enum PolicySpec {
    /// The paper's LP scheme.
    Lp,
    /// Proportional end-point baseline.
    Proportional,
    /// Greedy baseline.
    Greedy,
    /// Fair-share LP objective.
    FairShare,
    /// Cost-aware LP objective with ring-distance costs.
    CostAware {
        /// Cost per hop per unit.
        per_hop: f64,
        /// Weight against the perturbation term.
        lambda: f64,
    },
}

impl PolicySpec {
    /// Convert to the simulator's policy kind.
    pub fn to_kind(self) -> PolicyKind {
        match self {
            PolicySpec::Lp => PolicyKind::Lp,
            PolicySpec::Proportional => PolicyKind::Proportional,
            PolicySpec::Greedy => PolicyKind::Greedy,
            PolicySpec::FairShare => PolicyKind::LpFairShare,
            PolicySpec::CostAware { per_hop, lambda } => {
                PolicyKind::LpCostAware { per_hop, lambda }
            }
        }
    }
}

fn default_peak_rho() -> f64 {
    1.05
}
fn default_mean_demand() -> f64 {
    0.118
}
fn default_policy() -> PolicySpec {
    PolicySpec::Lp
}

/// A complete case-study simulation spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimSpec {
    /// Number of proxies.
    pub proxies: usize,
    /// Requests per proxy per day.
    pub requests_per_day: usize,
    /// Workload seed.
    pub seed: u64,
    /// Inter-proxy skew in seconds.
    pub gap: f64,
    /// Peak offered-load / capacity calibration target.
    #[serde(default = "default_peak_rho")]
    pub peak_rho: f64,
    /// Mean per-request demand used for calibration.
    #[serde(default = "default_mean_demand")]
    pub mean_demand: f64,
    /// Agreement structure (None disables sharing).
    #[serde(default)]
    pub structure: Option<Structure>,
    /// Transitivity level (defaults to full closure).
    #[serde(default)]
    pub level: Option<usize>,
    /// Scheduler policy.
    #[serde(default = "default_policy")]
    pub policy: PolicySpec,
    /// Per-redirected-request overhead in seconds.
    #[serde(default)]
    pub redirect_cost: f64,
    /// Capacity multiplier (Figure 7 sweeps).
    #[serde(default)]
    pub capacity_factor: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_from_explicit_edges() {
        let spec: ScenarioSpec =
            serde_json::from_str(r#"{"n": 3, "shares": [{"from": 0, "to": 1, "share": 0.5}]}"#)
                .unwrap();
        let s = spec.agreement_matrix().unwrap();
        assert_eq!(s.get(0, 1), 0.5);
        assert_eq!(spec.level(), 2);
        assert!(spec.absolute_matrix().unwrap().is_none());
    }

    #[test]
    fn scenario_from_structure() {
        let spec: ScenarioSpec = serde_json::from_str(
            r#"{"n": 4, "structure": {"Complete": {"n": 4, "share": 0.1}}, "level": 1}"#,
        )
        .unwrap();
        let s = spec.agreement_matrix().unwrap();
        assert_eq!(s.num_edges(), 12);
        assert_eq!(spec.level(), 1);
    }

    #[test]
    fn scenario_with_absolute() {
        let spec: ScenarioSpec =
            serde_json::from_str(r#"{"n": 2, "absolute": [{"from": 0, "to": 1, "amount": 3.5}]}"#)
                .unwrap();
        let a = spec.absolute_matrix().unwrap().unwrap();
        assert_eq!(a.get(0, 1), 3.5);
    }

    #[test]
    fn invalid_edges_propagate() {
        let spec: ScenarioSpec =
            serde_json::from_str(r#"{"n": 2, "shares": [{"from": 0, "to": 0, "share": 0.5}]}"#)
                .unwrap();
        assert!(spec.agreement_matrix().is_err());
    }

    #[test]
    fn sim_spec_defaults() {
        let spec: SimSpec = serde_json::from_str(
            r#"{"proxies": 10, "requests_per_day": 1000, "seed": 7, "gap": 3600.0}"#,
        )
        .unwrap();
        assert_eq!(spec.peak_rho, 1.05);
        assert!(matches!(spec.policy, PolicySpec::Lp));
        assert_eq!(spec.redirect_cost, 0.0);
        assert!(spec.structure.is_none());
    }

    #[test]
    fn policy_specs_round_trip() {
        let p: PolicySpec =
            serde_json::from_str(r#"{"kind": "cost-aware", "per_hop": 1.0, "lambda": 0.5}"#)
                .unwrap();
        assert!(matches!(p.to_kind(), PolicyKind::LpCostAware { .. }));
        let p: PolicySpec = serde_json::from_str(r#"{"kind": "fair-share"}"#).unwrap();
        assert!(matches!(p.to_kind(), PolicyKind::LpFairShare));
    }
}
