//! Library backing the `agreements` command-line tool.
//!
//! The CLI wraps the workspace crates for operators of a sharing
//! federation:
//!
//! - `agreements economy …` — create, inspect, and value ticket/currency
//!   economies stored as JSON.
//! - `agreements allocate …` — one-shot allocation decisions (with
//!   `--explain` for the per-owner breakdown and shadow prices).
//! - `agreements trace …` — generate, inspect, and convert workload
//!   traces.
//! - `agreements simulate …` — run the cooperating-proxy case study from
//!   a JSON spec.
//!
//! Everything is exposed as a library (`run(args) -> Result<String>`)
//! so commands are unit-testable without spawning processes.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod spec;

pub use args::{ArgError, Parsed};
pub use commands::{run, CliError};
