//! The `agreements` binary: thin wrapper over [`agreements_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match agreements_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
