//! CLI command implementations. Each command returns its output as a
//! `String` so the whole surface is unit-testable.

use crate::args::{ArgError, Parsed};
use crate::spec::{ScenarioSpec, SimSpec};
use agreements_flow::{auto_partition, PartitionOptions};
use agreements_sched::{
    explain_allocation, AllocationPolicy, GreedyPolicy, LpPolicy, ProportionalPolicy, SchedError,
    SystemState,
};
use agreements_ticket::{AgreementNature, Economy, ResourceId};
use agreements_trace::{ProxyTrace, ServiceModel, TraceConfig};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// CLI-level errors.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgError),
    /// Unknown (sub)command.
    UnknownCommand(String),
    /// File IO failed.
    Io(std::io::Error),
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// A domain operation failed.
    Domain(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command {c:?}; try `agreements help`")
            }
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
            CliError::Domain(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}
impl From<SchedError> for CliError {
    fn from(e: SchedError) -> Self {
        CliError::Domain(e.to_string())
    }
}

const HELP: &str = "\
agreements — express and enforce distributed resource sharing agreements

USAGE:
  agreements economy new --principals A,B,C --resources cpu,disk [--deposit P:R:AMT,...]
  agreements economy deal --file ECONOMY.json --from NAME --to NAME \
             --share PCT [--grant] [--out FILE]
  agreements economy example1
  agreements economy value --file ECONOMY.json --resource IDX
  agreements economy overdrawn --file ECONOMY.json
  agreements economy graph --file ECONOMY.json [--resource IDX]
  agreements capacity --scenario SCENARIO.json --avail V0,V1,...
  agreements chains --scenario SCENARIO.json --from OWNER --to USER [--level L]
  agreements partition --scenario SCENARIO.json [--min-share F] [--max-group N] [--json]
  agreements allocate --scenario SCENARIO.json --avail V0,V1,... \\
             --requester I --amount X [--policy lp|greedy|proportional] [--explain]
  agreements trace gen --requests N --proxies P --gap SECONDS --seed S --out DIR [--csv]
  agreements trace info --file TRACE [--capacity C]
  agreements simulate --spec SIM.json [--series] [--telemetry-out FILE]
  agreements serve --scenario SCENARIO.json --journal DIR \\
             (--socket PATH | --tcp ADDR) [--avail V0,V1,...] \\
             [--fsync everyop|batched:N] [--sequenced] \\
             [--compact-every N] [--duration SECONDS]
  agreements help

With --telemetry-out, `simulate` records counters, LP-solve/latency
histograms, and structured events through the unified telemetry plane
and writes the snapshot to FILE as JSON.

`serve` runs the scenario's GRM as a network daemon: agreement state is
journaled durably under --journal DIR (recovered on restart, including
after kill -9), and clients speak the framed wire protocol on the Unix
socket or TCP address. --avail seeds the pools only when the journal is
created; on recovery the journal wins. Without --duration it serves
until killed — crash-safety, not clean shutdown, is the contract.
";

/// Run a command line (without the binary name); returns stdout text.
pub fn run<S: AsRef<str>>(argv: &[S]) -> Result<String, CliError> {
    let tokens: Vec<String> = argv.iter().map(|s| s.as_ref().to_string()).collect();
    let parsed =
        Parsed::parse(tokens, &["explain", "csv", "json", "series", "grant", "sequenced"])?;
    let mut pos = parsed.positionals.iter().map(String::as_str);
    match pos.next() {
        None | Some("help") => Ok(HELP.to_string()),
        Some("economy") => match pos.next() {
            Some("new") => economy_new(&parsed),
            Some("deal") => economy_deal(&parsed),
            Some("example1") => economy_example1(),
            Some("value") => economy_value(&parsed),
            Some("overdrawn") => economy_overdrawn(&parsed),
            Some("graph") => economy_graph(&parsed),
            other => Err(CliError::UnknownCommand(format!("economy {}", other.unwrap_or("")))),
        },
        Some("capacity") => capacity(&parsed),
        Some("chains") => chains(&parsed),
        Some("partition") => partition(&parsed),
        Some("allocate") => allocate(&parsed),
        Some("trace") => match pos.next() {
            Some("gen") => trace_gen(&parsed),
            Some("info") => trace_info(&parsed),
            other => Err(CliError::UnknownCommand(format!("trace {}", other.unwrap_or("")))),
        },
        Some("simulate") => simulate(&parsed),
        Some("serve") => serve(&parsed),
        Some(other) => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// Emit the paper's Example 1 economy as JSON (a template to edit).
fn economy_example1() -> Result<String, CliError> {
    let mut eco = Economy::new();
    let disk = eco.add_resource("disk-TB");
    let a = eco.add_principal("A");
    let b = eco.add_principal("B");
    let c = eco.add_principal("C");
    let d = eco.add_principal("D");
    let (ca, cb, cc, cd) = (
        eco.default_currency(a),
        eco.default_currency(b),
        eco.default_currency(c),
        eco.default_currency(d),
    );
    eco.set_face_total(ca, 1000.0).expect("valid");
    eco.set_face_total(cb, 100.0).expect("valid");
    eco.deposit_resource(ca, disk, 10.0).expect("valid");
    eco.deposit_resource(cb, disk, 15.0).expect("valid");
    eco.issue_absolute(ca, cc, disk, 3.0, AgreementNature::Sharing).expect("valid");
    eco.issue_relative(ca, cb, 500.0, AgreementNature::Sharing).expect("valid");
    eco.issue_relative(cb, cd, 60.0, AgreementNature::Sharing).expect("valid");
    Ok(serde_json::to_string_pretty(&eco)? + "\n")
}

/// Scaffold an economy from comma-separated principal and resource
/// names, with optional `principal:resource:amount` deposits.
fn economy_new(parsed: &Parsed) -> Result<String, CliError> {
    parsed.reject_unknown(&["principals", "resources", "deposit"])?;
    let mut eco = Economy::new();
    for r in parsed.required("resources")?.split(',') {
        eco.add_resource(r.trim());
    }
    for p in parsed.required("principals")?.split(',') {
        eco.add_principal(p.trim());
    }
    if let Some(deposits) = parsed.get("deposit") {
        for item in deposits.split(',') {
            let parts: Vec<&str> = item.trim().split(':').collect();
            let bad = || {
                CliError::Domain(format!(
                    "--deposit entry {item:?} must be PRINCIPAL:RESOURCE:AMOUNT"
                ))
            };
            if parts.len() != 3 {
                return Err(bad());
            }
            let p = eco
                .find_principal(parts[0])
                .ok_or_else(|| CliError::Domain(format!("unknown principal {:?}", parts[0])))?;
            let r = eco
                .find_resource(parts[1])
                .ok_or_else(|| CliError::Domain(format!("unknown resource {:?}", parts[1])))?;
            let amount: f64 = parts[2].parse().map_err(|_| bad())?;
            eco.deposit_resource(eco.default_currency(p), r, amount)
                .map_err(|e| CliError::Domain(e.to_string()))?;
        }
    }
    Ok(serde_json::to_string_pretty(&eco)? + "\n")
}

/// Add one relative agreement to a stored economy; prints the updated
/// JSON, or writes it to `--out` (which may equal the input file).
fn economy_deal(parsed: &Parsed) -> Result<String, CliError> {
    parsed.reject_unknown(&["file", "from", "to", "share", "grant", "out"])?;
    let mut eco = load_economy(parsed)?;
    let from_name = parsed.required("from")?;
    let to_name = parsed.required("to")?;
    let share: f64 = parsed.parse_required("share", "fraction in (0, 1]")?;
    let lookup = |name: &str| {
        eco.find_currency(name)
            .ok_or_else(|| CliError::Domain(format!("unknown currency {name:?}")))
    };
    let from = lookup(from_name)?;
    let to = lookup(to_name)?;
    let face = share * eco.currency(from).map_err(|e| CliError::Domain(e.to_string()))?.face_total;
    let nature =
        if parsed.flag("grant") { AgreementNature::Granting } else { AgreementNature::Sharing };
    eco.issue_relative(from, to, face, nature).map_err(|e| CliError::Domain(e.to_string()))?;
    let json = serde_json::to_string_pretty(&eco)? + "\n";
    match parsed.get("out") {
        Some(path) => {
            std::fs::write(path, &json)?;
            Ok(format!(
                "{from_name} now shares {:.1}% with {to_name}; wrote {path}\n",
                share * 100.0
            ))
        }
        None => Ok(json),
    }
}

fn load_economy(parsed: &Parsed) -> Result<Economy, CliError> {
    let path = parsed.required("file")?;
    let text = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

fn economy_value(parsed: &Parsed) -> Result<String, CliError> {
    parsed.reject_unknown(&["file", "resource"])?;
    let eco = load_economy(parsed)?;
    let ridx: usize = parsed.parse_or("resource", 0, "resource index")?;
    let resource = ResourceId::from_index(ridx);
    let report = eco.value_report(resource).map_err(|e| CliError::Domain(e.to_string()))?;
    let mut out = String::new();
    writeln!(out, "resource {} ({})", ridx, eco.resource_name(resource)).unwrap();
    writeln!(out, "{:<20} {:>12} {:>12}", "currency", "gross", "net").unwrap();
    for c in eco.currencies() {
        writeln!(
            out,
            "{:<20} {:>12.4} {:>12.4}",
            c.name,
            report.currency_value(c.id),
            report.net_value(c.id)
        )
        .unwrap();
    }
    Ok(out)
}

fn economy_overdrawn(parsed: &Parsed) -> Result<String, CliError> {
    parsed.reject_unknown(&["file"])?;
    let eco = load_economy(parsed)?;
    let mut out = String::new();
    let mut any = false;
    for c in eco.currencies() {
        if eco.is_overdrawn(c.id).map_err(|e| CliError::Domain(e.to_string()))? {
            writeln!(out, "{} is overdrawn", c.name).unwrap();
            any = true;
        }
    }
    if !any {
        out.push_str("no overdrawn currencies\n");
    }
    Ok(out)
}

fn economy_graph(parsed: &Parsed) -> Result<String, CliError> {
    parsed.reject_unknown(&["file", "resource"])?;
    let eco = load_economy(parsed)?;
    let valuation = match parsed.get("resource") {
        None => None,
        Some(raw) => {
            let idx: usize = raw
                .parse()
                .map_err(|_| CliError::Domain(format!("--resource {raw:?} is not an index")))?;
            Some(
                eco.value_report(ResourceId::from_index(idx))
                    .map_err(|e| CliError::Domain(e.to_string()))?,
            )
        }
    };
    Ok(agreements_ticket::to_dot(&eco, valuation.as_ref()))
}

fn load_scenario_state(parsed: &Parsed) -> Result<(ScenarioSpec, SystemState), CliError> {
    let path = parsed.required("scenario")?;
    let text = std::fs::read_to_string(path)?;
    let spec: ScenarioSpec = serde_json::from_str(&text)?;
    let avail = parsed.float_list("avail")?;
    let flow = spec.flow().map_err(|e| CliError::Domain(e.to_string()))?;
    let absolute = spec.absolute_matrix().map_err(|e| CliError::Domain(e.to_string()))?;
    let state = SystemState::new(flow, absolute, avail)?;
    Ok((spec, state))
}

/// Derive the hierarchical enforcement structure of a scenario: mutual
/// sharing groups plus the inter-group aggregate matrix, exactly as
/// `HierarchicalScheduler::auto` would partition it.
fn partition(parsed: &Parsed) -> Result<String, CliError> {
    parsed.reject_unknown(&["scenario", "min-share", "max-group", "json"])?;
    let path = parsed.required("scenario")?;
    let text = std::fs::read_to_string(path)?;
    let spec: ScenarioSpec = serde_json::from_str(&text)?;
    let s = spec.agreement_matrix().map_err(|e| CliError::Domain(e.to_string()))?;
    let defaults = PartitionOptions::default();
    let opts = PartitionOptions {
        min_mutual_share: parsed.parse_or(
            "min-share",
            defaults.min_mutual_share,
            "fraction in (0, 1]",
        )?,
        max_group_size: parsed.parse_or("max-group", defaults.max_group_size, "positive size")?,
    };
    let p = auto_partition(&s, &opts).map_err(|e| CliError::Domain(e.to_string()))?;
    let g = p.num_groups();
    if parsed.flag("json") {
        #[derive(serde::Serialize)]
        struct PartitionDoc {
            principals: usize,
            min_mutual_share: f64,
            max_group_size: usize,
            groups: Vec<Vec<usize>>,
            inter: Vec<Vec<f64>>,
        }
        let doc = PartitionDoc {
            principals: s.n(),
            min_mutual_share: opts.min_mutual_share,
            max_group_size: opts.max_group_size,
            inter: (0..g).map(|i| (0..g).map(|j| p.inter.get(i, j)).collect()).collect(),
            groups: p.groups,
        };
        return Ok(serde_json::to_string_pretty(&doc)? + "\n");
    }
    let mut out = String::new();
    writeln!(
        out,
        "{} principals -> {g} groups (min mutual share {:.2}, max group size {})",
        s.n(),
        opts.min_mutual_share,
        opts.max_group_size
    )
    .unwrap();
    for (i, members) in p.groups.iter().enumerate() {
        let list: Vec<String> = members.iter().map(|m| m.to_string()).collect();
        writeln!(out, "group {i}: {}", list.join(", ")).unwrap();
    }
    writeln!(out, "inter-group aggregates:").unwrap();
    write!(out, "{:>8}", "").unwrap();
    for j in 0..g {
        write!(out, " {:>7}", format!("g{j}")).unwrap();
    }
    out.push('\n');
    for i in 0..g {
        write!(out, "{:>8}", format!("g{i}")).unwrap();
        for j in 0..g {
            if i == j {
                write!(out, " {:>7}", "-").unwrap();
            } else {
                write!(out, " {:>7.3}", p.inter.get(i, j)).unwrap();
            }
        }
        out.push('\n');
    }
    Ok(out)
}

fn capacity(parsed: &Parsed) -> Result<String, CliError> {
    parsed.reject_unknown(&["scenario", "avail"])?;
    let (_, state) = load_scenario_state(parsed)?;
    let report = state.capacity_report();
    let mut out = String::new();
    writeln!(out, "{:<10} {:>14} {:>14}", "principal", "availability", "capacity").unwrap();
    for i in 0..state.n() {
        writeln!(out, "{:<10} {:>14.4} {:>14.4}", i, state.availability[i], report.capacity(i))
            .unwrap();
    }
    Ok(out)
}

fn chains(parsed: &Parsed) -> Result<String, CliError> {
    parsed.reject_unknown(&["scenario", "from", "to", "level"])?;
    let path = parsed.required("scenario")?;
    let text = std::fs::read_to_string(path)?;
    let spec: ScenarioSpec = serde_json::from_str(&text)?;
    let s = spec.agreement_matrix().map_err(|e| CliError::Domain(e.to_string()))?;
    let from: usize = parsed.parse_required("from", "principal index")?;
    let to: usize = parsed.parse_required("to", "principal index")?;
    let level: usize = parsed.parse_or("level", spec.level(), "level")?;
    let chains = agreements_flow::chains_between(&s, from, to, level);
    let mut out = String::new();
    if chains.is_empty() {
        writeln!(out, "no chains from {from} to {to} within {level} hops").unwrap();
        return Ok(out);
    }
    writeln!(out, "chains from {from} (owner) to {to} (user), up to {level} hops:").unwrap();
    let mut total = 0.0;
    for chain in &chains {
        let route: Vec<String> = chain.nodes.iter().map(|x| x.to_string()).collect();
        writeln!(out, "  {}  forwards {:.6}", route.join(" -> "), chain.product).unwrap();
        total += chain.product;
    }
    writeln!(out, "total (unclamped T[{from}][{to}]): {total:.6}").unwrap();
    Ok(out)
}

fn allocate(parsed: &Parsed) -> Result<String, CliError> {
    parsed.reject_unknown(&["scenario", "avail", "requester", "amount", "policy", "explain"])?;
    let (spec, state) = load_scenario_state(parsed)?;
    let requester: usize = parsed.parse_required("requester", "principal index")?;
    let amount: f64 = parsed.parse_required("amount", "number")?;
    if parsed.flag("explain") {
        let e = explain_allocation(&state, requester, amount)?;
        return Ok(e.to_string());
    }
    let policy_name = parsed.get("policy").unwrap_or("lp");
    let policy: Box<dyn AllocationPolicy> = match policy_name {
        "lp" => Box::new(LpPolicy::reduced()),
        "greedy" => Box::new(GreedyPolicy),
        "proportional" => Box::new(ProportionalPolicy::new(
            spec.agreement_matrix().map_err(|e| CliError::Domain(e.to_string()))?,
        )),
        other => {
            return Err(CliError::Domain(format!(
                "unknown policy {other:?}; use lp, greedy, or proportional"
            )))
        }
    };
    let alloc = policy.allocate(&state, requester, amount)?;
    let mut out = String::new();
    writeln!(
        out,
        "allocated {:.4} to principal {} via {} (theta = {:.4})",
        alloc.amount,
        requester,
        policy.name(),
        alloc.theta
    )
    .unwrap();
    for (i, d) in alloc.draws.iter().enumerate() {
        if *d > 0.0 {
            writeln!(out, "  draw {:.4} from principal {}", d, i).unwrap();
        }
    }
    Ok(out)
}

fn trace_gen(parsed: &Parsed) -> Result<String, CliError> {
    parsed.reject_unknown(&["requests", "proxies", "gap", "seed", "out", "csv"])?;
    let requests: usize = parsed.parse_required("requests", "integer")?;
    let proxies: usize = parsed.parse_or("proxies", 1, "integer")?;
    let gap: f64 = parsed.parse_or("gap", 0.0, "seconds")?;
    let seed: u64 = parsed.parse_or("seed", 0, "integer")?;
    let out_dir = parsed.required("out")?;
    std::fs::create_dir_all(out_dir)?;
    let traces = TraceConfig::paper(requests, seed).generate(proxies, gap);
    let mut out = String::new();
    for t in &traces {
        let path = if parsed.flag("csv") {
            let p = Path::new(out_dir).join(format!("proxy{}.csv", t.proxy));
            std::fs::write(&p, agreements_trace::io::to_csv(t))?;
            p
        } else {
            let p = Path::new(out_dir).join(format!("proxy{}.trace", t.proxy));
            std::fs::write(&p, agreements_trace::io::to_bytes(t))?;
            p
        };
        writeln!(out, "wrote {} requests to {}", t.requests.len(), path.display()).unwrap();
    }
    Ok(out)
}

fn trace_info(parsed: &Parsed) -> Result<String, CliError> {
    parsed.reject_unknown(&["file", "capacity"])?;
    let path = parsed.required("file")?;
    let trace = read_trace(path)?;
    let svc = ServiceModel::PAPER;
    let mean = agreements_trace::mean_demand(&trace, &svc);
    let mut out = String::new();
    writeln!(out, "requests:     {}", trace.requests.len()).unwrap();
    writeln!(out, "mean demand:  {mean:.4} work-seconds").unwrap();
    let cap_for = agreements_trace::capacity_for_peak_rho(&trace, &svc, 1.05);
    writeln!(out, "capacity for peak rho 1.05: {cap_for:.4}").unwrap();
    if let Some(cap) = parsed.get("capacity") {
        let cap: f64 = cap
            .parse()
            .map_err(|_| CliError::Domain(format!("--capacity {cap:?} is not a number")))?;
        writeln!(
            out,
            "peak rho at capacity {cap}: {:.4}",
            agreements_trace::peak_rho(&trace, &svc, cap)
        )
        .unwrap();
    }
    Ok(out)
}

fn read_trace(path: &str) -> Result<ProxyTrace, CliError> {
    let raw = std::fs::read(path)?;
    if raw.starts_with(b"AGTR") {
        agreements_trace::io::from_bytes(bytes::Bytes::from(raw)).map_err(CliError::Io)
    } else {
        let text = String::from_utf8(raw)
            .map_err(|_| CliError::Domain("trace is neither binary nor text".into()))?;
        if text.starts_with("arrival,") {
            agreements_trace::io::from_csv(0, &text).map_err(CliError::Io)
        } else {
            agreements_trace::io::from_homeip(0, &text).map_err(CliError::Io)
        }
    }
}

fn simulate(parsed: &Parsed) -> Result<String, CliError> {
    parsed.reject_unknown(&["spec", "series", "telemetry-out"])?;
    let path = parsed.required("spec")?;
    let text = std::fs::read_to_string(path)?;
    let spec: SimSpec = serde_json::from_str(&text)?;
    let traces =
        TraceConfig::paper(spec.requests_per_day, spec.seed).generate(spec.proxies, spec.gap);
    let mut cfg = agreements_proxysim::SimConfig::calibrated(
        spec.proxies,
        spec.requests_per_day,
        spec.mean_demand,
        spec.peak_rho,
    );
    if let Some(factor) = spec.capacity_factor {
        cfg = cfg.with_capacity_factor(factor);
    }
    if let Some(structure) = &spec.structure {
        let agreements = structure.build().map_err(|e| CliError::Domain(e.to_string()))?;
        let level = spec.level.unwrap_or(spec.proxies.saturating_sub(1)).max(1);
        cfg = cfg.with_sharing(agreements_proxysim::SharingConfig {
            agreements,
            level,
            policy: spec.policy.to_kind(),
            redirect_cost: spec.redirect_cost,
            schedule: Vec::new(),
        });
    }
    let mut sim =
        agreements_proxysim::Simulator::new(cfg).map_err(|e| CliError::Domain(e.to_string()))?;
    let recorder = parsed.get("telemetry-out").map(|_| {
        let (telemetry, recorder) =
            agreements_telemetry::Telemetry::recorder(agreements_telemetry::DEFAULT_EVENT_CAPACITY);
        sim.set_telemetry(telemetry);
        recorder
    });
    let r = sim.run(&traces).map_err(|e| CliError::Domain(e.to_string()))?;
    let mut out = String::new();
    if let (Some(path), Some(recorder)) = (parsed.get("telemetry-out"), recorder) {
        std::fs::write(path, recorder.snapshot().to_json())?;
        writeln!(out, "telemetry snapshot written to {path}").unwrap();
    }
    writeln!(out, "served:            {}", r.served).unwrap();
    writeln!(out, "avg wait:          {:.4} s", r.avg_wait()).unwrap();
    writeln!(out, "peak slot avg:     {:.4} s", r.peak_slot_avg_wait()).unwrap();
    writeln!(out, "worst wait:        {:.4} s", r.worst_wait).unwrap();
    writeln!(
        out,
        "wait p50/p95/p99:  {:.3} / {:.3} / {:.3} s",
        r.wait_quantile(0.50),
        r.wait_quantile(0.95),
        r.wait_quantile(0.99)
    )
    .unwrap();
    writeln!(out, "redirected:        {:.3}%", 100.0 * r.redirect_fraction()).unwrap();
    writeln!(out, "consultations:     {}", r.consultations).unwrap();
    writeln!(out, "stable:            {}", r.is_stable()).unwrap();
    if parsed.flag("series") {
        writeln!(out, "\nslot,hour,avg_wait_s,arrivals,redirected").unwrap();
        for (s, m) in r.slots.iter().enumerate() {
            writeln!(
                out,
                "{s},{:.3},{:.4},{},{}",
                s as f64 / 6.0,
                m.avg_wait(),
                m.arrivals,
                m.redirected
            )
            .unwrap();
        }
    }
    Ok(out)
}

/// Run the scenario's GRM as a durable network daemon (see `HELP`).
fn serve(parsed: &Parsed) -> Result<String, CliError> {
    use agreements_net::journal::{DurableJournal, FsyncPolicy, Snapshot};
    use agreements_net::listener::{GrmListener, ListenerConfig};

    parsed.reject_unknown(&[
        "scenario",
        "journal",
        "socket",
        "tcp",
        "avail",
        "fsync",
        "sequenced",
        "compact-every",
        "duration",
    ])?;
    let path = parsed.required("scenario")?;
    let text = std::fs::read_to_string(path)?;
    let spec: ScenarioSpec = serde_json::from_str(&text)?;
    let matrix = spec.agreement_matrix().map_err(|e| CliError::Domain(e.to_string()))?;
    let level = spec.level();
    let avail = match parsed.get("avail") {
        Some(_) => {
            let v = parsed.float_list("avail")?;
            if v.len() != spec.n {
                return Err(CliError::Domain(format!(
                    "--avail has {} entries for an n={} scenario",
                    v.len(),
                    spec.n
                )));
            }
            v
        }
        None => vec![0.0; spec.n],
    };
    let policy = match parsed.get("fsync").unwrap_or("everyop") {
        "everyop" => FsyncPolicy::EveryOp,
        s => match s.strip_prefix("batched:").and_then(|n| n.parse::<usize>().ok()) {
            Some(max_pending) if max_pending > 0 => FsyncPolicy::Batched { max_pending },
            _ => {
                return Err(CliError::Domain(format!(
                    "--fsync must be `everyop` or `batched:N`, got {s:?}"
                )))
            }
        },
    };
    let journal_dir = std::path::PathBuf::from(parsed.required("journal")?);
    let fresh = Snapshot { matrix, level, availability: avail, next_seq: 0, dedup: Vec::new() };
    let (journal, recovered) = DurableJournal::open_or_create(
        &journal_dir,
        move || fresh,
        policy,
        agreements_telemetry::Telemetry::disabled(),
    )?;
    let mut out = String::new();
    writeln!(
        out,
        "journal {}: {} records recovered, {} torn bytes truncated, replay cursor {}",
        journal_dir.display(),
        recovered.records,
        recovered.truncated_bytes,
        recovered.next_seq
    )
    .unwrap();
    let server = recovered.respawn().map_err(|e| CliError::Domain(e.to_string()))?;
    let config = ListenerConfig {
        sequenced: parsed.flag("sequenced"),
        compact_every: parsed.parse_or("compact-every", 8192u64, "record count")?,
        ..ListenerConfig::default()
    };
    let listener = match (parsed.get("socket"), parsed.get("tcp")) {
        (Some(sock), None) => {
            let l = GrmListener::bind_uds(Path::new(sock), server, journal, recovered, config)?;
            writeln!(out, "serving on unix socket {sock}").unwrap();
            l
        }
        (None, Some(addr)) => {
            let l = GrmListener::bind_tcp(addr, server, journal, recovered, config)?;
            writeln!(out, "serving on tcp {}", l.tcp_addr().expect("tcp listener has addr"))
                .unwrap();
            l
        }
        _ => {
            return Err(CliError::Domain(
                "serve needs exactly one of --socket PATH or --tcp ADDR".to_string(),
            ))
        }
    };
    // The daemon's liveness contract is crash-safety, not clean
    // shutdown: without --duration it blocks until the process is
    // killed, and the journal carries the state to the next incarnation.
    match parsed.get("duration") {
        Some(_) => {
            let secs = parsed.parse_or("duration", 0.0f64, "seconds")?;
            eprint!("{out}");
            std::thread::sleep(std::time::Duration::from_secs_f64(secs));
            let stats = listener.handle().stats().map_err(|e| CliError::Domain(e.to_string()))?;
            listener.shutdown();
            writeln!(
                out,
                "served for {secs}s: {} granted, {} rejected, {} duplicate requests",
                stats.granted, stats.rejected_capacity, stats.duplicate_requests
            )
            .unwrap();
            Ok(out)
        }
        None => {
            eprint!("{out}");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("agreements-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn help_is_default() {
        let out = run::<&str>(&[]).unwrap();
        assert!(out.contains("USAGE"));
        let out = run(&["help"]).unwrap();
        assert!(out.contains("economy"));
    }

    #[test]
    fn unknown_commands_error() {
        assert!(matches!(run(&["bogus"]), Err(CliError::UnknownCommand(_))));
        assert!(matches!(run(&["economy", "bogus"]), Err(CliError::UnknownCommand(_))));
    }

    #[test]
    fn example1_round_trips_through_value() {
        let json = run(&["economy", "example1"]).unwrap();
        let path = tmp("example1.json");
        std::fs::write(&path, &json).unwrap();
        let out = run(&["economy", "value", "--file", path.to_str().unwrap(), "--resource", "0"])
            .unwrap();
        assert!(out.contains("disk-TB"), "{out}");
        // The Figure 1 values appear in the table.
        assert!(out.contains("20.0000"), "{out}");
        assert!(out.contains("12.0000"), "{out}");
    }

    #[test]
    fn economy_new_and_deal_round_trip() {
        let json = run(&[
            "economy",
            "new",
            "--principals",
            "A, B",
            "--resources",
            "cpu",
            "--deposit",
            "A:cpu:10",
        ])
        .unwrap();
        let path = tmp("built.json");
        std::fs::write(&path, &json).unwrap();
        let out = tmp("dealt.json");
        let msg = run(&[
            "economy",
            "deal",
            "--file",
            path.to_str().unwrap(),
            "--from",
            "A",
            "--to",
            "B",
            "--share",
            "0.5",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("50.0%"), "{msg}");
        let table =
            run(&["economy", "value", "--file", out.to_str().unwrap(), "--resource", "0"]).unwrap();
        assert!(table.contains("5.0000"), "B is worth half of A's 10: {table}");
    }

    #[test]
    fn economy_new_validates_deposits() {
        assert!(run(&[
            "economy",
            "new",
            "--principals",
            "A",
            "--resources",
            "cpu",
            "--deposit",
            "Z:cpu:1",
        ])
        .is_err());
        assert!(run(&[
            "economy",
            "new",
            "--principals",
            "A",
            "--resources",
            "cpu",
            "--deposit",
            "A:cpu",
        ])
        .is_err());
    }

    #[test]
    fn economy_graph_renders_dot() {
        let json = run(&["economy", "example1"]).unwrap();
        let path = tmp("example1c.json");
        std::fs::write(&path, &json).unwrap();
        let out = run(&["economy", "graph", "--file", path.to_str().unwrap(), "--resource", "0"])
            .unwrap();
        assert!(out.starts_with("digraph economy"), "{out}");
        assert!(out.contains("= 20.00"), "B's value annotated: {out}");
    }

    #[test]
    fn overdrawn_reports_cleanly() {
        let json = run(&["economy", "example1"]).unwrap();
        let path = tmp("example1b.json");
        std::fs::write(&path, &json).unwrap();
        let out = run(&["economy", "overdrawn", "--file", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("no overdrawn"), "{out}");
    }

    fn write_scenario() -> std::path::PathBuf {
        let path = tmp("scenario.json");
        std::fs::write(
            &path,
            r#"{"n": 3, "shares": [
                {"from": 1, "to": 0, "share": 0.5},
                {"from": 2, "to": 0, "share": 0.5}
            ]}"#,
        )
        .unwrap();
        path
    }

    #[test]
    fn partition_command_reports_groups() {
        let path = tmp("partition.json");
        std::fs::write(
            &path,
            r#"{"n": 4, "shares": [
                {"from": 0, "to": 1, "share": 0.8}, {"from": 1, "to": 0, "share": 0.8},
                {"from": 2, "to": 3, "share": 0.8}, {"from": 3, "to": 2, "share": 0.8},
                {"from": 0, "to": 2, "share": 0.2}, {"from": 2, "to": 0, "share": 0.2}
            ]}"#,
        )
        .unwrap();
        let out = run(&["partition", "--scenario", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("4 principals -> 2 groups"), "{out}");
        assert!(out.contains("group 0: 0, 1"), "{out}");
        assert!(out.contains("group 1: 2, 3"), "{out}");
        let json = run(&["partition", "--scenario", path.to_str().unwrap(), "--json"]).unwrap();
        #[derive(serde::Deserialize)]
        struct Doc {
            groups: Vec<Vec<usize>>,
            inter: Vec<Vec<f64>>,
        }
        let doc: Doc = serde_json::from_str(&json).unwrap();
        assert_eq!(doc.groups[1], vec![2, 3]);
        // 0→2 carries 0.2, so the g0→g1 aggregate is 0.2 averaged over
        // g0's two members.
        assert!((doc.inter[0][1] - 0.1).abs() < 1e-12, "{json}");
        // A tighter mutual threshold dissolves the weak 0.8 edges too.
        let singles =
            run(&["partition", "--scenario", path.to_str().unwrap(), "--min-share", "0.9"])
                .unwrap();
        assert!(singles.contains("-> 4 groups"), "{singles}");
        // Bad options surface as domain errors, not panics.
        assert!(run(&["partition", "--scenario", path.to_str().unwrap(), "--min-share", "1.5",])
            .is_err());
    }

    #[test]
    fn capacity_command() {
        let path = write_scenario();
        let out =
            run(&["capacity", "--scenario", path.to_str().unwrap(), "--avail", "0,10,10"]).unwrap();
        assert!(out.contains("10.0000"), "{out}");
        // Principal 0 reaches 0 + 5 + 5.
        assert!(out.lines().nth(1).unwrap().contains("10.0000"), "{out}");
    }

    #[test]
    fn chains_command_audits_routes() {
        let path = write_scenario();
        let out =
            run(&["chains", "--scenario", path.to_str().unwrap(), "--from", "1", "--to", "0"])
                .unwrap();
        assert!(out.contains("1 -> 0"), "{out}");
        assert!(out.contains("0.500000"), "{out}");
        let none =
            run(&["chains", "--scenario", path.to_str().unwrap(), "--from", "0", "--to", "1"])
                .unwrap();
        assert!(none.contains("no chains"), "{none}");
    }

    #[test]
    fn allocate_command_lp() {
        let path = write_scenario();
        let out = run(&[
            "allocate",
            "--scenario",
            path.to_str().unwrap(),
            "--avail",
            "0,10,10",
            "--requester",
            "0",
            "--amount",
            "6",
        ])
        .unwrap();
        assert!(out.contains("allocated 6.0000"), "{out}");
        assert!(out.contains("draw 3.0000 from principal 1"), "{out}");
    }

    #[test]
    fn allocate_command_explain() {
        let path = write_scenario();
        let out = run(&[
            "allocate",
            "--scenario",
            path.to_str().unwrap(),
            "--avail",
            "0,10,10",
            "--requester",
            "0",
            "--amount",
            "6",
            "--explain",
        ])
        .unwrap();
        assert!(out.contains("binding"), "{out}");
        assert!(out.contains("marginal theta"), "{out}");
    }

    #[test]
    fn allocate_rejects_unknown_policy() {
        let path = write_scenario();
        let err = run(&[
            "allocate",
            "--scenario",
            path.to_str().unwrap(),
            "--avail",
            "0,10,10",
            "--requester",
            "0",
            "--amount",
            "1",
            "--policy",
            "magic",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("unknown policy"));
    }

    #[test]
    fn trace_gen_and_info() {
        let dir = tmp("traces");
        let out = run(&[
            "trace",
            "gen",
            "--requests",
            "500",
            "--proxies",
            "2",
            "--gap",
            "3600",
            "--seed",
            "3",
            "--out",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("proxy0.trace"), "{out}");
        assert!(out.contains("proxy1.trace"), "{out}");
        let info = run(&[
            "trace",
            "info",
            "--file",
            dir.join("proxy0.trace").to_str().unwrap(),
            "--capacity",
            "0.5",
        ])
        .unwrap();
        assert!(info.contains("mean demand"), "{info}");
        assert!(info.contains("peak rho at capacity 0.5"), "{info}");
    }

    #[test]
    fn trace_gen_csv_and_info_round_trip() {
        let dir = tmp("traces-csv");
        run(&["trace", "gen", "--requests", "200", "--out", dir.to_str().unwrap(), "--csv"])
            .unwrap();
        let info =
            run(&["trace", "info", "--file", dir.join("proxy0.csv").to_str().unwrap()]).unwrap();
        assert!(info.contains("requests:"), "{info}");
    }

    #[test]
    fn simulate_command() {
        let path = tmp("sim.json");
        std::fs::write(
            &path,
            r#"{
                "proxies": 3,
                "requests_per_day": 2000,
                "seed": 5,
                "gap": 3600.0,
                "structure": {"Complete": {"n": 3, "share": 0.2}},
                "policy": {"kind": "lp"}
            }"#,
        )
        .unwrap();
        let out = run(&["simulate", "--spec", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("served:"), "{out}");
        assert!(out.contains("stable:            true"), "{out}");
    }

    #[test]
    fn simulate_series_prints_slots() {
        let path = tmp("sim_series.json");
        std::fs::write(&path, r#"{"proxies": 2, "requests_per_day": 800, "seed": 5, "gap": 0.0}"#)
            .unwrap();
        let out = run(&["simulate", "--spec", path.to_str().unwrap(), "--series"]).unwrap();
        assert!(out.contains("slot,hour,avg_wait_s"), "{out}");
        assert!(out.lines().count() > 144, "one line per slot");
    }

    #[test]
    fn simulate_exports_telemetry_snapshot() {
        let path = tmp("sim_telemetry.json");
        std::fs::write(
            &path,
            r#"{
                "proxies": 3,
                "requests_per_day": 2000,
                "seed": 5,
                "gap": 3600.0,
                "structure": {"Complete": {"n": 3, "share": 0.2}},
                "policy": {"kind": "lp"}
            }"#,
        )
        .unwrap();
        let snap_path = tmp("sim_telemetry_out.json");
        let out = run(&[
            "simulate",
            "--spec",
            path.to_str().unwrap(),
            "--telemetry-out",
            snap_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("telemetry snapshot written"), "{out}");
        let snap = agreements_telemetry::Snapshot::from_json(
            &std::fs::read_to_string(&snap_path).unwrap(),
        )
        .unwrap();
        assert!(snap.counter("proxysim.consultations") > 0, "consultations recorded");
        let lp = snap.histogram(agreements_telemetry::HistKind::LpSolveSeconds).unwrap();
        assert!(lp.count > 0, "LP solves timed");
    }

    #[test]
    fn missing_files_surface_io_errors() {
        assert!(matches!(
            run(&["economy", "value", "--file", "/nonexistent/x.json"]),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn serve_round_trips_and_recovers_its_journal() {
        let scenario = write_scenario();
        let journal = tmp(&format!("serve-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&journal);
        let sock = tmp(&format!("serve-{}.sock", std::process::id()));
        let args: Vec<String> = [
            "serve",
            "--scenario",
            scenario.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--socket",
            sock.to_str().unwrap(),
            "--avail",
            "4,4,4",
            "--duration",
            "2.5",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let daemon = std::thread::spawn(move || run(&args));

        // Issue one allocation over the socket while the daemon serves.
        let client = agreements_net::NetGrmClient::uds(&sock);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let id = agreements_grm::RequestId { client: 1, seq: 1 };
        let alloc = loop {
            match client.request_seq(0, 1, 1.0, id) {
                Ok(alloc) => break alloc,
                Err(e) => {
                    assert!(e.is_retryable(), "non-retryable serve error: {e}");
                    assert!(std::time::Instant::now() < deadline, "serve never came up: {e}");
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            }
        };
        assert!((alloc.amount - 1.0).abs() < 1e-12);
        let out = daemon.join().unwrap().unwrap();
        assert!(out.contains("1 records recovered"), "fresh journal: {out}");
        assert!(out.contains("1 granted"), "{out}");

        // A second incarnation recovers the decision from the journal
        // and replays the same retry without re-executing it.
        let args: Vec<String> = [
            "serve",
            "--scenario",
            scenario.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--socket",
            sock.to_str().unwrap(),
            "--duration",
            "2.5",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let daemon = std::thread::spawn(move || run(&args));
        client.disconnect();
        let replayed = loop {
            match client.request_seq(0, 1, 1.0, id) {
                Ok(a) => break a,
                Err(e) => {
                    assert!(e.is_retryable(), "non-retryable serve error: {e}");
                    assert!(std::time::Instant::now() < deadline, "restart never served: {e}");
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            }
        };
        assert_eq!(replayed.amount.to_bits(), alloc.amount.to_bits(), "dedup replay");
        let out = daemon.join().unwrap().unwrap();
        assert!(out.contains("2 records recovered"), "snapshot + decision: {out}");
        assert!(out.contains("1 duplicate requests"), "{out}");
        let _ = std::fs::remove_dir_all(&journal);
    }
}
