//! Minimal argument parsing: positional words plus `--key value` /
//! `--flag` options. Deliberately dependency-free.

use std::collections::BTreeMap;
use std::fmt;

/// Argument parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--key` given twice.
    Duplicate(String),
    /// `--key` requires a value but none followed.
    MissingValue(String),
    /// A required option was absent.
    Required(String),
    /// A value failed to parse.
    BadValue {
        /// The option name.
        key: String,
        /// The raw value.
        value: String,
        /// What it should have been.
        expected: &'static str,
    },
    /// An option this command does not understand.
    Unknown(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Duplicate(k) => write!(f, "option --{k} given more than once"),
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::Required(k) => write!(f, "missing required option --{k}"),
            ArgError::BadValue { key, value, expected } => {
                write!(f, "--{key} {value:?}: expected {expected}")
            }
            ArgError::Unknown(k) => write!(f, "unknown option --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line: positionals in order, options by name.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// Positional words, in order.
    pub positionals: Vec<String>,
    options: BTreeMap<String, Option<String>>,
}

impl Parsed {
    /// Parse a token stream. `flags` lists the options that take no
    /// value; everything else starting with `--` consumes the next token.
    pub fn parse<I, S>(tokens: I, flags: &[&str]) -> Result<Parsed, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Parsed::default();
        let mut iter = tokens.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let key = key.to_string();
                if out.options.contains_key(&key) {
                    return Err(ArgError::Duplicate(key));
                }
                if flags.contains(&key.as_str()) {
                    out.options.insert(key, None);
                } else {
                    let value = iter.next().ok_or_else(|| ArgError::MissingValue(key.clone()))?;
                    out.options.insert(key, Some(value));
                }
            } else {
                out.positionals.push(tok);
            }
        }
        Ok(out)
    }

    /// Whether a no-value flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// A string option, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).and_then(|v| v.as_deref())
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or_else(|| ArgError::Required(key.to_string()))
    }

    /// A parsed option with a default.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: raw.to_string(),
                expected,
            }),
        }
    }

    /// A required parsed option.
    pub fn parse_required<T: std::str::FromStr>(
        &self,
        key: &str,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        let raw = self.required(key)?;
        raw.parse().map_err(|_| ArgError::BadValue {
            key: key.to_string(),
            value: raw.to_string(),
            expected,
        })
    }

    /// Reject any option not in `known` (flags and valued alike).
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !known.contains(&key.as_str()) {
                return Err(ArgError::Unknown(key.clone()));
            }
        }
        Ok(())
    }

    /// Parse a comma-separated list of floats (e.g. `--avail 10,0,5.5`).
    pub fn float_list(&self, key: &str) -> Result<Vec<f64>, ArgError> {
        let raw = self.required(key)?;
        raw.split(',')
            .map(|part| {
                part.trim().parse().map_err(|_| ArgError::BadValue {
                    key: key.to_string(),
                    value: raw.to_string(),
                    expected: "comma-separated numbers",
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positionals_and_options() {
        let p =
            Parsed::parse(["economy", "value", "--resource", "disk", "--json"], &["json"]).unwrap();
        assert_eq!(p.positionals, vec!["economy", "value"]);
        assert_eq!(p.get("resource"), Some("disk"));
        assert!(p.flag("json"));
        assert!(!p.flag("verbose"));
    }

    #[test]
    fn missing_value_detected() {
        let err = Parsed::parse(["--out"], &[]).unwrap_err();
        assert_eq!(err, ArgError::MissingValue("out".into()));
    }

    #[test]
    fn duplicates_rejected() {
        let err = Parsed::parse(["--n", "1", "--n", "2"], &[]).unwrap_err();
        assert_eq!(err, ArgError::Duplicate("n".into()));
    }

    #[test]
    fn typed_parsing() {
        let p = Parsed::parse(["--n", "5", "--rho", "1.05"], &[]).unwrap();
        assert_eq!(p.parse_or("n", 0usize, "integer").unwrap(), 5);
        assert_eq!(p.parse_or("missing", 7usize, "integer").unwrap(), 7);
        let rho: f64 = p.parse_required("rho", "number").unwrap();
        assert!((rho - 1.05).abs() < 1e-12);
        assert!(matches!(
            p.parse_required::<usize>("rho", "integer"),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn required_missing() {
        let p = Parsed::parse(Vec::<String>::new(), &[]).unwrap();
        assert!(matches!(p.required("x"), Err(ArgError::Required(_))));
    }

    #[test]
    fn float_lists() {
        let p = Parsed::parse(["--avail", "10, 0,5.5"], &[]).unwrap();
        assert_eq!(p.float_list("avail").unwrap(), vec![10.0, 0.0, 5.5]);
        let p = Parsed::parse(["--avail", "10,x"], &[]).unwrap();
        assert!(p.float_list("avail").is_err());
    }

    #[test]
    fn unknown_options_rejected() {
        let p = Parsed::parse(["--bogus", "1"], &[]).unwrap();
        assert!(matches!(p.reject_unknown(&["n"]), Err(ArgError::Unknown(_))));
        assert!(p.reject_unknown(&["bogus"]).is_ok());
    }

    #[test]
    fn error_messages() {
        assert!(ArgError::Required("x".into()).to_string().contains("--x"));
        assert!(ArgError::Unknown("y".into()).to_string().contains("--y"));
    }
}
