//! The true JSON round-trip for the economy's persistent form: every
//! entity (principals, resources, currencies, tickets, virtual
//! currencies, revocations, granting semantics) must survive
//! serialize → deserialize with identical valuations.

use agreements_ticket::{AgreementNature, Economy, ResourceId, ValuationMethod};

fn rich_economy() -> Economy {
    let mut eco = Economy::new();
    let disk = eco.add_resource("disk");
    let cpu = eco.add_resource("cpu");
    let a = eco.add_principal("A");
    let b = eco.add_principal("B");
    let c = eco.add_principal("C");
    let (ca, cb, cc) = (eco.default_currency(a), eco.default_currency(b), eco.default_currency(c));
    let a1 = eco.add_virtual_currency(a, "A_1");
    eco.set_face_total(ca, 500.0).unwrap();
    eco.deposit_resource(ca, disk, 12.0).unwrap();
    eco.deposit_resource(ca, cpu, 4.0).unwrap();
    eco.deposit_resource(cb, disk, 7.0).unwrap();
    eco.issue_relative(ca, a1, 100.0, AgreementNature::Sharing).unwrap();
    eco.issue_relative(a1, cc, 50.0, AgreementNature::Granting).unwrap();
    let revoked = eco.issue_absolute(cb, cc, disk, 2.0, AgreementNature::Sharing).unwrap();
    eco.revoke(revoked).unwrap();
    eco
}

#[test]
fn economy_json_round_trip_preserves_everything() {
    let eco = rich_economy();
    let json = serde_json::to_string_pretty(&eco).unwrap();
    let back: Economy = serde_json::from_str(&json).unwrap();

    assert_eq!(back.num_principals(), eco.num_principals());
    assert_eq!(back.num_resources(), eco.num_resources());
    assert_eq!(back.currencies().len(), eco.currencies().len());
    assert_eq!(back.tickets().len(), eco.tickets().len());
    for (t1, t2) in eco.tickets().iter().zip(back.tickets()) {
        assert_eq!(t1, t2);
    }
    for (c1, c2) in eco.currencies().iter().zip(back.currencies()) {
        assert_eq!(c1, c2);
    }
    for r in 0..eco.num_resources() {
        let rid = ResourceId::from_index(r);
        let v1 = eco.value_report_with(rid, ValuationMethod::Exact).unwrap();
        let v2 = back.value_report_with(rid, ValuationMethod::Exact).unwrap();
        for c in eco.currencies() {
            assert_eq!(v1.currency_value(c.id), v2.currency_value(c.id));
            assert_eq!(v1.net_value(c.id), v2.net_value(c.id));
        }
    }
}

#[test]
fn deserialized_economy_remains_mutable() {
    let eco = rich_economy();
    let json = serde_json::to_string(&eco).unwrap();
    let mut back: Economy = serde_json::from_str(&json).unwrap();
    // Continue operating on the thawed economy: new principal + agreement.
    let d = back.add_principal("D");
    let cd = back.default_currency(d);
    let ca = back.currencies()[0].id;
    back.issue_relative(ca, cd, 10.0, AgreementNature::Sharing).unwrap();
    let disk = ResourceId::from_index(0);
    let v = back.value_report(disk).unwrap();
    assert!(v.currency_value(cd) > 0.0);
}

#[test]
fn scenario_and_sim_specs_round_trip() {
    use agreements_cli::spec::{ScenarioSpec, SimSpec};
    let scenario: ScenarioSpec = serde_json::from_str(
        r#"{"n": 4, "structure": {"Loop": {"n": 4, "share": 0.8, "skip": 1}}}"#,
    )
    .unwrap();
    let json = serde_json::to_string(&scenario).unwrap();
    let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back.agreement_matrix().unwrap(), scenario.agreement_matrix().unwrap());

    let sim: SimSpec = serde_json::from_str(
        r#"{"proxies": 10, "requests_per_day": 100, "seed": 1, "gap": 0.0,
            "policy": {"kind": "cost-aware", "per_hop": 2.0, "lambda": 0.1}}"#,
    )
    .unwrap();
    let json = serde_json::to_string(&sim).unwrap();
    let back: SimSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back.proxies, 10);
    assert!(matches!(back.policy.to_kind(), agreements_proxysim::PolicyKind::LpCostAware { .. }));
}
