//! Bounded-variable primal simplex.
//!
//! The row-based solver in [`crate::simplex`] models finite upper bounds
//! as extra `x ≤ u` rows; every bounded variable costs one row and one
//! slack column. This module implements the classic *bounded-variable*
//! simplex instead, using the substitution trick: a variable resting at
//! its upper bound is rewritten as `x = u − x̃` (its column negated, the
//! right-hand side adjusted), so every nonbasic variable always sits at
//! zero in its current coordinates. Three pivot outcomes exist:
//!
//! 1. **Bound flip** — the entering variable traverses its whole box
//!    before any basic variable hits a bound: substitute it, no pivot.
//! 2. **Leave at lower** — a basic variable reaches 0: ordinary pivot.
//! 3. **Leave at upper** — a basic variable reaches its upper bound:
//!    substitute *it* first, then pivot.
//!
//! For the scheduler's allocation LPs — where every draw variable has a
//! finite entitlement bound — this halves the tableau height relative to
//! the row-based encoding. Equivalence with the row-based solver is
//! property-tested (`tests/proptest_bounded.rs`).
//!
//! Solves `min c·x` s.t. `A x = b`, `0 ≤ x_j ≤ u_j` (`u_j = ∞` allowed),
//! `b ≥ 0`. Phase 1 uses artificials exactly like the row-based solver.
//!
//! # Workspaces and warm starts
//!
//! [`solve_bounded`] builds a fresh tableau per call — fine for one-off
//! solves, wasteful in the scheduler's hot path where the same-shaped LP
//! is solved per request. [`SimplexWorkspace`] owns every buffer the
//! solver touches (tableau, basis, bounds, flip flags, pricing scratch);
//! [`solve_bounded_with`] reuses them, performing **zero heap
//! allocations** after the first solve of a given shape (outputs
//! excepted — the returned `x`/`duals` vectors are owned by the caller).
//! `solve_bounded` itself delegates to `solve_bounded_with` with a
//! throwaway workspace, so the two are bit-identical by construction
//! (property-tested anyway).
//!
//! With [`SimplexWorkspace::set_warm_start`] enabled, the workspace also
//! saves the optimal basis (and bound-flip pattern) of each successful
//! solve. The next same-shaped solve refactorizes that basis against the
//! fresh `A`/`b` (one pivot per row, largest-pivot row choice) and, if
//! the result is primal feasible, skips phase 1 entirely and resumes
//! phase 2 — typically a handful of pivots when only the right-hand side
//! moved. Any trouble (singular basis, infeasible point, a previously
//! flipped column losing its finite bound) falls back to a cold solve,
//! so warm starting never changes what is found, only how fast.

use crate::error::LpError;
use crate::matrix::Matrix;
use crate::simplex::{PivotRule, SimplexOptions, SimplexStats, StandardSolution};

/// Solve `min c·x` s.t. `Ax = b`, `0 ≤ x ≤ u`, `b ≥ 0`.
///
/// `upper[j] = f64::INFINITY` leaves variable `j` unbounded above.
/// `num_structural` plays the same role as in
/// [`crate::simplex::solve_standard`].
pub fn solve_bounded(
    a: &[Vec<f64>],
    b: &[f64],
    c: &[f64],
    upper: &[f64],
    num_structural: usize,
    opts: &SimplexOptions,
) -> Result<StandardSolution, LpError> {
    let mut ws = SimplexWorkspace::new();
    solve_bounded_with(&mut ws, a, b, c, upper, num_structural, opts)
}

/// Saved optimal basis for warm starting the next same-shaped solve.
#[derive(Debug, Clone)]
struct WarmBasis {
    basis: Vec<usize>,
    flipped: Vec<bool>,
}

/// Reusable buffers for [`solve_bounded_with`].
///
/// One workspace serves any sequence of problems; buffers grow to the
/// largest shape seen and are then reused without reallocation. A
/// workspace is cheap to create but not `Clone`/`Send`-shared — give
/// each thread its own.
#[derive(Debug)]
pub struct SimplexWorkspace {
    /// `m × (total + 1)`; the last column is the rhs in *current*
    /// (possibly flipped) coordinates.
    t: Matrix,
    basis: Vec<usize>,
    /// Upper bound per column, in its own (unflipped) units; artificials
    /// get ∞ (0 after phase 1).
    upper: Vec<f64>,
    /// Whether column `j` currently uses flipped coordinates
    /// (`x_j = u_j − x̃_j`).
    flipped: Vec<bool>,
    /// Phase-2 costs in current coordinates (negated for flipped cols).
    cost: Vec<f64>,
    marker: Vec<usize>,
    art_start: usize,
    num_artificial: usize,
    // Pricing/ratio-test scratch, reused across iterations.
    z: Vec<f64>,
    work_cost: Vec<f64>,
    basic: Vec<bool>,
    art_rows: Vec<usize>,
    assigned: Vec<bool>,
    // Warm-start state.
    warm_enabled: bool,
    warm: Option<WarmBasis>,
    /// `(m, total, num_structural)` of the last prepared model; a warm
    /// basis is only valid against an identical shape.
    shape: Option<(usize, usize, usize)>,
    last_was_warm: bool,
}

impl Default for SimplexWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SimplexWorkspace {
    /// An empty workspace (no buffers allocated until the first solve).
    pub fn new() -> Self {
        SimplexWorkspace {
            t: Matrix::zeros(0, 0),
            basis: Vec::new(),
            upper: Vec::new(),
            flipped: Vec::new(),
            cost: Vec::new(),
            marker: Vec::new(),
            art_start: 0,
            num_artificial: 0,
            z: Vec::new(),
            work_cost: Vec::new(),
            basic: Vec::new(),
            art_rows: Vec::new(),
            assigned: Vec::new(),
            warm_enabled: false,
            warm: None,
            shape: None,
            last_was_warm: false,
        }
    }

    /// Enable or disable warm starting. Disabling also drops any saved
    /// basis.
    pub fn set_warm_start(&mut self, on: bool) {
        self.warm_enabled = on;
        if !on {
            self.warm = None;
        }
    }

    /// Whether warm starting is enabled.
    pub fn warm_start_enabled(&self) -> bool {
        self.warm_enabled
    }

    /// Whether the most recent solve resumed from a saved basis instead
    /// of running phase 1.
    pub fn last_solve_was_warm(&self) -> bool {
        self.last_was_warm
    }

    /// Drop any saved basis (the next solve will be cold).
    pub fn invalidate_warm_start(&mut self) {
        self.warm = None;
    }

    fn m(&self) -> usize {
        self.t.rows()
    }

    fn total_cols(&self) -> usize {
        self.t.cols() - 1
    }

    fn rhs(&self, i: usize) -> f64 {
        self.t[(i, self.t.cols() - 1)]
    }

    /// Build (or rebuild) the tableau for a model, reusing all buffers.
    fn prepare(
        &mut self,
        a: &[Vec<f64>],
        b: &[f64],
        c: &[f64],
        upper: &[f64],
        num_structural: usize,
    ) -> Result<(), LpError> {
        let m = a.len();
        let n = a[0].len();
        // Slack-region unit columns with infinite bound can serve as the
        // initial basis (in our standard form slacks are unbounded).
        self.basis.clear();
        self.basis.resize(m, usize::MAX);
        'col: for j in num_structural..n {
            if upper[j].is_finite() {
                continue;
            }
            let mut unit_row = usize::MAX;
            for (i, row) in a.iter().enumerate() {
                let v = row[j];
                if v == 0.0 {
                    continue;
                }
                if (v - 1.0).abs() <= f64::EPSILON && unit_row == usize::MAX {
                    unit_row = i;
                } else {
                    continue 'col;
                }
            }
            if unit_row != usize::MAX && self.basis[unit_row] == usize::MAX {
                self.basis[unit_row] = j;
            }
        }
        self.art_rows.clear();
        self.art_rows.extend((0..m).filter(|&i| self.basis[i] == usize::MAX));
        let num_artificial = self.art_rows.len();
        let total = n + num_artificial;
        self.t.reset(m, total + 1);
        for i in 0..m {
            let row = self.t.row_mut(i);
            row[..n].copy_from_slice(&a[i]);
            row[total] = b[i];
        }
        self.marker.clear();
        self.marker.extend_from_slice(&self.basis);
        for k in 0..num_artificial {
            let i = self.art_rows[k];
            self.t[(i, n + k)] = 1.0;
            self.basis[i] = n + k;
            self.marker[i] = n + k;
        }
        self.cost.clear();
        self.cost.extend_from_slice(c);
        self.cost.resize(total, 0.0);
        self.upper.clear();
        self.upper.extend_from_slice(upper);
        self.upper.resize(total, f64::INFINITY);
        self.flipped.clear();
        self.flipped.resize(total, false);
        self.art_start = n;
        self.num_artificial = num_artificial;
        // Scratch sized once per shape.
        self.z.clear();
        self.z.resize(total, 0.0);
        self.work_cost.clear();
        self.work_cost.resize(total, 0.0);
        self.basic.clear();
        self.basic.resize(total, false);
        self.assigned.clear();
        self.assigned.resize(m, false);
        self.shape = Some((m, total, num_structural));
        Ok(())
    }

    /// Reduced costs for `work_cost` written into `z`.
    fn reduced_costs_into_z(&mut self) {
        let total = self.total_cols();
        self.z.clear();
        self.z.extend_from_slice(&self.work_cost);
        for i in 0..self.m() {
            let cb = self.work_cost[self.basis[i]];
            if cb == 0.0 {
                continue;
            }
            let row = self.t.row(i);
            for j in 0..total {
                self.z[j] -= cb * row[j];
            }
        }
    }

    /// Substitute a **nonbasic** column: `x = u − x̃`. Adjusts the rhs for
    /// the full traversal, negates the column, toggles the flag and cost.
    fn flip_nonbasic(&mut self, j: usize) {
        let u = self.upper[j];
        debug_assert!(u.is_finite(), "cannot flip an unbounded column");
        let cols = self.t.cols();
        for i in 0..self.m() {
            let a = self.t[(i, j)];
            if a != 0.0 {
                self.t[(i, cols - 1)] -= a * u;
                self.t[(i, j)] = -a;
            }
        }
        self.flipped[j] = !self.flipped[j];
        self.cost[j] = -self.cost[j];
    }

    /// Substitute the **basic** variable of `row` (about to leave at its
    /// upper bound): negate the row's nonbasic entries, set
    /// `rhs ← u − rhs`, toggle flag and cost.
    fn flip_basic_row(&mut self, row: usize) {
        let bj = self.basis[row];
        let u = self.upper[bj];
        debug_assert!(u.is_finite());
        let cols = self.t.cols();
        for jj in 0..cols - 1 {
            if jj != bj {
                self.t[(row, jj)] = -self.t[(row, jj)];
            }
        }
        let old = self.t[(row, cols - 1)];
        self.t[(row, cols - 1)] = u - old;
        self.flipped[bj] = !self.flipped[bj];
        self.cost[bj] = -self.cost[bj];
    }

    /// One optimization loop over `work_cost` (already loaded by the
    /// caller). `phase2` bars artificial columns from entering.
    fn optimize(&mut self, phase2: bool, opts: &SimplexOptions) -> Result<usize, LpError> {
        let tol = opts.tol;
        let art_start = self.art_start;
        let mut iters = 0usize;
        loop {
            if iters >= opts.max_iters {
                return Err(LpError::IterationLimit { limit: opts.max_iters });
            }
            self.reduced_costs_into_z();
            let use_bland = opts.pivot_rule == PivotRule::Bland || iters >= opts.bland_after;
            for flag in self.basic.iter_mut() {
                *flag = false;
            }
            for &j in &self.basis {
                self.basic[j] = true;
            }
            let mut enter = usize::MAX;
            let mut best = -tol;
            for (j, &zj) in self.z.iter().enumerate() {
                if self.basic[j] || (phase2 && j >= art_start) {
                    continue;
                }
                if zj < best {
                    enter = j;
                    best = zj;
                    if use_bland {
                        break;
                    }
                }
            }
            if enter == usize::MAX {
                return Ok(iters);
            }

            // Ratio test: entering increases from 0 by t.
            let mut limit = self.upper[enter];
            let mut leave = usize::MAX;
            let mut leave_at_upper = false;
            for i in 0..self.m() {
                let alpha = self.t[(i, enter)];
                let bi = self.basis[i];
                if alpha > tol {
                    let ratio = self.rhs(i) / alpha;
                    if ratio < limit - tol
                        || (ratio < limit + tol && leave != usize::MAX && bi < self.basis[leave])
                    {
                        limit = ratio.max(0.0);
                        leave = i;
                        leave_at_upper = false;
                    }
                } else if alpha < -tol && self.upper[bi].is_finite() {
                    let headroom = (self.upper[bi] - self.rhs(i)).max(0.0);
                    let ratio = headroom / (-alpha);
                    if ratio < limit - tol
                        || (ratio < limit + tol && leave != usize::MAX && bi < self.basis[leave])
                    {
                        limit = ratio.max(0.0);
                        leave = i;
                        leave_at_upper = true;
                    }
                }
            }
            if limit.is_infinite() {
                return Err(LpError::Unbounded { column: enter });
            }

            if leave == usize::MAX {
                // Case 1: bound flip, no pivot. The working cost vector
                // flips in lockstep with self.cost (which flip_nonbasic
                // toggles for phase 2's benefit).
                self.flip_nonbasic(enter);
                self.work_cost[enter] = -self.work_cost[enter];
            } else {
                if leave_at_upper {
                    // Case 3: substitute the leaving basic first.
                    let bj = self.basis[leave];
                    self.flip_basic_row(leave);
                    self.work_cost[bj] = -self.work_cost[bj];
                }
                // Case 2/3: ordinary pivot (Gauss-Jordan handles the
                // entering movement).
                self.pivot(leave, enter);
            }
            iters += 1;
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let cols = self.t.cols();
        let piv = self.t[(row, col)];
        debug_assert!(piv.abs() > 0.0, "zero pivot");
        {
            let r = self.t.row_mut(row);
            let inv = 1.0 / piv;
            for v in r.iter_mut() {
                *v *= inv;
            }
            r[col] = 1.0;
        }
        for i in 0..self.m() {
            if i == row {
                continue;
            }
            let factor = self.t[(i, col)];
            if factor == 0.0 {
                continue;
            }
            let (src, dst) = self.t.row_pair_mut(row, i);
            for j in 0..cols {
                dst[j] -= factor * src[j];
            }
            dst[col] = 0.0;
        }
        self.basis[row] = col;
    }

    fn phase1(&mut self, opts: &SimplexOptions) -> Result<usize, LpError> {
        if self.num_artificial == 0 {
            return Ok(0);
        }
        let total = self.total_cols();
        for j in 0..total {
            self.work_cost[j] = if j >= self.art_start { 1.0 } else { 0.0 };
        }
        let iters = self.optimize(false, opts)?;
        let residual: f64 = (0..self.m())
            .filter(|&i| self.basis[i] >= self.art_start)
            .map(|i| self.rhs(i).abs())
            .sum();
        if residual > opts.tol.max(1e-7) {
            return Err(LpError::Infeasible { residual });
        }
        // Pin every artificial to zero for phase 2. Nonbasic artificials
        // are barred from entering, but an artificial still *basic* at
        // level 0 could otherwise re-absorb infeasibility (its ∞ bound
        // lets the ratio test wave moves through its row). With an upper
        // bound of 0, the headroom test blocks any such move and
        // degenerate pivots push the artificial out instead.
        for j in self.art_start..self.total_cols() {
            self.upper[j] = 0.0;
        }
        Ok(iters)
    }

    fn phase2(&mut self, opts: &SimplexOptions) -> Result<usize, LpError> {
        self.work_cost.clear();
        let cost_snapshot_len = self.cost.len();
        self.work_cost.resize(cost_snapshot_len, 0.0);
        self.work_cost.copy_from_slice(&self.cost);
        self.optimize(true, opts)
    }

    /// Try to resume from the saved basis: apply its bound flips,
    /// refactorize one pivot per row (largest-pivot row choice among
    /// unassigned rows), and accept only a primal-feasible result.
    /// On `false` the tableau is dirty and must be rebuilt.
    fn try_warm(&mut self, opts: &SimplexOptions) -> bool {
        let Some(warm) = self.warm.take() else { return false };
        let ok = self.apply_warm(&warm, opts);
        self.warm = Some(warm);
        ok
    }

    fn apply_warm(&mut self, warm: &WarmBasis, opts: &SimplexOptions) -> bool {
        let m = self.m();
        debug_assert_eq!(warm.basis.len(), m);
        // Re-apply the saved flip pattern. A column that was flipped must
        // still have a finite bound; the initial basis columns (unbounded
        // slacks / artificials) are never flipped, so every flip target
        // is nonbasic here.
        for j in 0..warm.flipped.len().min(self.flipped.len()) {
            if warm.flipped[j] && !self.flipped[j] {
                if !self.upper[j].is_finite() {
                    return false;
                }
                self.flip_nonbasic(j);
            }
        }
        // Refactorize: drive each saved basic column into the basis with
        // one pivot, choosing the largest available pivot element among
        // rows not yet claimed. Fails only if the saved basis is singular
        // with respect to the new constraint matrix.
        let pivot_floor = opts.tol.max(1e-8);
        for flag in self.assigned.iter_mut() {
            *flag = false;
        }
        for &col in &warm.basis {
            // Already basic in the right place (e.g. a slack that is part
            // of the fresh initial basis): claim its row without a pivot.
            if let Some(r) = (0..m).find(|&r| !self.assigned[r] && self.basis[r] == col) {
                self.assigned[r] = true;
                continue;
            }
            let mut best_row = usize::MAX;
            let mut best_mag = pivot_floor;
            for r in 0..m {
                if self.assigned[r] {
                    continue;
                }
                let mag = self.t[(r, col)].abs();
                if mag > best_mag {
                    best_row = r;
                    best_mag = mag;
                }
            }
            if best_row == usize::MAX {
                return false;
            }
            self.pivot(best_row, col);
            self.assigned[best_row] = true;
        }
        // Primal feasibility of the refactorized point: every basic value
        // inside its box. Otherwise the saved basis is stale enough that
        // a cold two-phase solve is the safe route.
        let feas_tol = opts.tol.max(1e-7);
        for i in 0..m {
            let v = self.rhs(i);
            if v < -feas_tol || v > self.upper[self.basis[i]] + feas_tol {
                return false;
            }
        }
        // Mirror the post-phase-1 state: artificials pinned to zero.
        for j in self.art_start..self.total_cols() {
            self.upper[j] = 0.0;
        }
        true
    }

    /// Save the current basis for the next warm start. Skipped if an
    /// artificial is still basic (a warm resume could then not skip
    /// phase 1 soundly).
    fn save_warm(&mut self) {
        if self.basis.iter().any(|&j| j >= self.art_start) {
            self.warm = None;
            return;
        }
        let n_cols = self.total_cols();
        match &mut self.warm {
            Some(w) => {
                w.basis.clear();
                w.basis.extend_from_slice(&self.basis);
                w.flipped.clear();
                w.flipped.extend_from_slice(&self.flipped[..n_cols]);
            }
            None => {
                self.warm = Some(WarmBasis {
                    basis: self.basis.clone(),
                    flipped: self.flipped[..n_cols].to_vec(),
                });
            }
        }
    }

    fn extract(&self, n: usize) -> Vec<f64> {
        let mut current = vec![0.0; self.total_cols()];
        for i in 0..self.m() {
            current[self.basis[i]] = self.rhs(i).max(0.0);
        }
        (0..n)
            .map(
                |j| {
                    if self.flipped[j] {
                        (self.upper[j] - current[j]).max(0.0)
                    } else {
                        current[j]
                    }
                },
            )
            .collect()
    }

    fn duals(&self) -> Vec<f64> {
        // Reduced costs of the phase-2 objective; work_cost still holds
        // it after optimize() returned optimal.
        let total = self.total_cols();
        let mut z: Vec<f64> = self.cost.clone();
        for i in 0..self.m() {
            let cb = self.cost[self.basis[i]];
            if cb == 0.0 {
                continue;
            }
            let row = self.t.row(i);
            for j in 0..total {
                z[j] -= cb * row[j];
            }
        }
        self.marker.iter().map(|&mk| -z[mk]).collect()
    }
}

/// Like [`solve_bounded`], but reusing `ws`'s buffers (and, if enabled,
/// its saved basis for a warm start). See the module docs for the
/// guarantees; results are bit-identical to `solve_bounded` when warm
/// starting is off, and agree to solver tolerance when it is on.
pub fn solve_bounded_with(
    ws: &mut SimplexWorkspace,
    a: &[Vec<f64>],
    b: &[f64],
    c: &[f64],
    upper: &[f64],
    num_structural: usize,
    opts: &SimplexOptions,
) -> Result<StandardSolution, LpError> {
    let m = a.len();
    let n = if m == 0 { c.len() } else { a[0].len() };
    debug_assert_eq!(upper.len(), n, "one upper bound per column");
    debug_assert!(b.iter().all(|&bi| bi >= 0.0), "standard form requires b >= 0");
    ws.last_was_warm = false;
    if upper.iter().any(|&u| u < 0.0 || u.is_nan()) {
        return Err(LpError::InvalidModel("negative or NaN upper bound".into()));
    }

    if m == 0 {
        // Minimize each variable independently over its box.
        let mut x = vec![0.0; n];
        let mut objective = 0.0;
        for j in 0..n {
            if c[j] < -opts.tol {
                if upper[j].is_infinite() {
                    return Err(LpError::Unbounded { column: j });
                }
                x[j] = upper[j];
                objective += c[j] * upper[j];
            }
        }
        return Ok(StandardSolution {
            x,
            objective,
            duals: Vec::new(),
            stats: SimplexStats::default(),
        });
    }

    let prev_shape = ws.shape;
    ws.prepare(a, b, c, upper, num_structural)?;
    let warm_eligible = ws.warm_enabled
        && ws.warm.is_some()
        && prev_shape == ws.shape
        && ws.warm.as_ref().map(|w| w.basis.len()) == Some(m);

    let (stats1, stats2) = if warm_eligible && ws.try_warm(opts) {
        ws.last_was_warm = true;
        let s2 = ws.phase2(opts)?;
        (0, s2)
    } else {
        if warm_eligible {
            // The failed warm attempt dirtied the tableau; rebuild.
            ws.prepare(a, b, c, upper, num_structural)?;
        }
        let s1 = ws.phase1(opts)?;
        let s2 = ws.phase2(opts)?;
        (s1, s2)
    };

    if ws.warm_enabled {
        ws.save_warm();
    }

    let x = ws.extract(n);
    let objective: f64 = x.iter().zip(c).map(|(xj, cj)| xj * cj).sum();
    let duals = ws.duals();
    Ok(StandardSolution {
        x,
        objective,
        duals,
        stats: SimplexStats {
            phase1_iters: stats1,
            phase2_iters: stats2,
            artificials: ws.num_artificial,
            dropped_rows: 0,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(
        a: &[Vec<f64>],
        b: &[f64],
        c: &[f64],
        upper: &[f64],
        ns: usize,
    ) -> Result<StandardSolution, LpError> {
        solve_bounded(a, b, c, upper, ns, &SimplexOptions::default())
    }

    const INF: f64 = f64::INFINITY;

    #[test]
    fn unbounded_vars_match_row_solver() {
        // min -x1 - 2x2, x1 + x2 + s1 = 4, x2 + s2 = 3 (no upper bounds).
        let a = vec![vec![1.0, 1.0, 1.0, 0.0], vec![0.0, 1.0, 0.0, 1.0]];
        let b = vec![4.0, 3.0];
        let c = vec![-1.0, -2.0, 0.0, 0.0];
        let s = solve(&a, &b, &c, &[INF; 4], 2).unwrap();
        assert!((s.objective + 7.0).abs() < 1e-9);
        assert!((s.x[0] - 1.0).abs() < 1e-9);
        assert!((s.x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bound_binds_via_bound_flip() {
        // min -x1, x1 + s = 10, x1 <= 4: optimum x1 = 4 via bound flip.
        let a = vec![vec![1.0, 1.0]];
        let b = vec![10.0];
        let c = vec![-1.0, 0.0];
        let s = solve(&a, &b, &c, &[4.0, INF], 1).unwrap();
        assert!((s.objective + 4.0).abs() < 1e-9, "objective {}", s.objective);
        assert!((s.x[0] - 4.0).abs() < 1e-9);
        assert!((s.x[1] - 6.0).abs() < 1e-9, "slack absorbs the rest");
    }

    #[test]
    fn multiple_bounded_vars() {
        // min -(x1 + x2 + x3) s.t. x1 + x2 + x3 + s = 10, x_i <= 3.
        let a = vec![vec![1.0, 1.0, 1.0, 1.0]];
        let b = vec![10.0];
        let c = vec![-1.0, -1.0, -1.0, 0.0];
        let s = solve(&a, &b, &c, &[3.0, 3.0, 3.0, INF], 3).unwrap();
        assert!((s.objective + 9.0).abs() < 1e-9, "all three at bound");
        for j in 0..3 {
            assert!((s.x[j] - 3.0).abs() < 1e-9, "x[{j}] = {}", s.x[j]);
        }
    }

    #[test]
    fn basic_variable_leaves_at_upper() {
        // min -x1 - 2x2, x1 + x2 + s = 8, x1 <= 5, x2 <= 6:
        // optimum x2 = 6, x1 = 2 -> obj = -14.
        let a = vec![vec![1.0, 1.0, 1.0]];
        let b = vec![8.0];
        let c = vec![-1.0, -2.0, 0.0];
        let s = solve(&a, &b, &c, &[5.0, 6.0, INF], 2).unwrap();
        assert!((s.objective + 14.0).abs() < 1e-9, "objective {}", s.objective);
        assert!((s.x[0] - 2.0).abs() < 1e-9, "x1 {}", s.x[0]);
        assert!((s.x[1] - 6.0).abs() < 1e-9, "x2 {}", s.x[1]);
    }

    #[test]
    fn equality_with_bounds_needs_artificials() {
        // min x1 + 2 x2 s.t. x1 + x2 = 5, x1 <= 2 -> x1 = 2, x2 = 3 -> 8.
        let a = vec![vec![1.0, 1.0]];
        let b = vec![5.0];
        let c = vec![1.0, 2.0];
        let s = solve(&a, &b, &c, &[2.0, INF], 2).unwrap();
        assert!((s.objective - 8.0).abs() < 1e-9, "objective {}", s.objective);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 3.0).abs() < 1e-9);
        assert!(s.stats.artificials >= 1);
    }

    #[test]
    fn infeasible_bounds_detected() {
        // x1 + x2 = 10 with both <= 3.
        let a = vec![vec![1.0, 1.0]];
        let b = vec![10.0];
        let c = vec![0.0, 0.0];
        assert!(matches!(solve(&a, &b, &c, &[3.0, 3.0], 2), Err(LpError::Infeasible { .. })));
    }

    #[test]
    fn unbounded_detected() {
        // min -x1 with x1 - x2 + s = 1, all unbounded above.
        let a = vec![vec![1.0, -1.0, 1.0]];
        let b = vec![1.0];
        let c = vec![-1.0, 0.0, 0.0];
        assert!(matches!(solve(&a, &b, &c, &[INF; 3], 2), Err(LpError::Unbounded { .. })));
    }

    #[test]
    fn bounded_makes_it_bounded() {
        // Same as above but x1 <= 7: optimum -7 (x2 grows to compensate).
        let a = vec![vec![1.0, -1.0, 1.0]];
        let b = vec![1.0];
        let c = vec![-1.0, 0.0, 0.0];
        let s = solve(&a, &b, &c, &[7.0, INF, INF], 2).unwrap();
        assert!((s.objective + 7.0).abs() < 1e-9, "objective {}", s.objective);
        assert!((s.x[0] - 7.0).abs() < 1e-9);
        assert!((s.x[1] - 6.0).abs() < 1e-9, "x2 balances: {}", s.x[1]);
    }

    #[test]
    fn no_constraints_box_minimum() {
        let s = solve(&[], &[], &[1.0, -2.0], &[INF, 5.0], 2).unwrap();
        assert_eq!(s.x, vec![0.0, 5.0]);
        assert!((s.objective + 10.0).abs() < 1e-12);
        assert!(matches!(
            solve(&[], &[], &[-1.0], &[INF], 1),
            Err(LpError::Unbounded { column: 0 })
        ));
    }

    #[test]
    fn negative_upper_bound_rejected() {
        let a = vec![vec![1.0]];
        assert!(matches!(solve(&a, &[1.0], &[0.0], &[-1.0], 1), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn duals_match_row_solver_on_textbook_lp() {
        // max 3x + 5y (as min of negation) with slacks; same as the
        // textbook dual test in the row solver.
        let a = vec![
            vec![1.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0, 1.0, 0.0],
            vec![3.0, 2.0, 0.0, 0.0, 1.0],
        ];
        let b = vec![4.0, 12.0, 18.0];
        let c = vec![-3.0, -5.0, 0.0, 0.0, 0.0];
        let s = solve(&a, &b, &c, &[INF; 5], 2).unwrap();
        assert!((s.objective + 36.0).abs() < 1e-9);
        assert!(s.duals[0].abs() < 1e-9);
        assert!((s.duals[1] + 1.5).abs() < 1e-9);
        assert!((s.duals[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_shaped_lp() {
        // The scheduler's reduced form: draws d_i in [0, bound_i],
        // sum d = x, drop constraints via slacks.
        // min theta s.t. d1 + d2 + d3 = 6; d_i - theta <= 0 (as = with
        // slack); bounds d1 <= 5, d2 <= 3, d3 <= 4.
        // Optimum: theta = 2, draws (2, 2, 2).
        let a = vec![
            vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, -1.0, 1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, -1.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0, -1.0, 0.0, 0.0, 1.0],
        ];
        let b = vec![6.0, 0.0, 0.0, 0.0];
        let c = vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        let upper = [5.0, 3.0, 4.0, INF, INF, INF, INF];
        let s = solve(&a, &b, &c, &upper, 4).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-9, "theta {}", s.objective);
        let sum: f64 = s.x[..3].iter().sum();
        assert!((sum - 6.0).abs() < 1e-9);
        for j in 0..3 {
            assert!(s.x[j] <= 2.0 + 1e-9, "draw {} = {}", j, s.x[j]);
        }
    }

    // --- workspace & warm-start tests ---

    /// The allocation-shaped LP above, parameterized by demand x, as raw
    /// standard form.
    #[allow(clippy::type_complexity)]
    fn alloc_lp(x: f64) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let a = vec![
            vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, -1.0, 1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, -1.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0, -1.0, 0.0, 0.0, 1.0],
        ];
        let b = vec![x, 0.0, 0.0, 0.0];
        let c = vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        let upper = vec![5.0, 3.0, 4.0, INF, INF, INF, INF];
        (a, b, c, upper)
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let mut ws = SimplexWorkspace::new();
        let opts = SimplexOptions::default();
        for x in [6.0, 2.0, 9.0, 0.5, 11.0] {
            let (a, b, c, u) = alloc_lp(x);
            let fresh = solve_bounded(&a, &b, &c, &u, 4, &opts).unwrap();
            let reused = solve_bounded_with(&mut ws, &a, &b, &c, &u, 4, &opts).unwrap();
            assert_eq!(fresh.x, reused.x, "x mismatch at demand {x}");
            assert_eq!(fresh.objective, reused.objective);
            assert_eq!(fresh.duals, reused.duals);
            assert_eq!(fresh.stats, reused.stats);
            assert!(!ws.last_solve_was_warm());
        }
    }

    #[test]
    fn workspace_survives_shape_changes() {
        let mut ws = SimplexWorkspace::new();
        let opts = SimplexOptions::default();
        // Big problem, then small, then big again.
        let (a, b, c, u) = alloc_lp(6.0);
        let s1 = solve_bounded_with(&mut ws, &a, &b, &c, &u, 4, &opts).unwrap();
        let small_a = vec![vec![1.0, 1.0]];
        let s2 =
            solve_bounded_with(&mut ws, &small_a, &[10.0], &[-1.0, 0.0], &[4.0, INF], 1, &opts)
                .unwrap();
        assert!((s2.objective + 4.0).abs() < 1e-9);
        let s3 = solve_bounded_with(&mut ws, &a, &b, &c, &u, 4, &opts).unwrap();
        assert_eq!(s1.x, s3.x);
        assert_eq!(s1.objective, s3.objective);
    }

    #[test]
    fn warm_start_matches_cold_across_rhs_sweep() {
        let mut warm_ws = SimplexWorkspace::new();
        warm_ws.set_warm_start(true);
        let opts = SimplexOptions::default();
        let mut warm_hits = 0;
        for i in 0..40 {
            let x = 0.25 + (i as f64) * 0.29; // sweeps 0.25 ..= ~11.5
            let (a, b, c, u) = alloc_lp(x.min(11.9));
            let cold = solve_bounded(&a, &b, &c, &u, 4, &opts);
            let warm = solve_bounded_with(&mut warm_ws, &a, &b, &c, &u, 4, &opts);
            match (cold, warm) {
                (Ok(cs), Ok(ws_sol)) => {
                    assert!(
                        (cs.objective - ws_sol.objective).abs() < 1e-9,
                        "objective: cold {} warm {} at x={x}",
                        cs.objective,
                        ws_sol.objective
                    );
                    for (xc, xw) in cs.x.iter().zip(&ws_sol.x) {
                        assert!((xc - xw).abs() < 1e-7, "x: cold {xc} warm {xw} at x={x}");
                    }
                    if warm_ws.last_solve_was_warm() {
                        warm_hits += 1;
                    }
                }
                (Err(ce), Err(we)) => {
                    assert_eq!(
                        std::mem::discriminant(&ce),
                        std::mem::discriminant(&we),
                        "error kind mismatch at x={x}"
                    );
                }
                (c, w) => panic!("cold/warm disagreement at x={x}: {c:?} vs {w:?}"),
            }
        }
        assert!(warm_hits > 20, "warm starts should dominate the sweep: {warm_hits}/40");
    }

    #[test]
    fn warm_start_skips_phase1_when_resumed() {
        let mut ws = SimplexWorkspace::new();
        ws.set_warm_start(true);
        let opts = SimplexOptions::default();
        let (a, b, c, u) = alloc_lp(6.0);
        let first = solve_bounded_with(&mut ws, &a, &b, &c, &u, 4, &opts).unwrap();
        assert!(first.stats.artificials > 0, "equality row needs an artificial");
        assert!(!ws.last_solve_was_warm(), "first solve is cold");
        let (a2, b2, c2, u2) = alloc_lp(6.3);
        let second = solve_bounded_with(&mut ws, &a2, &b2, &c2, &u2, 4, &opts).unwrap();
        assert!(ws.last_solve_was_warm(), "second solve should warm start");
        assert_eq!(second.stats.phase1_iters, 0);
        let sum: f64 = second.x[..3].iter().sum();
        assert!((sum - 6.3).abs() < 1e-9);
    }

    #[test]
    fn warm_start_falls_back_on_shape_change() {
        let mut ws = SimplexWorkspace::new();
        ws.set_warm_start(true);
        let opts = SimplexOptions::default();
        let (a, b, c, u) = alloc_lp(6.0);
        solve_bounded_with(&mut ws, &a, &b, &c, &u, 4, &opts).unwrap();
        // Different shape: must cold-solve and still be correct.
        let small_a = vec![vec![1.0, 1.0]];
        let s = solve_bounded_with(&mut ws, &small_a, &[10.0], &[-1.0, 0.0], &[4.0, INF], 1, &opts)
            .unwrap();
        assert!(!ws.last_solve_was_warm());
        assert!((s.objective + 4.0).abs() < 1e-9);
    }

    #[test]
    fn warm_start_handles_infeasible_transition() {
        let mut ws = SimplexWorkspace::new();
        ws.set_warm_start(true);
        let opts = SimplexOptions::default();
        // Feasible, then infeasible with the same shape, then feasible.
        let a = vec![vec![1.0, 1.0]];
        let c = vec![0.0, 0.0];
        let u = vec![3.0, 3.0];
        assert!(solve_bounded_with(&mut ws, &a, &[5.0], &c, &u, 2, &opts).is_ok());
        assert!(matches!(
            solve_bounded_with(&mut ws, &a, &[10.0], &c, &u, 2, &opts),
            Err(LpError::Infeasible { .. })
        ));
        let back = solve_bounded_with(&mut ws, &a, &[4.0], &c, &u, 2, &opts).unwrap();
        let total: f64 = back.x.iter().sum();
        assert!((total - 4.0).abs() < 1e-9);
    }

    #[test]
    fn disabling_warm_start_clears_saved_basis() {
        let mut ws = SimplexWorkspace::new();
        ws.set_warm_start(true);
        let opts = SimplexOptions::default();
        let (a, b, c, u) = alloc_lp(6.0);
        solve_bounded_with(&mut ws, &a, &b, &c, &u, 4, &opts).unwrap();
        ws.set_warm_start(false);
        assert!(!ws.warm_start_enabled());
        solve_bounded_with(&mut ws, &a, &b, &c, &u, 4, &opts).unwrap();
        assert!(!ws.last_solve_was_warm());
    }
}
