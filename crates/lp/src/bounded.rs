//! Bounded-variable primal simplex.
//!
//! The row-based solver in [`crate::simplex`] models finite upper bounds
//! as extra `x ≤ u` rows; every bounded variable costs one row and one
//! slack column. This module implements the classic *bounded-variable*
//! simplex instead, using the substitution trick: a variable resting at
//! its upper bound is rewritten as `x = u − x̃` (its column negated, the
//! right-hand side adjusted), so every nonbasic variable always sits at
//! zero in its current coordinates. Three pivot outcomes exist:
//!
//! 1. **Bound flip** — the entering variable traverses its whole box
//!    before any basic variable hits a bound: substitute it, no pivot.
//! 2. **Leave at lower** — a basic variable reaches 0: ordinary pivot.
//! 3. **Leave at upper** — a basic variable reaches its upper bound:
//!    substitute *it* first, then pivot.
//!
//! For the scheduler's allocation LPs — where every draw variable has a
//! finite entitlement bound — this halves the tableau height relative to
//! the row-based encoding. Equivalence with the row-based solver is
//! property-tested (`tests/proptest_bounded.rs`).
//!
//! Solves `min c·x` s.t. `A x = b`, `0 ≤ x_j ≤ u_j` (`u_j = ∞` allowed),
//! `b ≥ 0`. Phase 1 uses artificials exactly like the row-based solver.

use crate::error::LpError;
use crate::matrix::Matrix;
use crate::simplex::{PivotRule, SimplexOptions, SimplexStats, StandardSolution};

/// Solve `min c·x` s.t. `Ax = b`, `0 ≤ x ≤ u`, `b ≥ 0`.
///
/// `upper[j] = f64::INFINITY` leaves variable `j` unbounded above.
/// `num_structural` plays the same role as in
/// [`crate::simplex::solve_standard`].
pub fn solve_bounded(
    a: &[Vec<f64>],
    b: &[f64],
    c: &[f64],
    upper: &[f64],
    num_structural: usize,
    opts: &SimplexOptions,
) -> Result<StandardSolution, LpError> {
    let m = a.len();
    let n = if m == 0 { c.len() } else { a[0].len() };
    debug_assert_eq!(upper.len(), n, "one upper bound per column");
    debug_assert!(b.iter().all(|&bi| bi >= 0.0), "standard form requires b >= 0");
    if upper.iter().any(|&u| u < 0.0 || u.is_nan()) {
        return Err(LpError::InvalidModel("negative or NaN upper bound".into()));
    }

    if m == 0 {
        // Minimize each variable independently over its box.
        let mut x = vec![0.0; n];
        let mut objective = 0.0;
        for j in 0..n {
            if c[j] < -opts.tol {
                if upper[j].is_infinite() {
                    return Err(LpError::Unbounded { column: j });
                }
                x[j] = upper[j];
                objective += c[j] * upper[j];
            }
        }
        return Ok(StandardSolution {
            x,
            objective,
            duals: Vec::new(),
            stats: SimplexStats::default(),
        });
    }

    let mut tab = BoundedTableau::build(a, b, c, upper, num_structural, opts)?;
    let stats1 = tab.phase1()?;
    let stats2 = tab.phase2()?;
    let x = tab.extract(n);
    let objective: f64 = x.iter().zip(c).map(|(xj, cj)| xj * cj).sum();
    let duals = tab.duals(m);
    Ok(StandardSolution {
        x,
        objective,
        duals,
        stats: SimplexStats {
            phase1_iters: stats1,
            phase2_iters: stats2,
            artificials: tab.num_artificial,
            dropped_rows: 0,
        },
    })
}

struct BoundedTableau {
    /// `m × (total + 1)`; the last column is the rhs in *current*
    /// (possibly flipped) coordinates.
    t: Matrix,
    basis: Vec<usize>,
    /// Upper bound per column, in its own (unflipped) units; artificials
    /// get ∞.
    upper: Vec<f64>,
    /// Whether column `j` currently uses flipped coordinates
    /// (`x_j = u_j − x̃_j`).
    flipped: Vec<bool>,
    /// Phase-2 costs in current coordinates (negated for flipped cols).
    cost: Vec<f64>,
    marker: Vec<usize>,
    art_start: usize,
    num_artificial: usize,
    opts: SimplexOptions,
}

impl BoundedTableau {
    fn build(
        a: &[Vec<f64>],
        b: &[f64],
        c: &[f64],
        upper: &[f64],
        num_structural: usize,
        opts: &SimplexOptions,
    ) -> Result<Self, LpError> {
        let m = a.len();
        let n = a[0].len();
        // Slack-region unit columns with infinite bound can serve as the
        // initial basis (in our standard form slacks are unbounded).
        let mut basis = vec![usize::MAX; m];
        'col: for j in num_structural..n {
            if upper[j].is_finite() {
                continue;
            }
            let mut unit_row = usize::MAX;
            for (i, row) in a.iter().enumerate() {
                let v = row[j];
                if v == 0.0 {
                    continue;
                }
                if (v - 1.0).abs() <= f64::EPSILON && unit_row == usize::MAX {
                    unit_row = i;
                } else {
                    continue 'col;
                }
            }
            if unit_row != usize::MAX && basis[unit_row] == usize::MAX {
                basis[unit_row] = j;
            }
        }
        let rows_needing_art: Vec<usize> =
            (0..m).filter(|&i| basis[i] == usize::MAX).collect();
        let num_artificial = rows_needing_art.len();
        let total = n + num_artificial;
        let mut t = Matrix::zeros(m, total + 1);
        for i in 0..m {
            let row = t.row_mut(i);
            row[..n].copy_from_slice(&a[i]);
            row[total] = b[i];
        }
        let mut marker = basis.clone();
        for (k, &i) in rows_needing_art.iter().enumerate() {
            t[(i, n + k)] = 1.0;
            basis[i] = n + k;
            marker[i] = n + k;
        }
        let mut cost = vec![0.0; total];
        cost[..n].copy_from_slice(c);
        let mut full_upper = vec![f64::INFINITY; total];
        full_upper[..n].copy_from_slice(upper);
        Ok(BoundedTableau {
            t,
            basis,
            upper: full_upper,
            flipped: vec![false; total],
            cost,
            marker,
            art_start: n,
            num_artificial,
            opts: opts.clone(),
        })
    }

    fn m(&self) -> usize {
        self.t.rows()
    }

    fn total_cols(&self) -> usize {
        self.t.cols() - 1
    }

    fn rhs(&self, i: usize) -> f64 {
        self.t[(i, self.t.cols() - 1)]
    }

    /// Reduced costs in current coordinates for the given (current-
    /// coordinate) cost vector.
    fn reduced_costs(&self, cost: &[f64]) -> Vec<f64> {
        let total = self.total_cols();
        let mut z = cost.to_vec();
        for i in 0..self.m() {
            let cb = cost[self.basis[i]];
            if cb == 0.0 {
                continue;
            }
            let row = self.t.row(i);
            for j in 0..total {
                z[j] -= cb * row[j];
            }
        }
        z
    }

    /// Substitute a **nonbasic** column: `x = u − x̃`. Adjusts the rhs for
    /// the full traversal, negates the column, toggles the flag and cost.
    fn flip_nonbasic(&mut self, j: usize) {
        let u = self.upper[j];
        debug_assert!(u.is_finite(), "cannot flip an unbounded column");
        let cols = self.t.cols();
        for i in 0..self.m() {
            let a = self.t[(i, j)];
            if a != 0.0 {
                self.t[(i, cols - 1)] -= a * u;
                self.t[(i, j)] = -a;
            }
        }
        self.flipped[j] = !self.flipped[j];
        self.cost[j] = -self.cost[j];
    }

    /// Substitute the **basic** variable of `row` (about to leave at its
    /// upper bound): negate the row's nonbasic entries, set
    /// `rhs ← u − rhs`, toggle flag and cost.
    fn flip_basic_row(&mut self, row: usize) {
        let bj = self.basis[row];
        let u = self.upper[bj];
        debug_assert!(u.is_finite());
        let cols = self.t.cols();
        for jj in 0..cols - 1 {
            if jj != bj {
                self.t[(row, jj)] = -self.t[(row, jj)];
            }
        }
        let old = self.t[(row, cols - 1)];
        self.t[(row, cols - 1)] = u - old;
        self.flipped[bj] = !self.flipped[bj];
        self.cost[bj] = -self.cost[bj];
    }

    /// One optimization loop over the given current-coordinate costs.
    fn optimize(
        &mut self,
        cost: &[f64],
        allow: impl Fn(usize) -> bool,
    ) -> Result<usize, LpError> {
        let tol = self.opts.tol;
        let mut iters = 0usize;
        // Phase-1 passes a cost slice that does NOT track flips (it is
        // artificial-only and artificials never flip), so it can be used
        // directly; phase 2 passes self.cost which flips in lockstep.
        let mut cost = cost.to_vec();
        loop {
            if iters >= self.opts.max_iters {
                return Err(LpError::IterationLimit { limit: self.opts.max_iters });
            }
            let z = self.reduced_costs(&cost);
            let use_bland =
                self.opts.pivot_rule == PivotRule::Bland || iters >= self.opts.bland_after;
            let mut basic = vec![false; self.total_cols()];
            for &j in &self.basis {
                basic[j] = true;
            }
            let mut enter = usize::MAX;
            let mut best = -tol;
            for (j, &zj) in z.iter().enumerate() {
                if basic[j] || !allow(j) {
                    continue;
                }
                if zj < best {
                    enter = j;
                    best = zj;
                    if use_bland {
                        break;
                    }
                }
            }
            if enter == usize::MAX {
                return Ok(iters);
            }

            // Ratio test: entering increases from 0 by t.
            let mut limit = self.upper[enter];
            let mut leave = usize::MAX;
            let mut leave_at_upper = false;
            for i in 0..self.m() {
                let alpha = self.t[(i, enter)];
                let bi = self.basis[i];
                if alpha > tol {
                    let ratio = self.rhs(i) / alpha;
                    if ratio < limit - tol
                        || (ratio < limit + tol
                            && leave != usize::MAX
                            && bi < self.basis[leave])
                    {
                        limit = ratio.max(0.0);
                        leave = i;
                        leave_at_upper = false;
                    }
                } else if alpha < -tol && self.upper[bi].is_finite() {
                    let headroom = (self.upper[bi] - self.rhs(i)).max(0.0);
                    let ratio = headroom / (-alpha);
                    if ratio < limit - tol
                        || (ratio < limit + tol
                            && leave != usize::MAX
                            && bi < self.basis[leave])
                    {
                        limit = ratio.max(0.0);
                        leave = i;
                        leave_at_upper = true;
                    }
                }
            }
            if limit.is_infinite() {
                return Err(LpError::Unbounded { column: enter });
            }

            if leave == usize::MAX {
                // Case 1: bound flip, no pivot. The working cost vector
                // flips in lockstep with self.cost (which flip_nonbasic
                // toggles for phase 2's benefit).
                self.flip_nonbasic(enter);
                cost[enter] = -cost[enter];
            } else {
                if leave_at_upper {
                    // Case 3: substitute the leaving basic first.
                    let bj = self.basis[leave];
                    self.flip_basic_row(leave);
                    cost[bj] = -cost[bj];
                }
                // Case 2/3: ordinary pivot (Gauss-Jordan handles the
                // entering movement).
                self.pivot(leave, enter);
            }
            iters += 1;
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let cols = self.t.cols();
        let piv = self.t[(row, col)];
        debug_assert!(piv.abs() > 0.0, "zero pivot");
        {
            let r = self.t.row_mut(row);
            let inv = 1.0 / piv;
            for v in r.iter_mut() {
                *v *= inv;
            }
            r[col] = 1.0;
        }
        for i in 0..self.m() {
            if i == row {
                continue;
            }
            let factor = self.t[(i, col)];
            if factor == 0.0 {
                continue;
            }
            let (src, dst) = self.t.row_pair_mut(row, i);
            for j in 0..cols {
                dst[j] -= factor * src[j];
            }
            dst[col] = 0.0;
        }
        self.basis[row] = col;
    }

    fn phase1(&mut self) -> Result<usize, LpError> {
        if self.num_artificial == 0 {
            return Ok(0);
        }
        let total = self.total_cols();
        let mut art_cost = vec![0.0; total];
        for j in self.art_start..total {
            art_cost[j] = 1.0;
        }
        let iters = self.optimize(&art_cost, |_| true)?;
        let residual: f64 = (0..self.m())
            .filter(|&i| self.basis[i] >= self.art_start)
            .map(|i| self.rhs(i).abs())
            .sum();
        if residual > self.opts.tol.max(1e-7) {
            return Err(LpError::Infeasible { residual });
        }
        // Pin every artificial to zero for phase 2. Nonbasic artificials
        // are barred from entering by `allow`, but an artificial still
        // *basic* at level 0 could otherwise re-absorb infeasibility (its
        // ∞ bound lets the ratio test wave moves through its row). With
        // an upper bound of 0, the headroom test blocks any such move and
        // degenerate pivots push the artificial out instead.
        for j in self.art_start..self.total_cols() {
            self.upper[j] = 0.0;
        }
        Ok(iters)
    }

    fn phase2(&mut self) -> Result<usize, LpError> {
        let art_start = self.art_start;
        let cost = self.cost.clone();
        // optimize() mutates its local copy in lockstep with self.cost on
        // flips; resync self.cost from extraction-relevant state is not
        // needed because flips inside optimize() already toggled
        // self.cost via flip_nonbasic / flip_basic_row.
        self.optimize(&cost, |j| j < art_start)
    }

    fn extract(&self, n: usize) -> Vec<f64> {
        let mut current = vec![0.0; self.total_cols()];
        for i in 0..self.m() {
            current[self.basis[i]] = self.rhs(i).max(0.0);
        }
        (0..n)
            .map(|j| {
                if self.flipped[j] {
                    (self.upper[j] - current[j]).max(0.0)
                } else {
                    current[j]
                }
            })
            .collect()
    }

    fn duals(&self, num_input_rows: usize) -> Vec<f64> {
        let z = self.reduced_costs(&self.cost);
        let mut y = vec![0.0; num_input_rows];
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = -z[self.marker[r]];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(
        a: &[Vec<f64>],
        b: &[f64],
        c: &[f64],
        upper: &[f64],
        ns: usize,
    ) -> Result<StandardSolution, LpError> {
        solve_bounded(a, b, c, upper, ns, &SimplexOptions::default())
    }

    const INF: f64 = f64::INFINITY;

    #[test]
    fn unbounded_vars_match_row_solver() {
        // min -x1 - 2x2, x1 + x2 + s1 = 4, x2 + s2 = 3 (no upper bounds).
        let a = vec![vec![1.0, 1.0, 1.0, 0.0], vec![0.0, 1.0, 0.0, 1.0]];
        let b = vec![4.0, 3.0];
        let c = vec![-1.0, -2.0, 0.0, 0.0];
        let s = solve(&a, &b, &c, &[INF; 4], 2).unwrap();
        assert!((s.objective + 7.0).abs() < 1e-9);
        assert!((s.x[0] - 1.0).abs() < 1e-9);
        assert!((s.x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bound_binds_via_bound_flip() {
        // min -x1, x1 + s = 10, x1 <= 4: optimum x1 = 4 via bound flip.
        let a = vec![vec![1.0, 1.0]];
        let b = vec![10.0];
        let c = vec![-1.0, 0.0];
        let s = solve(&a, &b, &c, &[4.0, INF], 1).unwrap();
        assert!((s.objective + 4.0).abs() < 1e-9, "objective {}", s.objective);
        assert!((s.x[0] - 4.0).abs() < 1e-9);
        assert!((s.x[1] - 6.0).abs() < 1e-9, "slack absorbs the rest");
    }

    #[test]
    fn multiple_bounded_vars() {
        // min -(x1 + x2 + x3) s.t. x1 + x2 + x3 + s = 10, x_i <= 3.
        let a = vec![vec![1.0, 1.0, 1.0, 1.0]];
        let b = vec![10.0];
        let c = vec![-1.0, -1.0, -1.0, 0.0];
        let s = solve(&a, &b, &c, &[3.0, 3.0, 3.0, INF], 3).unwrap();
        assert!((s.objective + 9.0).abs() < 1e-9, "all three at bound");
        for j in 0..3 {
            assert!((s.x[j] - 3.0).abs() < 1e-9, "x[{j}] = {}", s.x[j]);
        }
    }

    #[test]
    fn basic_variable_leaves_at_upper() {
        // min -x2 s.t. x1 + x2 + s = 8, x1 <= 5, x2 <= 6.
        // Increase x2: at x2 = 6 it flips; but force a leave-at-upper by
        // making x1 basic first: min -x1 - 0.1 x2 drives x1 to 5 basic,
        // then x2's entry pushes x1... construct directly:
        // min -x1 - 2x2, x1 + x2 + s = 8, x1 <= 5, x2 <= 6:
        // optimum x2 = 6, x1 = 2 -> obj = -14.
        let a = vec![vec![1.0, 1.0, 1.0]];
        let b = vec![8.0];
        let c = vec![-1.0, -2.0, 0.0];
        let s = solve(&a, &b, &c, &[5.0, 6.0, INF], 2).unwrap();
        assert!((s.objective + 14.0).abs() < 1e-9, "objective {}", s.objective);
        assert!((s.x[0] - 2.0).abs() < 1e-9, "x1 {}", s.x[0]);
        assert!((s.x[1] - 6.0).abs() < 1e-9, "x2 {}", s.x[1]);
    }

    #[test]
    fn equality_with_bounds_needs_artificials() {
        // min x1 + 2 x2 s.t. x1 + x2 = 5, x1 <= 2 -> x1 = 2, x2 = 3 -> 8.
        let a = vec![vec![1.0, 1.0]];
        let b = vec![5.0];
        let c = vec![1.0, 2.0];
        let s = solve(&a, &b, &c, &[2.0, INF], 2).unwrap();
        assert!((s.objective - 8.0).abs() < 1e-9, "objective {}", s.objective);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 3.0).abs() < 1e-9);
        assert!(s.stats.artificials >= 1);
    }

    #[test]
    fn infeasible_bounds_detected() {
        // x1 + x2 = 10 with both <= 3.
        let a = vec![vec![1.0, 1.0]];
        let b = vec![10.0];
        let c = vec![0.0, 0.0];
        assert!(matches!(
            solve(&a, &b, &c, &[3.0, 3.0], 2),
            Err(LpError::Infeasible { .. })
        ));
    }

    #[test]
    fn unbounded_detected() {
        // min -x1 with x1 - x2 + s = 1, all unbounded above.
        let a = vec![vec![1.0, -1.0, 1.0]];
        let b = vec![1.0];
        let c = vec![-1.0, 0.0, 0.0];
        assert!(matches!(
            solve(&a, &b, &c, &[INF; 3], 2),
            Err(LpError::Unbounded { .. })
        ));
    }

    #[test]
    fn bounded_makes_it_bounded() {
        // Same as above but x1 <= 7: optimum -7 (x2 grows to compensate).
        let a = vec![vec![1.0, -1.0, 1.0]];
        let b = vec![1.0];
        let c = vec![-1.0, 0.0, 0.0];
        let s = solve(&a, &b, &c, &[7.0, INF, INF], 2).unwrap();
        assert!((s.objective + 7.0).abs() < 1e-9, "objective {}", s.objective);
        assert!((s.x[0] - 7.0).abs() < 1e-9);
        assert!((s.x[1] - 6.0).abs() < 1e-9, "x2 balances: {}", s.x[1]);
    }

    #[test]
    fn no_constraints_box_minimum() {
        let s = solve(&[], &[], &[1.0, -2.0], &[INF, 5.0], 2).unwrap();
        assert_eq!(s.x, vec![0.0, 5.0]);
        assert!((s.objective + 10.0).abs() < 1e-12);
        assert!(matches!(
            solve(&[], &[], &[-1.0], &[INF], 1),
            Err(LpError::Unbounded { column: 0 })
        ));
    }

    #[test]
    fn negative_upper_bound_rejected() {
        let a = vec![vec![1.0]];
        assert!(matches!(
            solve(&a, &[1.0], &[0.0], &[-1.0], 1),
            Err(LpError::InvalidModel(_))
        ));
    }

    #[test]
    fn duals_match_row_solver_on_textbook_lp() {
        // max 3x + 5y (as min of negation) with slacks; same as the
        // textbook dual test in the row solver.
        let a = vec![
            vec![1.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0, 1.0, 0.0],
            vec![3.0, 2.0, 0.0, 0.0, 1.0],
        ];
        let b = vec![4.0, 12.0, 18.0];
        let c = vec![-3.0, -5.0, 0.0, 0.0, 0.0];
        let s = solve(&a, &b, &c, &[INF; 5], 2).unwrap();
        assert!((s.objective + 36.0).abs() < 1e-9);
        assert!(s.duals[0].abs() < 1e-9);
        assert!((s.duals[1] + 1.5).abs() < 1e-9);
        assert!((s.duals[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_shaped_lp() {
        // The scheduler's reduced form: draws d_i in [0, bound_i],
        // sum d = x, drop constraints via slacks.
        // min theta s.t. d1 + d2 + d3 = 6; d_i - theta <= 0 (as = with
        // slack); bounds d1 <= 5, d2 <= 3, d3 <= 4.
        // Optimum: theta = 2, draws (2, 2, 2).
        let a = vec![
            vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, -1.0, 1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, -1.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0, -1.0, 0.0, 0.0, 1.0],
        ];
        let b = vec![6.0, 0.0, 0.0, 0.0];
        let c = vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        let upper = [5.0, 3.0, 4.0, INF, INF, INF, INF];
        let s = solve(&a, &b, &c, &upper, 4).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-9, "theta {}", s.objective);
        let sum: f64 = s.x[..3].iter().sum();
        assert!((sum - 6.0).abs() < 1e-9);
        for j in 0..3 {
            assert!(s.x[j] <= 2.0 + 1e-9, "draw {} = {}", j, s.x[j]);
        }
    }
}
