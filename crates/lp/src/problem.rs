//! LP model building and conversion to solver standard form.
//!
//! A [`Problem`] is a set of bounded variables, a linear objective, and
//! linear constraints. Solving converts the model to the simplex standard
//! form (`min c·x, A x = b, x ≥ 0, b ≥ 0`) via bound shifting and variable
//! splitting, runs the two-phase simplex, and maps the solution back to the
//! original variable space.

use crate::error::LpError;
use crate::simplex::{self, SimplexOptions, SimplexStats};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Left-hand side ≤ right-hand side.
    Le,
    /// Left-hand side ≥ right-hand side.
    Ge,
    /// Left-hand side = right-hand side.
    Eq,
}

/// Opaque handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// Opaque handle to a model constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) usize);

#[derive(Debug, Clone)]
struct VarDef {
    name: String,
    lb: f64,
    ub: f64,
    obj: f64,
}

#[derive(Debug, Clone)]
struct Constraint {
    terms: Vec<(usize, f64)>,
    rel: Relation,
    rhs: f64,
}

/// A linear program under construction.
#[derive(Debug, Clone)]
pub struct Problem {
    sense: Sense,
    vars: Vec<VarDef>,
    constraints: Vec<Constraint>,
}

/// The result of a successful solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal objective value in the original sense (i.e. already negated
    /// back for maximization problems).
    pub objective: f64,
    /// Optimal value of each variable, indexed by [`VarId`] order.
    pub values: Vec<f64>,
    /// Dual value (shadow price) of each constraint, indexed by
    /// [`ConstraintId`] order, in the problem's original sense: the rate
    /// of change of the optimal objective per unit of right-hand side.
    pub duals: Vec<f64>,
    /// Solver iteration statistics.
    pub stats: SimplexStats,
}

impl Solution {
    /// Value of a variable in the optimal solution.
    #[inline]
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Shadow price of a constraint: how much the optimal objective would
    /// improve per unit increase of its right-hand side (0 for
    /// non-binding constraints).
    #[inline]
    pub fn dual(&self, c: ConstraintId) -> f64 {
        self.duals[c.0]
    }
}

impl Problem {
    /// Create an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Problem { sense, vars: Vec::new(), constraints: Vec::new() }
    }

    /// Add a variable with bounds `[lb, ub]` and objective coefficient
    /// `obj`. Use `f64::INFINITY` / `f64::NEG_INFINITY` for unbounded
    /// sides.
    pub fn add_var(&mut self, name: &str, lb: f64, ub: f64, obj: f64) -> VarId {
        self.vars.push(VarDef { name: name.to_string(), lb, ub, obj });
        VarId(self.vars.len() - 1)
    }

    /// Add a linear constraint `Σ coeff·var  rel  rhs`. Duplicate variable
    /// terms are summed.
    pub fn add_constraint(
        &mut self,
        terms: &[(VarId, f64)],
        rel: Relation,
        rhs: f64,
    ) -> ConstraintId {
        let mut coeffs = vec![0.0; self.vars.len()];
        for &(v, c) in terms {
            coeffs[v.0] += c;
        }
        let packed: Vec<(usize, f64)> =
            coeffs.into_iter().enumerate().filter(|&(_, c)| c != 0.0).collect();
        self.constraints.push(Constraint { terms: packed, rel, rhs });
        ConstraintId(self.constraints.len() - 1)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable (for diagnostics).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// Solve with default simplex options.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solve with explicit simplex options.
    pub fn solve_with(&self, opts: &SimplexOptions) -> Result<Solution, LpError> {
        self.validate()?;
        let native = opts.bound_mode == crate::simplex::BoundMode::Native;
        let std = self.standardize(native);
        let out = if native {
            crate::bounded::solve_bounded(
                &std.a,
                &std.b,
                &std.c,
                &std.upper,
                std.num_structural,
                opts,
            )?
        } else {
            simplex::solve_standard(&std.a, &std.b, &std.c, std.num_structural, opts)?
        };
        let mut values = vec![0.0; self.vars.len()];
        for (i, var) in self.vars.iter().enumerate() {
            let v = match std.mapping[i] {
                VarMap::Shifted { col, lb } => lb + out.x[col],
                VarMap::Negated { col, ub } => ub - out.x[col],
                VarMap::Split { pos, neg } => out.x[pos] - out.x[neg],
                VarMap::Fixed { value } => value,
            };
            values[i] = v;
            let _ = var;
        }
        let mut objective = out.objective + std.obj_offset;
        if self.sense == Sense::Maximize {
            objective = -objective;
        }
        // Constraint duals: the first `num_constraints` standard-form rows
        // are the user constraints in order. Undo the row flip applied for
        // negative right-hand sides, and the objective negation applied
        // for maximization.
        let sense_sign = if self.sense == Sense::Maximize { -1.0 } else { 1.0 };
        let duals: Vec<f64> = (0..self.constraints.len())
            .map(|ci| sense_sign * std.row_flips[ci] * out.duals[ci])
            .collect();
        Ok(Solution { objective, values, duals, stats: out.stats })
    }

    fn validate(&self) -> Result<(), LpError> {
        for v in &self.vars {
            if v.lb.is_nan() || v.ub.is_nan() || v.obj.is_nan() {
                return Err(LpError::InvalidModel(format!("NaN in variable {}", v.name)));
            }
            if v.lb > v.ub {
                return Err(LpError::InvalidModel(format!(
                    "variable {} has lb {} > ub {}",
                    v.name, v.lb, v.ub
                )));
            }
            if v.lb == f64::INFINITY || v.ub == f64::NEG_INFINITY {
                return Err(LpError::InvalidModel(format!(
                    "variable {} has an empty bound interval",
                    v.name
                )));
            }
        }
        for (ci, c) in self.constraints.iter().enumerate() {
            if c.rhs.is_nan() || c.terms.iter().any(|&(_, x)| x.is_nan()) {
                return Err(LpError::InvalidModel(format!("NaN in constraint {ci}")));
            }
        }
        Ok(())
    }

    /// Convert to standard form `min c·x, A x = b, x ≥ 0, b ≥ 0`.
    /// With `native_bounds`, finite upper bounds are reported in the
    /// `upper` vector for the bounded-variable solver instead of being
    /// materialized as rows.
    fn standardize(&self, native_bounds: bool) -> StandardForm {
        let mut mapping = Vec::with_capacity(self.vars.len());
        let mut num_cols = 0usize;
        // Extra rows for finite upper bounds introduced by shifting.
        let mut bound_rows: Vec<(usize, f64)> = Vec::new(); // (col, ub - lb)
        let mut obj_offset = 0.0;
        let sign = if self.sense == Sense::Maximize { -1.0 } else { 1.0 };

        for v in &self.vars {
            let (lb, ub) = (v.lb, v.ub);
            if lb == ub {
                mapping.push(VarMap::Fixed { value: lb });
                obj_offset += sign * v.obj * lb;
            } else if lb.is_finite() {
                let col = num_cols;
                num_cols += 1;
                if ub.is_finite() {
                    bound_rows.push((col, ub - lb));
                }
                obj_offset += sign * v.obj * lb;
                mapping.push(VarMap::Shifted { col, lb });
                let _ = native_bounds;
            } else if ub.is_finite() {
                // lb = -inf, ub finite: x = ub - x̂.
                let col = num_cols;
                num_cols += 1;
                obj_offset += sign * v.obj * ub;
                mapping.push(VarMap::Negated { col, ub });
            } else {
                let pos = num_cols;
                let neg = num_cols + 1;
                num_cols += 2;
                mapping.push(VarMap::Split { pos, neg });
            }
        }
        let num_structural = num_cols;

        // Build rows: structural coefficients and adjusted rhs per
        // constraint, plus the upper-bound rows.
        struct Row {
            coeffs: Vec<(usize, f64)>,
            rel: Relation,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(self.constraints.len() + bound_rows.len());
        for c in &self.constraints {
            let mut rhs = c.rhs;
            let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len() + 1);
            for &(vi, coef) in &c.terms {
                match mapping[vi] {
                    VarMap::Shifted { col, lb } => {
                        rhs -= coef * lb;
                        coeffs.push((col, coef));
                    }
                    VarMap::Negated { col, ub } => {
                        rhs -= coef * ub;
                        coeffs.push((col, -coef));
                    }
                    VarMap::Split { pos, neg } => {
                        coeffs.push((pos, coef));
                        coeffs.push((neg, -coef));
                    }
                    VarMap::Fixed { value } => {
                        rhs -= coef * value;
                    }
                }
            }
            rows.push(Row { coeffs, rel: c.rel, rhs });
        }
        if !native_bounds {
            for &(col, cap) in &bound_rows {
                rows.push(Row { coeffs: vec![(col, 1.0)], rel: Relation::Le, rhs: cap });
            }
        }

        // Count slack/surplus columns.
        let mut num_slack = 0usize;
        for r in &rows {
            if r.rel != Relation::Eq {
                num_slack += 1;
            }
        }
        let total_cols = num_structural + num_slack;
        let m = rows.len();
        let mut a = vec![vec![0.0; total_cols]; m];
        let mut b = vec![0.0; m];
        let mut row_flips = vec![1.0; m];
        let mut slack_idx = num_structural;
        for (i, r) in rows.iter().enumerate() {
            // Normalize to rhs ≥ 0 by flipping the row if needed.
            let flip = r.rhs < 0.0;
            let s = if flip { -1.0 } else { 1.0 };
            row_flips[i] = s;
            for &(col, coef) in &r.coeffs {
                a[i][col] += s * coef;
            }
            b[i] = s * r.rhs;
            let rel = if flip {
                match r.rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                }
            } else {
                r.rel
            };
            match rel {
                Relation::Le => {
                    a[i][slack_idx] = 1.0;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    a[i][slack_idx] = -1.0;
                    slack_idx += 1;
                }
                Relation::Eq => {}
            }
        }

        // Objective over structural columns (min sense).
        let mut c = vec![0.0; total_cols];
        for (vi, v) in self.vars.iter().enumerate() {
            let coef = sign * v.obj;
            match mapping[vi] {
                VarMap::Shifted { col, .. } => c[col] += coef,
                VarMap::Negated { col, .. } => c[col] -= coef,
                VarMap::Split { pos, neg } => {
                    c[pos] += coef;
                    c[neg] -= coef;
                }
                VarMap::Fixed { .. } => {}
            }
        }

        let mut upper = vec![f64::INFINITY; total_cols];
        if native_bounds {
            for &(col, cap) in &bound_rows {
                upper[col] = cap;
            }
        }
        StandardForm { a, b, c, upper, num_structural, mapping, obj_offset, row_flips }
    }
}

#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lb + x̂[col]`
    Shifted { col: usize, lb: f64 },
    /// `x = ub − x̂[col]`
    Negated { col: usize, ub: f64 },
    /// `x = x̂[pos] − x̂[neg]`
    Split { pos: usize, neg: usize },
    /// `lb == ub`: substituted out entirely.
    Fixed { value: f64 },
}

struct StandardForm {
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    c: Vec<f64>,
    /// Per-column upper bounds (∞ unless native bound mode).
    upper: Vec<f64>,
    num_structural: usize,
    mapping: Vec<VarMap>,
    obj_offset: f64,
    /// +1/-1 per constraint row: whether standardization flipped it.
    row_flips: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-8;

    #[test]
    fn maximize_classic_two_var() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 36.0).abs() < EPS);
        assert!((s.value(x) - 2.0).abs() < EPS);
        assert!((s.value(y) - 6.0).abs() < EPS);
    }

    #[test]
    fn minimize_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1, y >= 0 -> x=4,y=0 -> 8
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 1.0, f64::INFINITY, 2.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 8.0).abs() < EPS, "objective {}", s.objective);
        assert!((s.value(x) - 4.0).abs() < EPS);
        assert!(s.value(y).abs() < EPS);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x=2, y=1 -> 3
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 3.0).abs() < EPS);
        assert!((s.value(x) - 2.0).abs() < EPS);
        assert!((s.value(y) - 1.0).abs() < EPS);
    }

    #[test]
    fn free_variable_split() {
        // min |style| objective: min x s.t. x >= -5 with x free -> -5 via
        // constraint only (no variable bound).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, -5.0);
        let s = p.solve().unwrap();
        assert!((s.objective + 5.0).abs() < EPS);
        assert!((s.value(x) + 5.0).abs() < EPS);
    }

    #[test]
    fn negated_variable_upper_bound_only() {
        // max x with x <= 7, lb = -inf -> 7.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", f64::NEG_INFINITY, 7.0, 1.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 7.0).abs() < EPS);
        assert!((s.value(x) - 7.0).abs() < EPS);
    }

    #[test]
    fn fixed_variable_is_substituted() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 3.0, 3.0, 2.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 5.0);
        let s = p.solve().unwrap();
        assert!((s.value(x) - 3.0).abs() < EPS);
        assert!((s.value(y) - 2.0).abs() < EPS);
        assert!((s.objective - 8.0).abs() < EPS);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        match p.solve() {
            Err(LpError::Infeasible { residual }) => assert!(residual > 0.5),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_constraint(&[(x, -1.0)], Relation::Le, 1.0);
        match p.solve() {
            Err(LpError::Unbounded { .. }) => {}
            other => panic!("expected unbounded, got {other:?}"),
        }
    }

    #[test]
    fn invalid_bounds_rejected() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("x", 2.0, 1.0, 0.0);
        assert!(matches!(p.solve(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn nan_rejected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, f64::NAN);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        assert!(matches!(p.solve(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn negative_rhs_row_is_flipped() {
        // min x s.t. -x <= -3 (i.e. x >= 3).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_constraint(&[(x, -1.0)], Relation::Le, -3.0);
        let s = p.solve().unwrap();
        assert!((s.value(x) - 3.0).abs() < EPS);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        // 0.5x + 0.5x <= 2 -> x <= 2
        p.add_constraint(&[(x, 0.5), (x, 0.5)], Relation::Le, 2.0);
        let s = p.solve().unwrap();
        assert!((s.value(x) - 2.0).abs() < EPS);
    }

    #[test]
    fn bounded_box_maximization() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", -1.0, 2.0, 1.0);
        let y = p.add_var("y", -1.0, 2.0, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 3.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 3.0).abs() < EPS);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classic degenerate corner: multiple constraints active at the
        // optimum. The solver must terminate (Bland fallback).
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 0.75);
        let y = p.add_var("y", 0.0, f64::INFINITY, -150.0);
        let z = p.add_var("z", 0.0, f64::INFINITY, 0.02);
        let w = p.add_var("w", 0.0, f64::INFINITY, -6.0);
        // Beale's cycling example.
        p.add_constraint(&[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)], Relation::Le, 0.0);
        p.add_constraint(&[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)], Relation::Le, 0.0);
        p.add_constraint(&[(z, 1.0)], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 0.05).abs() < 1e-6, "objective {}", s.objective);
    }

    #[test]
    fn var_names_retained() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("capacity_3", 0.0, 1.0, 1.0);
        assert_eq!(p.var_name(x), "capacity_3");
        assert_eq!(p.num_vars(), 1);
        assert_eq!(p.num_constraints(), 0);
    }

    #[test]
    fn duals_satisfy_strong_duality() {
        // max 3x + 5y, x <= 4, 2y <= 12, 3x + 2y <= 18: optimum 36 with
        // duals (0, 1.5, 1) — the textbook example.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
        let c1 = p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        let c2 = p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        let c3 = p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = p.solve().unwrap();
        assert!(s.dual(c1).abs() < EPS, "x <= 4 is slack: {}", s.dual(c1));
        assert!((s.dual(c2) - 1.5).abs() < EPS, "dual {}", s.dual(c2));
        assert!((s.dual(c3) - 1.0).abs() < EPS, "dual {}", s.dual(c3));
        // Strong duality: y·b == objective.
        let yb = s.dual(c1) * 4.0 + s.dual(c2) * 12.0 + s.dual(c3) * 18.0;
        assert!((yb - s.objective).abs() < EPS);
    }

    #[test]
    fn duals_for_minimization_ge() {
        // min 2x + 3y, x + y >= 10: binding with dual 2 (cheaper variable
        // sets the marginal price).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 3.0);
        let c = p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 20.0).abs() < EPS);
        assert!((s.dual(c) - 2.0).abs() < EPS, "dual {}", s.dual(c));
    }

    #[test]
    fn duals_survive_row_flip() {
        // min x subject to -x <= -3 (flipped internally to x >= 3): the
        // dual wrt the ORIGINAL rhs -3 is -1 (raising -3 toward 0 lowers
        // the forced x and the objective 1:1).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let c = p.add_constraint(&[(x, -1.0)], Relation::Le, -3.0);
        let s = p.solve().unwrap();
        assert!((s.dual(c) + 1.0).abs() < EPS, "dual {}", s.dual(c));
    }

    #[test]
    fn equality_constraint_duals() {
        // min x + 2y s.t. x + y = 5, y >= 0, x >= 0 -> x = 5, dual 1.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        let c = p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        let s = p.solve().unwrap();
        assert!((s.dual(c) - 1.0).abs() < EPS, "dual {}", s.dual(c));
    }

    #[test]
    fn objective_offset_from_shifted_bounds() {
        // min x with 5 <= x <= 10 -> 5 (offset handling).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 5.0, 10.0, 1.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 5.0).abs() < EPS);
        assert!((s.value(x) - 5.0).abs() < EPS);
    }
}
