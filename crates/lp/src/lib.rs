//! A self-contained linear-programming solver.
//!
//! The SC 2000 paper "Expressing and Enforcing Distributed Resource Sharing
//! Agreements" enforces sharing agreements by solving a small linear program
//! per allocation decision (its §3.1 formulation has `n² + n + 1` variables
//! for `n` principals). This crate provides the LP substrate for that
//! scheduler: a dense, two-phase primal simplex method with a convenient
//! model-building API.
//!
//! The solver is deliberately dense and tableau-based: agreement LPs are
//! small (tens to a few hundred variables), and a dense tableau with
//! Dantzig pricing plus a Bland's-rule anti-cycling fallback is both simple
//! to verify and fast at this scale.
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x + 3y ≤ 6`, `x, y ≥ 0`:
//!
//! ```
//! use agreements_lp::{Problem, Sense, Relation};
//!
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
//! let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
//! p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - 12.0).abs() < 1e-9);
//! assert!((sol.value(x) - 4.0).abs() < 1e-9);
//! ```

// Index-based loops are idiomatic for the dense matrix math in this
// crate; clippy's iterator rewrites would obscure the row/column algebra.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod bounded;
pub mod error;
pub mod matrix;
pub mod problem;
pub mod simplex;

pub use bounded::{solve_bounded, solve_bounded_with, SimplexWorkspace};
pub use error::LpError;
pub use matrix::{Matrix, Vector};
pub use problem::{ConstraintId, Problem, Relation, Sense, Solution, VarId};
pub use simplex::{PivotRule, SimplexOptions, SimplexStats};
