//! Two-phase primal simplex on a dense tableau.
//!
//! Solves `min c·x` subject to `A x = b`, `x ≥ 0`, with `b ≥ 0` (the
//! conversion in [`crate::problem`] guarantees non-negative right-hand
//! sides). Phase 1 introduces artificial variables for rows without an
//! obvious basic column and minimizes their sum; phase 2 optimizes the true
//! objective with artificials barred from re-entering.
//!
//! Pricing uses Dantzig's rule (most negative reduced cost) by default and
//! falls back to Bland's rule after a configurable number of iterations to
//! guarantee termination on degenerate problems; the ratio test always
//! breaks ties by smallest basis index, which suffices for finite
//! termination once Bland pricing is active.

use crate::error::LpError;
use crate::matrix::Matrix;

/// Entering-variable pricing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotRule {
    /// Most negative reduced cost; fast in practice, can cycle on
    /// degenerate problems (mitigated by the Bland fallback).
    Dantzig,
    /// Smallest-index rule; slower but provably terminating.
    Bland,
}

/// How [`crate::Problem`] encodes finite variable upper bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundMode {
    /// Bounded-variable simplex ([`crate::bounded`]): bounds handled in
    /// the ratio test, no extra rows. The default.
    #[default]
    Native,
    /// Materialize each finite bound as an `x ≤ u` row (one row + one
    /// slack per bounded variable). Kept for cross-checking and the
    /// `ablation_bound_mode` bench.
    Rows,
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Initial pricing rule.
    pub pivot_rule: PivotRule,
    /// Absolute tolerance for optimality and pivot eligibility tests.
    pub tol: f64,
    /// Hard cap on total pivots across both phases.
    pub max_iters: usize,
    /// Switch from Dantzig to Bland pricing after this many pivots within a
    /// phase (anti-cycling safeguard).
    pub bland_after: usize,
    /// Upper-bound encoding used by [`crate::Problem::solve_with`].
    pub bound_mode: BoundMode,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            pivot_rule: PivotRule::Dantzig,
            tol: 1e-9,
            max_iters: 100_000,
            bland_after: 5_000,
            bound_mode: BoundMode::default(),
        }
    }
}

/// Iteration statistics from a solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplexStats {
    /// Pivots performed in phase 1.
    pub phase1_iters: usize,
    /// Pivots performed in phase 2.
    pub phase2_iters: usize,
    /// Number of artificial variables introduced.
    pub artificials: usize,
    /// Redundant rows dropped after phase 1.
    pub dropped_rows: usize,
}

/// Solution of a standard-form LP.
#[derive(Debug, Clone)]
pub struct StandardSolution {
    /// Values for every standard-form column (structural + slack/surplus).
    pub x: Vec<f64>,
    /// Optimal objective `c·x`.
    pub objective: f64,
    /// Dual value (shadow price) per input row: the sensitivity of the
    /// optimal objective to that row's right-hand side. Rows eliminated
    /// as redundant during phase 1 report 0.
    pub duals: Vec<f64>,
    /// Iteration statistics.
    pub stats: SimplexStats,
}

/// Solve `min c·x` s.t. `A x = b, x ≥ 0, b ≥ 0`.
///
/// `num_structural` is the count of leading columns that correspond to
/// structural (non-slack) variables; columns at or beyond this index are
/// the slack region, scanned for the initial basis and used as dual
/// markers.
pub fn solve_standard(
    a: &[Vec<f64>],
    b: &[f64],
    c: &[f64],
    num_structural: usize,
    opts: &SimplexOptions,
) -> Result<StandardSolution, LpError> {
    let m = a.len();
    let n = if m == 0 { c.len() } else { a[0].len() };
    debug_assert!(b.iter().all(|&bi| bi >= 0.0), "standard form requires b >= 0");

    if m == 0 {
        // No constraints: optimum is 0 for all non-negative variables
        // unless some cost is negative, in which case the LP is unbounded.
        if let Some(j) = c.iter().position(|&cj| cj < -opts.tol) {
            return Err(LpError::Unbounded { column: j });
        }
        return Ok(StandardSolution {
            x: vec![0.0; n],
            objective: 0.0,
            duals: Vec::new(),
            stats: SimplexStats::default(),
        });
    }

    let mut tab = Tableau::build(a, b, c, num_structural, opts)?;
    let stats1 = tab.phase1()?;
    let stats2 = tab.phase2()?;
    let x = tab.extract(n);
    let objective = crate::matrix::dot(&x, c);
    let duals = tab.duals(m);
    Ok(StandardSolution {
        x,
        objective,
        duals,
        stats: SimplexStats {
            phase1_iters: stats1,
            phase2_iters: stats2,
            artificials: tab.num_artificial,
            dropped_rows: tab.dropped_rows,
        },
    })
}

/// Dense simplex tableau with explicit basis tracking.
struct Tableau {
    /// `live_rows × (total_cols + 1)`; the last column is the RHS.
    t: Matrix,
    /// Basic column index for each live row.
    basis: Vec<usize>,
    /// Original cost vector padded to `total_cols` (artificials cost 0 in
    /// phase 2 but are barred from entering).
    cost: Vec<f64>,
    /// Original input-row index of each live row (rows can be dropped).
    orig_rows: Vec<usize>,
    /// Per input row: the column whose *original* constraint coefficients
    /// are `+e_row` (its Le slack, or its artificial). Used to read dual
    /// values off the final reduced costs.
    marker: Vec<usize>,
    /// First artificial column index (== n).
    art_start: usize,
    num_artificial: usize,
    dropped_rows: usize,
    opts: SimplexOptions,
}

impl Tableau {
    fn build(
        a: &[Vec<f64>],
        b: &[f64],
        c: &[f64],
        num_structural: usize,
        opts: &SimplexOptions,
    ) -> Result<Self, LpError> {
        let m = a.len();
        let n = a[0].len();
        // Identify rows whose slack column can serve as the initial basis:
        // a +1 unit column in the slack region. (Restricting the scan to
        // the slack region keeps the dual-marker bookkeeping exact:
        // structural columns never double as row markers.)
        let mut basis = vec![usize::MAX; m];
        'col: for j in num_structural..n {
            let mut unit_row = usize::MAX;
            for (i, row) in a.iter().enumerate() {
                let v = row[j];
                if v == 0.0 {
                    continue;
                }
                if (v - 1.0).abs() <= f64::EPSILON && unit_row == usize::MAX {
                    unit_row = i;
                } else {
                    continue 'col;
                }
            }
            if unit_row != usize::MAX && basis[unit_row] == usize::MAX {
                basis[unit_row] = j;
            }
        }
        let rows_needing_art: Vec<usize> = (0..m).filter(|&i| basis[i] == usize::MAX).collect();
        let num_artificial = rows_needing_art.len();
        let total = n + num_artificial;
        let mut t = Matrix::zeros(m, total + 1);
        for i in 0..m {
            let row = t.row_mut(i);
            row[..n].copy_from_slice(&a[i]);
            row[total] = b[i];
        }
        // Markers: the slack basis column where present, the artificial
        // otherwise. Both have original coefficients +e_row and zero
        // phase-2 cost, so the dual of row i is -z[marker[i]].
        let mut marker = basis.clone();
        for (k, &i) in rows_needing_art.iter().enumerate() {
            t[(i, n + k)] = 1.0;
            basis[i] = n + k;
            marker[i] = n + k;
        }
        let mut cost = vec![0.0; total];
        cost[..n].copy_from_slice(c);
        Ok(Tableau {
            t,
            basis,
            cost,
            orig_rows: (0..m).collect(),
            marker,
            art_start: n,
            num_artificial,
            dropped_rows: 0,
            opts: opts.clone(),
        })
    }

    /// Dual values per original input row, from the final reduced costs:
    /// marker column `j` of row `r` has original coefficients `+e_r` and
    /// zero cost, so `z_j = 0 − y_r` and `y_r = −z_j`. Dropped rows
    /// (redundant constraints) report 0.
    fn duals(&self, num_input_rows: usize) -> Vec<f64> {
        let z = self.reduced_costs(&self.cost);
        let mut y = vec![0.0; num_input_rows];
        for (live, &orig) in self.orig_rows.iter().enumerate() {
            let _ = live;
            y[orig] = -z[self.marker[orig]];
        }
        y
    }

    fn m(&self) -> usize {
        self.t.rows()
    }

    fn total_cols(&self) -> usize {
        self.t.cols() - 1
    }

    fn rhs(&self, i: usize) -> f64 {
        self.t[(i, self.t.cols() - 1)]
    }

    /// Reduced costs for the given cost vector under the current basis:
    /// `z_j = cost_j − Σ_i cost_basis(i) · t[i][j]`.
    fn reduced_costs(&self, cost: &[f64]) -> Vec<f64> {
        let total = self.total_cols();
        let mut z = cost.to_vec();
        for i in 0..self.m() {
            let cb = cost[self.basis[i]];
            if cb == 0.0 {
                continue;
            }
            let row = self.t.row(i);
            for j in 0..total {
                z[j] -= cb * row[j];
            }
        }
        z
    }

    /// Run simplex pivots until the reduced costs are non-negative.
    /// `allow(j)` filters which columns may enter. Returns pivot count.
    fn optimize(&mut self, cost: &[f64], allow: impl Fn(usize) -> bool) -> Result<usize, LpError> {
        let tol = self.opts.tol;
        let mut z = self.reduced_costs(cost);
        let mut iters = 0usize;
        loop {
            if iters >= self.opts.max_iters {
                return Err(LpError::IterationLimit { limit: self.opts.max_iters });
            }
            let use_bland =
                self.opts.pivot_rule == PivotRule::Bland || iters >= self.opts.bland_after;
            // Entering column.
            let mut enter = usize::MAX;
            let mut best = -tol;
            for (j, &zj) in z.iter().enumerate() {
                if !allow(j) {
                    continue;
                }
                if zj < best {
                    enter = j;
                    best = zj;
                    if use_bland {
                        break; // first eligible index
                    }
                }
            }
            if enter == usize::MAX {
                return Ok(iters);
            }
            // Ratio test.
            let mut leave = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.m() {
                let aij = self.t[(i, enter)];
                if aij > tol {
                    let ratio = self.rhs(i) / aij;
                    let better = ratio < best_ratio - tol
                        || (ratio < best_ratio + tol
                            && leave != usize::MAX
                            && self.basis[i] < self.basis[leave]);
                    if better {
                        best_ratio = ratio;
                        leave = i;
                    }
                }
            }
            if leave == usize::MAX {
                return Err(LpError::Unbounded { column: enter });
            }
            self.pivot(leave, enter);
            // Recompute reduced costs incrementally is possible, but the
            // tableau already carries the work; recomputing keeps the
            // update numerically self-correcting at these sizes.
            z = self.reduced_costs(cost);
            iters += 1;
        }
    }

    /// Gauss-Jordan pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let cols = self.t.cols();
        let piv = self.t[(row, col)];
        debug_assert!(piv.abs() > 0.0, "zero pivot");
        {
            let r = self.t.row_mut(row);
            let inv = 1.0 / piv;
            for v in r.iter_mut() {
                *v *= inv;
            }
            // Clean the pivot entry exactly.
            r[col] = 1.0;
        }
        for i in 0..self.m() {
            if i == row {
                continue;
            }
            let factor = self.t[(i, col)];
            if factor == 0.0 {
                continue;
            }
            let (src, dst) = self.t.row_pair_mut(row, i);
            for j in 0..cols {
                dst[j] -= factor * src[j];
            }
            dst[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Phase 1: minimize the sum of artificials.
    fn phase1(&mut self) -> Result<usize, LpError> {
        if self.num_artificial == 0 {
            return Ok(0);
        }
        let total = self.total_cols();
        let mut art_cost = vec![0.0; total];
        for j in self.art_start..total {
            art_cost[j] = 1.0;
        }
        let iters = self.optimize(&art_cost, |_| true)?;
        // Residual infeasibility = current value of the artificial sum.
        let residual: f64 =
            (0..self.m()).filter(|&i| self.basis[i] >= self.art_start).map(|i| self.rhs(i)).sum();
        if residual > self.opts.tol.max(1e-7) {
            return Err(LpError::Infeasible { residual });
        }
        self.evict_artificials();
        Ok(iters)
    }

    /// Pivot zero-level artificials out of the basis, dropping redundant
    /// rows whose entries are all zero.
    fn evict_artificials(&mut self) {
        let tol = self.opts.tol;
        let art_start = self.art_start;
        let mut i = 0;
        while i < self.m() {
            if self.basis[i] >= art_start {
                // Find a non-artificial column with a nonzero entry.
                let mut found = usize::MAX;
                for j in 0..art_start {
                    if self.t[(i, j)].abs() > tol.max(1e-10) {
                        found = j;
                        break;
                    }
                }
                if found != usize::MAX {
                    self.pivot(i, found);
                } else {
                    // Whole row is (numerically) zero outside artificials:
                    // a redundant constraint. Remove the row.
                    self.drop_row(i);
                    self.dropped_rows += 1;
                    continue; // re-examine the row that slid into slot i
                }
            }
            i += 1;
        }
    }

    fn drop_row(&mut self, row: usize) {
        let m = self.m();
        let cols = self.t.cols();
        let mut nt = Matrix::zeros(m - 1, cols);
        let mut k = 0;
        for i in 0..m {
            if i == row {
                continue;
            }
            nt.row_mut(k).copy_from_slice(self.t.row(i));
            k += 1;
        }
        self.t = nt;
        self.basis.remove(row);
        self.orig_rows.remove(row);
    }

    /// Phase 2: optimize the true objective; artificials may not re-enter.
    fn phase2(&mut self) -> Result<usize, LpError> {
        let art_start = self.art_start;
        let cost = self.cost.clone();
        self.optimize(&cost, |j| j < art_start)
    }

    /// Read the solution for the first `n` columns.
    fn extract(&self, n: usize) -> Vec<f64> {
        let mut x = vec![0.0; n];
        for i in 0..self.m() {
            let bj = self.basis[i];
            if bj < n {
                x[bj] = self.rhs(i).max(0.0);
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `ns` = number of structural (non-slack) columns.
    fn solve(a: &[Vec<f64>], b: &[f64], c: &[f64], ns: usize) -> Result<StandardSolution, LpError> {
        solve_standard(a, b, c, ns, &SimplexOptions::default())
    }

    #[test]
    fn simple_min_with_slacks() {
        // min -x1 - 2x2 s.t. x1 + x2 + s1 = 4; x2 + s2 = 3.
        let a = vec![vec![1.0, 1.0, 1.0, 0.0], vec![0.0, 1.0, 0.0, 1.0]];
        let b = vec![4.0, 3.0];
        let c = vec![-1.0, -2.0, 0.0, 0.0];
        let s = solve(&a, &b, &c, 2).unwrap();
        assert!((s.objective + 7.0).abs() < 1e-9);
        assert!((s.x[0] - 1.0).abs() < 1e-9);
        assert!((s.x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn equality_needs_artificials() {
        // min x1 + x2 s.t. x1 + x2 = 2, x1 - x2 = 0 -> (1,1), obj 2.
        let a = vec![vec![1.0, 1.0], vec![1.0, -1.0]];
        let b = vec![2.0, 0.0];
        let c = vec![1.0, 1.0];
        let s = solve(&a, &b, &c, 2).unwrap();
        assert_eq!(s.stats.artificials, 2);
        assert!((s.objective - 2.0).abs() < 1e-9);
        assert!((s.x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_row_is_dropped() {
        // x1 + x2 = 2 duplicated.
        let a = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let b = vec![2.0, 2.0];
        let c = vec![1.0, 0.0];
        let s = solve(&a, &b, &c, 2).unwrap();
        assert!((s.x[0] + s.x[1] - 2.0).abs() < 1e-9);
        assert!(s.objective.abs() < 1e-9, "min pushes x1 to 0");
        assert_eq!(s.stats.dropped_rows, 1);
    }

    #[test]
    fn infeasible_residual_reported() {
        // x1 = 1 and x1 = 2 simultaneously.
        let a = vec![vec![1.0], vec![1.0]];
        let b = vec![1.0, 2.0];
        let c = vec![0.0];
        match solve(&a, &b, &c, 1) {
            Err(LpError::Infeasible { residual }) => {
                assert!(residual > 0.4, "residual {residual}");
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_in_phase2() {
        // min -x1 s.t. x1 - x2 + s = 1 (x2 lets x1 grow without bound).
        let a = vec![vec![1.0, -1.0, 1.0]];
        let b = vec![1.0];
        let c = vec![-1.0, 0.0, 0.0];
        assert!(matches!(solve(&a, &b, &c, 2), Err(LpError::Unbounded { .. })));
    }

    #[test]
    fn no_constraints_zero_or_unbounded() {
        let s = solve(&[], &[], &[1.0, 2.0], 2).unwrap();
        assert_eq!(s.objective, 0.0);
        assert!(matches!(solve(&[], &[], &[-1.0], 1), Err(LpError::Unbounded { column: 0 })));
    }

    #[test]
    fn bland_rule_solves_too() {
        let a = vec![vec![1.0, 1.0, 1.0, 0.0], vec![0.0, 1.0, 0.0, 1.0]];
        let b = vec![4.0, 3.0];
        let c = vec![-1.0, -2.0, 0.0, 0.0];
        let opts = SimplexOptions { pivot_rule: PivotRule::Bland, ..Default::default() };
        let s = solve_standard(&a, &b, &c, 2, &opts).unwrap();
        assert!((s.objective + 7.0).abs() < 1e-9);
    }

    #[test]
    fn iteration_limit_respected() {
        let a = vec![vec![1.0, 1.0, 1.0, 0.0], vec![0.0, 1.0, 0.0, 1.0]];
        let b = vec![4.0, 3.0];
        let c = vec![-1.0, -2.0, 0.0, 0.0];
        let opts = SimplexOptions { max_iters: 0, ..Default::default() };
        assert!(matches!(
            solve_standard(&a, &b, &c, 2, &opts),
            Err(LpError::IterationLimit { limit: 0 })
        ));
    }

    #[test]
    fn stats_track_iterations() {
        let a = vec![vec![1.0, 1.0, 1.0, 0.0], vec![0.0, 1.0, 0.0, 1.0]];
        let b = vec![4.0, 3.0];
        let c = vec![-1.0, -2.0, 0.0, 0.0];
        let s = solve(&a, &b, &c, 2).unwrap();
        assert!(s.stats.phase2_iters >= 1);
        assert_eq!(s.stats.phase1_iters, 0, "slack basis needs no phase 1");
        assert_eq!(s.stats.artificials, 0);
    }
}
