//! Minimal dense linear algebra: row-major matrices and vectors.
//!
//! The simplex tableau and the agreement-flow computations both need only
//! a handful of dense operations; rather than pull in a BLAS binding we
//! provide exactly those, with contiguous row-major storage so hot loops
//! stay cache-friendly and auto-vectorizable.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense vector of `f64`.
pub type Vector = Vec<f64>;

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` over equal-length slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if alpha == 0.0 {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Re-shape in place to `rows × cols`, zero-filled. Keeps the backing
    /// allocation when capacity suffices, so repeated solves of
    /// same-shaped problems never touch the allocator.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Create a matrix from a nested slice of rows. All rows must have the
    /// same length.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow the whole backing storage, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the whole backing storage, row-major. Lets callers
    /// partition the rows into disjoint `chunks_mut` for lock-free
    /// parallel fills.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow two distinct rows, the first immutably and the second
    /// mutably. Used for pivot row elimination without cloning.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn row_pair_mut(&mut self, a: usize, b: usize) -> (&[f64], &mut [f64]) {
        assert_ne!(a, b, "row_pair_mut requires distinct rows");
        let c = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * c);
            (&lo[a * c..(a + 1) * c], &mut hi[..c])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * c);
            (&hi[..c], &mut lo[b * c..(b + 1) * c])
        }
    }

    /// Matrix-vector product `self * x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vector {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows).map(|i| dot(self.row(i), x)).collect()
    }

    /// Matrix-matrix product `self * other`.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let (orow_ref, dst) = (orow.to_vec(), out.row_mut(i));
                axpy(a, &orow_ref, dst);
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Maximum absolute entry (infinity norm over all entries); 0 for an
    /// empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Scale every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut out = self.clone();
        for (o, v) in out.data.iter_mut().zip(&other.data) {
            *o += v;
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert_eq!(z.max_abs(), 0.0);
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.max_abs(), 1.0);
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let y = m.mul_vec(&[1.0, 1.0]);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn mul_identity_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.mul(&i), m);
        assert_eq!(i.mul(&m), m);
    }

    #[test]
    fn mul_matches_manual_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![2.0, 0.0], vec![1.0, 3.0]]);
        let c = a.mul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![4.0, 6.0], vec![1.0, 3.0]]));
    }

    #[test]
    fn transpose_swaps_dims() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 1);
        assert_eq!(t[(2, 0)], 3.0);
    }

    #[test]
    fn row_pair_mut_both_orders() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![10.0, 20.0]]);
        {
            let (src, dst) = m.row_pair_mut(0, 1);
            assert_eq!(src, &[1.0, 2.0]);
            dst[0] = -1.0;
        }
        assert_eq!(m[(1, 0)], -1.0);
        {
            let (src, dst) = m.row_pair_mut(1, 0);
            assert_eq!(src[0], -1.0);
            dst[1] = 5.0;
        }
        assert_eq!(m[(0, 1)], 5.0);
    }

    #[test]
    fn axpy_and_dot() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        assert_eq!(dot(&x, &y), 3.0 + 10.0 + 21.0);
    }

    #[test]
    fn scale_and_add() {
        let mut m = Matrix::identity(2);
        m.scale(3.0);
        assert_eq!(m[(0, 0)], 3.0);
        let s = m.add(&Matrix::identity(2));
        assert_eq!(s[(1, 1)], 4.0);
        assert_eq!(s[(0, 1)], 0.0);
    }
}
