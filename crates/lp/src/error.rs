//! Error types for LP construction and solving.

use std::fmt;

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The feasible region is empty: no assignment satisfies all
    /// constraints and bounds. Carries the residual phase-1 infeasibility
    /// (how far the best attempt remained from feasibility).
    Infeasible {
        /// Residual phase-1 infeasibility of the best attempt.
        residual: f64,
    },
    /// The objective can be improved without bound within the feasible
    /// region. Carries the index (in solver-internal standard form) of the
    /// column that proved unboundedness.
    Unbounded {
        /// Standard-form column that proved unboundedness.
        column: usize,
    },
    /// The iteration limit was exhausted before reaching optimality.
    IterationLimit {
        /// The configured pivot limit that was exhausted.
        limit: usize,
    },
    /// The model itself is malformed (e.g. a variable's lower bound exceeds
    /// its upper bound, or a NaN coefficient was supplied).
    InvalidModel(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible { residual } => {
                write!(f, "infeasible linear program (phase-1 residual {residual:.3e})")
            }
            LpError::Unbounded { column } => {
                write!(f, "unbounded linear program (entering column {column})")
            }
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit {limit} exhausted")
            }
            LpError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LpError::Infeasible { residual: 0.5 };
        assert!(e.to_string().contains("infeasible"));
        let e = LpError::Unbounded { column: 3 };
        assert!(e.to_string().contains("unbounded"));
        assert!(e.to_string().contains('3'));
        let e = LpError::IterationLimit { limit: 10 };
        assert!(e.to_string().contains("10"));
        let e = LpError::InvalidModel("bad bound".into());
        assert!(e.to_string().contains("bad bound"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LpError::Unbounded { column: 1 }, LpError::Unbounded { column: 1 });
        assert_ne!(LpError::Unbounded { column: 1 }, LpError::Unbounded { column: 2 });
    }
}
