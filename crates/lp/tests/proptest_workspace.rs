//! Workspace and warm-start equivalence properties.
//!
//! `solve_bounded_with` must be *bit-identical* to `solve_bounded` when
//! warm starting is off — the workspace only changes where buffers live,
//! never a single floating-point operation. With warm starting on, the
//! solver may take a different pivot path, so objectives and solutions
//! must agree to tolerance and error classifications must match exactly.

#![allow(clippy::needless_range_loop)]

use agreements_lp::simplex::SimplexOptions;
use agreements_lp::{solve_bounded, solve_bounded_with, LpError, SimplexWorkspace};
use proptest::prelude::*;

/// Random packing-style LP already in bounded standard form:
/// `min c·x` s.t. `Ax + s = b`, `0 ≤ x ≤ u`, slacks unbounded.
#[derive(Debug, Clone)]
struct Instance {
    nv: usize,
    a: Vec<Vec<f64>>, // m × (nv + m), slacks appended
    b: Vec<f64>,
    c: Vec<f64>,
    u: Vec<f64>,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (1usize..=4, 1usize..=4).prop_flat_map(|(nv, m)| {
        (
            proptest::collection::vec(0u32..=8, nv * m),
            proptest::collection::vec(1u32..=40, m),
            proptest::collection::vec(-10i32..=10, nv),
            proptest::collection::vec(proptest::option::of(1u32..=10), nv),
        )
            .prop_map(move |(araw, braw, craw, uraw)| {
                let total = nv + m;
                let mut a = vec![vec![0.0; total]; m];
                for i in 0..m {
                    for j in 0..nv {
                        a[i][j] = araw[i * nv + j] as f64 / 2.0;
                    }
                    a[i][nv + i] = 1.0;
                }
                let mut c = vec![0.0; total];
                for j in 0..nv {
                    c[j] = craw[j] as f64 / 2.0;
                }
                let mut u = vec![f64::INFINITY; total];
                for j in 0..nv {
                    u[j] = uraw[j].map(|x| x as f64).unwrap_or(f64::INFINITY);
                }
                Instance { nv, a, b: braw.iter().map(|&x| x as f64 / 2.0).collect(), c, u }
            })
    })
}

fn errors_match(a: &LpError, b: &LpError) -> bool {
    std::mem::discriminant(a) == std::mem::discriminant(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A reused workspace (warm start off) reproduces `solve_bounded`
    /// bit for bit, across a random sequence of differently shaped
    /// problems sharing one workspace.
    #[test]
    fn workspace_reuse_is_bit_identical(
        seq in proptest::collection::vec(arb_instance(), 1..=5),
    ) {
        let opts = SimplexOptions::default();
        let mut ws = SimplexWorkspace::new();
        for inst in &seq {
            let fresh = solve_bounded(&inst.a, &inst.b, &inst.c, &inst.u, inst.nv, &opts);
            let reused =
                solve_bounded_with(&mut ws, &inst.a, &inst.b, &inst.c, &inst.u, inst.nv, &opts);
            match (fresh, reused) {
                (Ok(f), Ok(r)) => {
                    prop_assert_eq!(f.x, r.x);
                    prop_assert_eq!(f.objective, r.objective);
                    prop_assert_eq!(f.duals, r.duals);
                    prop_assert_eq!(f.stats, r.stats);
                }
                (Err(fe), Err(re)) => {
                    prop_assert!(errors_match(&fe, &re), "{fe:?} vs {re:?}");
                }
                (f, r) => prop_assert!(false, "disagreement: {f:?} vs {r:?}"),
            }
        }
    }

    /// Warm starting across right-hand-side perturbations of one model
    /// finds the same optimum as a cold solve every time.
    #[test]
    fn warm_start_matches_cold(
        inst in arb_instance(),
        scales in proptest::collection::vec(1u32..=40, 1..=6),
    ) {
        let opts = SimplexOptions::default();
        let mut ws = SimplexWorkspace::new();
        ws.set_warm_start(true);
        for &s in &scales {
            // Same shape, moved right-hand side (the scheduler's pattern:
            // demand and availability change per request, structure not).
            let b: Vec<f64> = inst.b.iter().map(|&bi| bi * s as f64 / 8.0).collect();
            let cold = solve_bounded(&inst.a, &b, &inst.c, &inst.u, inst.nv, &opts);
            let warm =
                solve_bounded_with(&mut ws, &inst.a, &b, &inst.c, &inst.u, inst.nv, &opts);
            match (cold, warm) {
                (Ok(cs), Ok(wsol)) => {
                    prop_assert!(
                        (cs.objective - wsol.objective).abs()
                            < 1e-6 * (1.0 + cs.objective.abs()),
                        "objective: cold {} warm {} (warm hit: {})",
                        cs.objective,
                        wsol.objective,
                        ws.last_solve_was_warm()
                    );
                    // The warm solution is feasible for the same model.
                    for (j, &xj) in wsol.x.iter().enumerate() {
                        prop_assert!(xj >= -1e-9);
                        prop_assert!(xj <= inst.u[j] + 1e-9);
                    }
                    for (i, row) in inst.a.iter().enumerate() {
                        let lhs: f64 = row.iter().zip(&wsol.x).map(|(a, x)| a * x).sum();
                        prop_assert!(
                            (lhs - b[i]).abs() < 1e-6,
                            "row {i}: {lhs} != {}",
                            b[i]
                        );
                    }
                }
                (Err(ce), Err(we)) => {
                    prop_assert!(errors_match(&ce, &we), "{ce:?} vs {we:?}");
                }
                (c, w) => prop_assert!(false, "disagreement: {c:?} vs {w:?}"),
            }
        }
    }
}
