//! Property tests: the simplex solver must agree with brute-force vertex
//! enumeration on small random LPs, and its solutions must always be
//! feasible.

// Index-based loops keep the matrix algebra legible in these tests.
#![allow(clippy::needless_range_loop)]

use agreements_lp::{Problem, Relation, Sense};
use proptest::prelude::*;

/// Solve `max c·x  s.t.  A x ≤ b, 0 ≤ x` by enumerating basic feasible
/// points: every vertex of the polytope is the intersection of `n` active
/// hyperplanes drawn from the rows of `A` and the axis planes `x_j = 0`.
fn brute_force_max(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> Option<f64> {
    let n = c.len();
    let m = a.len();
    // Build the full plane list: m constraint rows then n axis planes.
    let mut planes: Vec<(Vec<f64>, f64)> = Vec::with_capacity(m + n);
    for i in 0..m {
        planes.push((a[i].clone(), b[i]));
    }
    for j in 0..n {
        let mut row = vec![0.0; n];
        row[j] = 1.0;
        planes.push((row, 0.0));
    }
    let total = planes.len();
    let mut best: Option<f64> = None;
    // Enumerate n-subsets (n <= 3, total <= ~9, trivial).
    let mut idx: Vec<usize> = (0..n).collect();
    loop {
        if let Some(x) = solve_square(&idx, &planes, n) {
            if feasible(&x, a, b) {
                let val: f64 = x.iter().zip(c).map(|(xi, ci)| xi * ci).sum();
                best = Some(best.map_or(val, |b: f64| b.max(val)));
            }
        }
        // Next combination.
        let mut i = n;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if idx[i] != i + total - n {
                idx[i] += 1;
                for k in i + 1..n {
                    idx[k] = idx[k - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Solve the n×n system given by the selected planes via Gaussian
/// elimination with partial pivoting; None if singular.
fn solve_square(sel: &[usize], planes: &[(Vec<f64>, f64)], n: usize) -> Option<Vec<f64>> {
    let mut m = vec![vec![0.0; n + 1]; n];
    for (r, &pi) in sel.iter().enumerate() {
        m[r][..n].copy_from_slice(&planes[pi].0);
        m[r][n] = planes[pi].1;
    }
    for col in 0..n {
        let piv =
            (col..n).max_by(|&i, &j| m[i][col].abs().partial_cmp(&m[j][col].abs()).unwrap())?;
        if m[piv][col].abs() < 1e-10 {
            return None;
        }
        m.swap(col, piv);
        let d = m[col][col];
        for j in col..=n {
            m[col][j] /= d;
        }
        for r in 0..n {
            if r != col && m[r][col] != 0.0 {
                let f = m[r][col];
                for j in col..=n {
                    m[r][j] -= f * m[col][j];
                }
            }
        }
    }
    Some((0..n).map(|i| m[i][n]).collect())
}

fn feasible(x: &[f64], a: &[Vec<f64>], b: &[f64]) -> bool {
    const EPS: f64 = 1e-7;
    if x.iter().any(|&v| v < -EPS) {
        return false;
    }
    a.iter().zip(b).all(|(row, &bi)| {
        let lhs: f64 = row.iter().zip(x).map(|(aij, xj)| aij * xj).sum();
        lhs <= bi + EPS * (1.0 + bi.abs())
    })
}

fn small_coeff() -> impl Strategy<Value = f64> {
    // Coefficients in a friendly range, quantized to avoid conditioning
    // pathologies that would make the brute-force comparison flaky.
    (-40i32..=40).prop_map(|v| v as f64 / 4.0)
}

fn pos_rhs() -> impl Strategy<Value = f64> {
    (1i32..=60).prop_map(|v| v as f64 / 2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// max c·x over {Ax ≤ b, x ≥ 0} with b > 0 (origin feasible): simplex
    /// must match brute-force vertex enumeration whenever the brute force
    /// finds a bounded optimum.
    #[test]
    fn simplex_matches_vertex_enumeration(
        a in proptest::collection::vec(
            proptest::collection::vec(small_coeff(), 2), 1..=4),
        b in proptest::collection::vec(pos_rhs(), 4),
        c in proptest::collection::vec(small_coeff(), 2),
    ) {
        let m = a.len();
        let b = &b[..m];
        let mut p = Problem::new(Sense::Maximize);
        let xs: Vec<_> = (0..2)
            .map(|j| p.add_var(&format!("x{j}"), 0.0, f64::INFINITY, c[j]))
            .collect();
        for i in 0..m {
            let terms: Vec<_> = xs.iter().cloned().zip(a[i].iter().cloned()).collect();
            p.add_constraint(&terms, Relation::Le, b[i]);
        }
        match p.solve() {
            Ok(sol) => {
                // Feasibility of the reported point.
                let x: Vec<f64> = xs.iter().map(|&v| sol.value(v)).collect();
                prop_assert!(feasible(&x, &a, b), "simplex point infeasible: {x:?}");
                // Objective consistency.
                let val: f64 = x.iter().zip(&c).map(|(xi, ci)| xi * ci).sum();
                prop_assert!((val - sol.objective).abs() < 1e-6 * (1.0 + sol.objective.abs()));
                // Optimality vs brute force (only meaningful when the brute
                // force certifies boundedness via a finite vertex max AND
                // the LP is actually bounded - if simplex said Ok it is).
                if let Some(bf) = brute_force_max(&a, b, &c) {
                    prop_assert!(
                        sol.objective >= bf - 1e-6 * (1.0 + bf.abs()),
                        "simplex {} < brute force {}", sol.objective, bf
                    );
                    // Simplex can exceed the vertex max only if some optimal
                    // direction is unbounded, which contradicts Ok; so also
                    // require <=.
                    prop_assert!(
                        sol.objective <= bf + 1e-6 * (1.0 + bf.abs()),
                        "simplex {} > brute force {}", sol.objective, bf
                    );
                }
            }
            Err(agreements_lp::LpError::Unbounded { .. }) => {
                // Brute force cannot certify unboundedness; accept.
            }
            Err(e) => {
                // Origin is feasible (b >= 0), so infeasibility is a bug.
                prop_assert!(false, "unexpected error: {e}");
            }
        }
    }

    /// Minimization over a box is always the obvious corner.
    #[test]
    fn box_minimization_picks_corners(
        lbs in proptest::collection::vec(-10i32..=0, 3),
        spans in proptest::collection::vec(1i32..=10, 3),
        costs in proptest::collection::vec(-5i32..=5, 3),
    ) {
        let mut p = Problem::new(Sense::Minimize);
        let mut expect = 0.0;
        let mut vars = Vec::new();
        for i in 0..3 {
            let lb = lbs[i] as f64;
            let ub = lb + spans[i] as f64;
            let cost = costs[i] as f64;
            vars.push(p.add_var(&format!("x{i}"), lb, ub, cost));
            expect += if cost >= 0.0 { cost * lb } else { cost * ub };
        }
        let s = p.solve().unwrap();
        prop_assert!((s.objective - expect).abs() < 1e-7,
            "objective {} expected {}", s.objective, expect);
        for (i, &v) in vars.iter().enumerate() {
            let val = s.value(v);
            prop_assert!(val >= lbs[i] as f64 - 1e-9);
            prop_assert!(val <= (lbs[i] + spans[i]) as f64 + 1e-9);
        }
    }

    /// Adding a redundant constraint never changes the optimum.
    #[test]
    fn redundant_constraint_is_inert(
        c1 in 1i32..=10, c2 in 1i32..=10, cap in 2i32..=20,
    ) {
        let build = |redundant: bool| {
            let mut p = Problem::new(Sense::Maximize);
            let x = p.add_var("x", 0.0, f64::INFINITY, c1 as f64);
            let y = p.add_var("y", 0.0, f64::INFINITY, c2 as f64);
            p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, cap as f64);
            if redundant {
                // Strictly looser copy.
                p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 2.0 * cap as f64);
            }
            p.solve().unwrap().objective
        };
        let base = build(false);
        let with = build(true);
        prop_assert!((base - with).abs() < 1e-7);
    }
}
