//! Equivalence of the bounded-variable simplex and the row-based solver:
//! on random LPs with box constraints, both must find the same optimum
//! (the optimizer itself may differ; objective values must agree).

// Index-based loops keep the matrix algebra legible in these tests.
#![allow(clippy::needless_range_loop)]

use agreements_lp::simplex::{solve_standard, SimplexOptions};
use agreements_lp::solve_bounded;
use agreements_lp::LpError;
use proptest::prelude::*;

/// Random packing-style LP in equality standard form:
/// `min c·x` s.t. `Ax + s = b`, `0 ≤ x ≤ u`, `s ≥ 0`.
#[derive(Debug, Clone)]
struct Instance {
    nv: usize,
    m: usize,
    a: Vec<Vec<f64>>, // m × nv, structural part only
    b: Vec<f64>,
    c: Vec<f64>,
    u: Vec<f64>, // per structural var; may be infinite
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (1usize..=4, 1usize..=4).prop_flat_map(|(nv, m)| {
        (
            proptest::collection::vec(0u32..=8, nv * m),
            proptest::collection::vec(1u32..=40, m),
            proptest::collection::vec(-10i32..=10, nv),
            proptest::collection::vec(proptest::option::of(1u32..=10), nv),
        )
            .prop_map(move |(araw, braw, craw, uraw)| {
                let a: Vec<Vec<f64>> = (0..m)
                    .map(|i| (0..nv).map(|j| araw[i * nv + j] as f64 / 2.0).collect())
                    .collect();
                Instance {
                    nv,
                    m,
                    a,
                    b: braw.iter().map(|&x| x as f64 / 2.0).collect(),
                    c: craw.iter().map(|&x| x as f64 / 2.0).collect(),
                    u: uraw.iter().map(|o| o.map(|x| x as f64).unwrap_or(f64::INFINITY)).collect(),
                }
            })
    })
}

/// Encode for the bounded solver: columns = structural + slacks.
fn bounded_form(inst: &Instance) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let total = inst.nv + inst.m;
    let mut a = vec![vec![0.0; total]; inst.m];
    for i in 0..inst.m {
        a[i][..inst.nv].copy_from_slice(&inst.a[i]);
        a[i][inst.nv + i] = 1.0;
    }
    let mut c = vec![0.0; total];
    c[..inst.nv].copy_from_slice(&inst.c);
    let mut u = vec![f64::INFINITY; total];
    u[..inst.nv].copy_from_slice(&inst.u);
    (a, inst.b.clone(), c, u)
}

/// Encode for the row solver: finite bounds become extra `x + t = u` rows.
fn row_form(inst: &Instance) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
    let bounded: Vec<usize> = (0..inst.nv).filter(|&j| inst.u[j].is_finite()).collect();
    let rows = inst.m + bounded.len();
    let total = inst.nv + inst.m + bounded.len();
    let mut a = vec![vec![0.0; total]; rows];
    let mut b = vec![0.0; rows];
    for i in 0..inst.m {
        a[i][..inst.nv].copy_from_slice(&inst.a[i]);
        a[i][inst.nv + i] = 1.0;
        b[i] = inst.b[i];
    }
    for (k, &j) in bounded.iter().enumerate() {
        let r = inst.m + k;
        a[r][j] = 1.0;
        a[r][inst.nv + inst.m + k] = 1.0;
        b[r] = inst.u[j];
    }
    let mut c = vec![0.0; total];
    c[..inst.nv].copy_from_slice(&inst.c);
    (a, b, c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Objectives agree between the two encodings whenever both solve.
    #[test]
    fn bounded_matches_row_based(inst in arb_instance()) {
        let opts = SimplexOptions::default();
        let (ba, bb, bc, bu) = bounded_form(&inst);
        let (ra, rb, rc) = row_form(&inst);
        let bres = solve_bounded(&ba, &bb, &bc, &bu, inst.nv, &opts);
        let rres = solve_standard(&ra, &rb, &rc, inst.nv, &opts);
        match (bres, rres) {
            (Ok(bs), Ok(rs)) => {
                prop_assert!(
                    (bs.objective - rs.objective).abs()
                        < 1e-6 * (1.0 + rs.objective.abs()),
                    "bounded {} vs row {}",
                    bs.objective,
                    rs.objective
                );
                // The bounded solution is feasible for the original box.
                for j in 0..inst.nv {
                    prop_assert!(bs.x[j] >= -1e-9);
                    prop_assert!(bs.x[j] <= inst.u[j] + 1e-9);
                }
                for i in 0..inst.m {
                    let lhs: f64 =
                        (0..inst.nv).map(|j| inst.a[i][j] * bs.x[j]).sum();
                    prop_assert!(lhs <= inst.b[i] + 1e-6,
                        "row {i}: {lhs} > {}", inst.b[i]);
                }
            }
            (Err(LpError::Unbounded { .. }), Err(LpError::Unbounded { .. })) => {}
            (Err(LpError::Infeasible { .. }), Err(LpError::Infeasible { .. })) => {}
            (b, r) => {
                // Origin is feasible (b >= 0, x = 0 in box), so both must
                // agree; a mismatch is a bug.
                prop_assert!(false, "solver disagreement: bounded {b:?} vs row {r:?}");
            }
        }
    }

    /// Problem-level equivalence on models with *equality* constraints
    /// (these exercise artificial variables, where the bounded solver's
    /// phase-2 pinning matters — a bug here once returned infeasible
    /// points silently).
    #[test]
    fn bounded_matches_rows_with_equalities(
        total in 1u32..=30,
        bounds in proptest::collection::vec(1u32..=12, 3),
        costs in proptest::collection::vec(0u32..=10, 3),
        cap in 1u32..=20,
    ) {
        use agreements_lp::{Problem, Relation, Sense};
        use agreements_lp::simplex::BoundMode;
        let build = |mode: BoundMode| {
            let mut p = Problem::new(Sense::Minimize);
            let vars: Vec<_> = (0..3)
                .map(|j| p.add_var(&format!("d{j}"), 0.0, bounds[j] as f64, costs[j] as f64))
                .collect();
            let theta = p.add_var("theta", 0.0, f64::INFINITY, 1.0);
            let all: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            p.add_constraint(&all, Relation::Eq, total as f64);
            for &v in &vars {
                p.add_constraint(&[(v, 1.0), (theta, -1.0)], Relation::Le, 0.0);
            }
            p.add_constraint(&[(vars[0], 1.0), (vars[1], 1.0)], Relation::Le, cap as f64);
            let opts = SimplexOptions { bound_mode: mode, ..Default::default() };
            p.solve_with(&opts).map(|s| {
                let draws: Vec<f64> = vars.iter().map(|&v| s.value(v)).collect();
                (s.objective, draws)
            })
        };
        match (build(BoundMode::Native), build(BoundMode::Rows)) {
            (Ok((bo, bd)), Ok((ro, _))) => {
                prop_assert!((bo - ro).abs() < 1e-6 * (1.0 + ro.abs()),
                    "native {bo} vs rows {ro}");
                // The native solution actually satisfies the equality.
                let sum: f64 = bd.iter().sum();
                prop_assert!((sum - total as f64).abs() < 1e-6,
                    "draws {bd:?} sum {sum} != {total}");
                for (j, d) in bd.iter().enumerate() {
                    prop_assert!(*d >= -1e-9 && *d <= bounds[j] as f64 + 1e-9);
                }
            }
            (Err(LpError::Infeasible { .. }), Err(LpError::Infeasible { .. })) => {}
            (b, r) => {
                prop_assert!(false, "solver disagreement: native {b:?} vs rows {r:?}");
            }
        }
    }

    /// Duals on the shared equality rows agree between encodings.
    #[test]
    fn duals_agree_on_shared_rows(inst in arb_instance()) {
        let opts = SimplexOptions::default();
        let (ba, bb, bc, bu) = bounded_form(&inst);
        let (ra, rb, rc) = row_form(&inst);
        if let (Ok(bs), Ok(rs)) = (
            solve_bounded(&ba, &bb, &bc, &bu, inst.nv, &opts),
            solve_standard(&ra, &rb, &rc, inst.nv, &opts),
        ) {
            // Dual values can differ at degenerate optima (alternative
            // optimal bases); compare the dual objective y·b + bound
            // contributions instead. Strong duality pins both to the
            // primal objective, which bounded_matches_row_based already
            // checks; here we check the bounded duals' dual-feasibility
            // on unbounded columns: c_j - y·A_j >= -tol for x_j interior.
            for j in 0..inst.nv {
                if bs.x[j] > 1e-7 && bs.x[j] + 1e-7 < inst.u[j] {
                    let ya: f64 =
                        (0..inst.m).map(|i| bs.duals[i] * inst.a[i][j]).sum();
                    prop_assert!(
                        (bc[j] - ya).abs() < 1e-6,
                        "interior var {j} must have zero reduced cost: {}",
                        bc[j] - ya
                    );
                }
            }
            let _ = rs;
        }
    }
}
